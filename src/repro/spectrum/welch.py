"""PSD estimation from time-domain IQ: the physical cross-check path.

The frequency-domain renderer is analytic; this module closes the loop by
estimating spectra from sampled waveforms (``repro.signals.waveform``) with
Welch's method, so tests can verify that both paths put side-bands in the
same places with the same relative powers.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import TraceError
from .grid import FrequencyGrid
from .trace import SpectrumTrace


def welch_psd(iq, sample_rate, nperseg=None, center_frequency=0.0):
    """Two-sided Welch PSD of complex baseband samples.

    Returns ``(frequencies, psd)`` with frequencies in absolute Hz
    (baseband offsets shifted by ``center_frequency``) sorted ascending and
    the PSD in power units per Hz (the caller owns the absolute scale).
    """
    iq = np.asarray(iq)
    if iq.ndim != 1 or iq.size < 8:
        raise TraceError("iq must be a 1-D array of at least 8 samples")
    if sample_rate <= 0:
        raise TraceError("sample rate must be positive")
    if nperseg is None:
        nperseg = min(iq.size, 1 << 14)
    freqs, psd = _signal.welch(
        iq,
        fs=sample_rate,
        nperseg=nperseg,
        return_onesided=False,
        scaling="density",
        detrend=False,
    )
    order = np.argsort(freqs)
    return freqs[order] + center_frequency, psd[order]


def trace_from_iq(iq, sample_rate, grid, center_frequency=0.0, nperseg=None, label=""):
    """Estimate a :class:`SpectrumTrace` over ``grid`` from IQ samples.

    The Welch density is *integrated* over each grid bin (each Welch bin's
    power ``psd * df`` is deposited into the grid bin containing it), which
    conserves total power even when the grid is coarser than the Welch
    resolution — naive interpolation would over- or under-count narrow
    lines. Bins outside the sampled bandwidth get zero power.
    """
    if not isinstance(grid, FrequencyGrid):
        raise TraceError("grid must be a FrequencyGrid")
    freqs, psd = welch_psd(iq, sample_rate, nperseg=nperseg, center_frequency=center_frequency)
    welch_df = float(np.median(np.diff(freqs)))
    edges = np.concatenate(
        (
            grid.frequencies - grid.resolution / 2.0,
            [grid.frequencies[-1] + grid.resolution / 2.0],
        )
    )
    power, _ = np.histogram(freqs, bins=edges, weights=psd * welch_df)
    return SpectrumTrace(grid, np.maximum(power, 0.0), label=label)
