"""Uniform frequency grids for spectrum captures.

A campaign is defined over a span with a resolution ``fres`` (Figure 10:
e.g. 0-4 MHz at 50 Hz → 80,000 points). The grid owns bin bookkeeping so
traces, renderers, and the heuristic all agree on indexing.
"""

from __future__ import annotations

import numpy as np

from ..errors import GridError
from ..units import format_frequency


class FrequencyGrid:
    """A uniform grid of frequency bins ``start + k * resolution``.

    ``start`` and ``stop`` are inclusive of the first bin and exclusive of
    the last edge; the number of bins is ``round((stop - start) / fres)``.
    """

    def __init__(self, start, stop, resolution):
        if resolution <= 0:
            raise GridError("resolution must be positive")
        if stop <= start:
            raise GridError("stop must exceed start")
        if start < 0:
            raise GridError("start frequency must be non-negative")
        self.start = float(start)
        self.stop = float(stop)
        self.resolution = float(resolution)
        self.n_bins = int(round((self.stop - self.start) / self.resolution))
        if self.n_bins < 2:
            raise GridError("grid must contain at least two bins")
        self._frequencies = self.start + np.arange(self.n_bins) * self.resolution

    @property
    def frequencies(self):
        """Bin center frequencies (Hz), read-only view."""
        view = self._frequencies.view()
        view.flags.writeable = False
        return view

    @property
    def span(self):
        return self.stop - self.start

    def index_of(self, frequency):
        """Index of the bin containing ``frequency``; raises when outside."""
        if not self.contains(frequency):
            raise GridError(
                f"frequency {format_frequency(frequency)} outside grid "
                f"[{format_frequency(self.start)}, {format_frequency(self.stop)})"
            )
        index = int(round((frequency - self.start) / self.resolution))
        # round() maps the last half-bin before ``stop`` to n_bins; clamp
        # to the nearest real bin so the documented [start, stop) domain
        # is indexable end to end.
        return min(max(index, 0), self.n_bins - 1)

    def contains(self, frequency):
        """Whether the frequency falls in the documented span [start, stop)."""
        return self.start <= frequency < self.stop

    def frequency_at(self, index):
        """Center frequency of bin ``index`` (supports negative indexing)."""
        if index < 0:
            index += self.n_bins
        if not 0 <= index < self.n_bins:
            raise GridError(f"bin index {index} outside grid of {self.n_bins} bins")
        return self.start + index * self.resolution

    def slice_indices(self, low, high):
        """(lo, hi) bin index range covering frequencies in [low, high]."""
        if high < low:
            raise GridError("slice bounds reversed")
        lo = int(np.ceil((low - self.start) / self.resolution - 1e-9))
        hi = int(np.floor((high - self.start) / self.resolution + 1e-9)) + 1
        lo = max(lo, 0)
        hi = min(hi, self.n_bins)
        if hi <= lo:
            raise GridError("slice contains no bins")
        return lo, hi

    def subgrid(self, low, high):
        """A new grid covering [low, high] with the same resolution."""
        lo, hi = self.slice_indices(low, high)
        return FrequencyGrid(
            self.frequency_at(lo),
            self.frequency_at(hi - 1) + self.resolution,
            self.resolution,
        )

    def __len__(self):
        return self.n_bins

    def __eq__(self, other):
        if not isinstance(other, FrequencyGrid):
            return NotImplemented
        return (
            abs(self.start - other.start) < 1e-9
            and abs(self.resolution - other.resolution) < 1e-12
            and self.n_bins == other.n_bins
        )

    def __hash__(self):
        return hash((round(self.start, 6), round(self.resolution, 9), self.n_bins))

    def __repr__(self):
        return (
            f"FrequencyGrid({format_frequency(self.start)} to "
            f"{format_frequency(self.stop)}, fres={format_frequency(self.resolution)}, "
            f"{self.n_bins} bins)"
        )
