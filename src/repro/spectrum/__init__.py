"""Spectrum capture and processing: grids, traces, analyzer, peak detection.

Models the measurement side of the paper's setup (an Agilent MXA N9020A
spectrum analyzer recording averaged power spectra at a configured
resolution bandwidth) and the generic peak-detection algorithms the paper
cites ([29] Palshikar) for post-processing the heuristic's output.
"""

from .grid import FrequencyGrid
from .trace import SpectrumTrace, average_traces
from .analyzer import SpectrumAnalyzer
from .welch import welch_psd, trace_from_iq
from .peaks import (
    palshikar_s1,
    palshikar_s2,
    detect_peaks,
    Peak,
)

__all__ = [
    "FrequencyGrid",
    "SpectrumTrace",
    "average_traces",
    "SpectrumAnalyzer",
    "welch_psd",
    "trace_from_iq",
    "palshikar_s1",
    "palshikar_s2",
    "detect_peaks",
    "Peak",
]
