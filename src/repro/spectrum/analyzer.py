"""Spectrum analyzer model: averaged power spectra with estimation noise.

The instrument in the paper (Agilent MXA N9020A) sweeps the span at a
resolution bandwidth equal to the campaign's ``fres`` and records an
averaged power trace. The statistically important behaviour for FASE is:

* each bin reports the *mean* power of everything falling inside its
  resolution bandwidth, plus receiver noise;
* a single capture of a noise-like bin fluctuates with an exponential
  (chi-squared, 2 d.o.f.) distribution; averaging K captures tightens the
  relative spread to 1/sqrt(K) (the paper averages 4).

We model the averaged trace directly: each bin's power is the scene's mean
power multiplied by a Gamma(K, 1/K) fluctuation. Deterministic capture
(``n_averages=None``) returns the exact mean, which benchmarks use to get
noise-free reference shapes.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..rng import ensure_rng
from ..telemetry import current_telemetry
from .grid import FrequencyGrid
from .trace import SpectrumTrace


class SpectrumAnalyzer:
    """Capture averaged power spectra of a scene over a grid.

    A *scene* is any object with ``mean_bin_power(grid) -> array`` giving
    the mean per-bin power in milliwatts (the system model plus environment
    provides this; see :mod:`repro.system.machine`).

    ``rbw`` models the instrument's resolution bandwidth: when it exceeds
    the grid's bin spacing, each bin collects power from its neighbors
    through a Gaussian filter of that 3-dB width — narrow lines smear, the
    noise floor per bin rises, exactly as widening the RBW knob on a real
    analyzer does. ``None`` (the default) means RBW = bin spacing.
    """

    def __init__(self, n_averages=4, rbw=None, rng=None):
        if n_averages is not None and n_averages < 1:
            raise TraceError("n_averages must be >= 1 (or None for exact mean)")
        if rbw is not None and rbw <= 0:
            raise TraceError("rbw must be positive")
        self.n_averages = n_averages
        self.rbw = rbw
        self.rng = ensure_rng(rng)

    def _apply_rbw(self, mean_power, grid):
        if self.rbw is None or self.rbw <= grid.resolution:
            return mean_power
        # Gaussian filter with the requested 3-dB bandwidth; kernel sums to
        # rbw/fres so a flat noise floor scales up by the bandwidth ratio
        # (per-bin noise power grows with RBW) while line total power is
        # conserved up to the same factor, as on the instrument.
        sigma_bins = (self.rbw / 2.355) / grid.resolution
        # An RBW wider than the span degenerates to "every bin sees the
        # whole span"; capping the kernel at the grid length keeps the
        # filter exact there while bounding the convolution cost (an
        # uncapped 100 MHz RBW on a 50 Hz grid would build a multi-million
        # point kernel for no extra information). The kernel must stay no
        # longer than the trace: np.convolve(mode="same") returns the
        # longer input's length.
        halfwidth = min(max(int(np.ceil(4 * sigma_bins)), 1), (grid.n_bins - 1) // 2)
        offsets = np.arange(-halfwidth, halfwidth + 1)
        kernel = np.exp(-0.5 * (offsets / sigma_bins) ** 2)
        kernel *= (self.rbw / grid.resolution) / kernel.sum()
        return np.convolve(mean_power, kernel, mode="same")

    def capture(self, scene, grid, label=""):
        """One averaged capture of the scene over the grid."""
        if not isinstance(grid, FrequencyGrid):
            raise TraceError("grid must be a FrequencyGrid")
        mean_power = np.asarray(scene.mean_bin_power(grid), dtype=float)
        if mean_power.shape != (grid.n_bins,):
            raise TraceError("scene returned a power array of the wrong shape")
        with current_telemetry().span(
            "average", stage="average", n_averages=self.n_averages, n_bins=grid.n_bins
        ):
            mean_power = self._apply_rbw(mean_power, grid)
            if self.n_averages is None:
                return SpectrumTrace(grid, mean_power, label=label)
            k = float(self.n_averages)
            fluctuation = self.rng.gamma(shape=k, scale=1.0 / k, size=grid.n_bins)
            return SpectrumTrace(grid, mean_power * fluctuation, label=label)

    def capture_many(self, scene, grid, count, label=""):
        """Several independent averaged captures (e.g. for variance studies)."""
        if count < 1:
            raise TraceError("count must be >= 1")
        return [self.capture(scene, grid, label=label) for _ in range(count)]


class StaticScene:
    """Adapter: wrap a fixed per-bin power array (or callable) as a scene.

    Useful in tests and in the time-domain cross-check where a Welch PSD is
    replayed through the analyzer interface.
    """

    def __init__(self, power_or_fn):
        self._source = power_or_fn

    def mean_bin_power(self, grid):
        if callable(self._source):
            return np.asarray(self._source(grid), dtype=float)
        power = np.asarray(self._source, dtype=float)
        if power.shape != (grid.n_bins,):
            raise TraceError("static scene power does not match grid")
        return power
