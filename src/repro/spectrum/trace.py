"""Spectrum traces: per-bin power over a frequency grid.

A :class:`SpectrumTrace` is what the analyzer returns and what the FASE
heuristic consumes. Internally power is stored *linearly* (milliwatts per
bin) because Eq. 2 of the paper is a ratio of powers; dBm is a view for
display and for matching the paper's figures.
"""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from ..units import dbm_to_milliwatts, milliwatts_to_dbm
from .grid import FrequencyGrid


class SpectrumTrace:
    """Power spectrum over a :class:`FrequencyGrid`.

    ``power_mw`` is a 1-D array of per-bin powers in milliwatts, aligned
    with ``grid.frequencies``. ``label`` carries provenance (which falt and
    activity pair produced the capture) through the pipeline and into
    reports.
    """

    def __init__(self, grid, power_mw, label=""):
        if not isinstance(grid, FrequencyGrid):
            raise TraceError("grid must be a FrequencyGrid")
        power = np.asarray(power_mw, dtype=float)
        if power.shape != (grid.n_bins,):
            raise TraceError(
                f"power array shape {power.shape} does not match grid with "
                f"{grid.n_bins} bins"
            )
        if np.any(power < 0):
            raise TraceError("per-bin power must be non-negative")
        self.grid = grid
        self.power_mw = power
        self.label = label

    @classmethod
    def from_dbm(cls, grid, dbm, label=""):
        """Build a trace from per-bin dBm values."""
        return cls(grid, dbm_to_milliwatts(np.asarray(dbm, dtype=float)), label=label)

    @property
    def frequencies(self):
        return self.grid.frequencies

    @property
    def dbm(self):
        """Per-bin power in dBm (floored, never -inf)."""
        return milliwatts_to_dbm(self.power_mw)

    def power_at(self, frequency):
        """Power (mW) in the bin containing ``frequency``."""
        return float(self.power_mw[self.grid.index_of(frequency)])

    def dbm_at(self, frequency):
        return float(milliwatts_to_dbm(self.power_at(frequency)))

    def interp_power(self, frequencies):
        """Linear-power interpolation at arbitrary frequencies.

        The heuristic evaluates spectra at ``f + h * falt_i`` which rarely
        lands exactly on a bin; linear interpolation of power keeps the
        score smooth. Frequencies outside the grid return the edge value.
        """
        return np.interp(frequencies, self.grid.frequencies, self.power_mw)

    def shifted_power(self, shift):
        """The trace's power evaluated at ``grid.frequencies + shift``.

        This is the core primitive of Eq. 2: ``SP_i(f + h * falt_i)``
        evaluated over the whole grid at once.
        """
        return self.interp_power(self.grid.frequencies + shift)

    def slice(self, low, high):
        """A new trace restricted to [low, high]."""
        lo, hi = self.grid.slice_indices(low, high)
        sub = self.grid.subgrid(low, high)
        return SpectrumTrace(sub, self.power_mw[lo:hi].copy(), label=self.label)

    def total_power(self):
        """Total power in the trace (mW)."""
        return float(self.power_mw.sum())

    def peak_frequency(self):
        """Frequency of the strongest bin."""
        return float(self.grid.frequency_at(int(np.argmax(self.power_mw))))

    def _check_compatible(self, other):
        if not isinstance(other, SpectrumTrace):
            raise TraceError("operand must be a SpectrumTrace")
        if self.grid != other.grid:
            raise TraceError("traces are on different grids")

    def __add__(self, other):
        self._check_compatible(other)
        return SpectrumTrace(self.grid, self.power_mw + other.power_mw, label=self.label)

    def scaled(self, factor):
        """Trace with power multiplied by a non-negative factor."""
        if factor < 0:
            raise TraceError("scale factor must be non-negative")
        return SpectrumTrace(self.grid, self.power_mw * factor, label=self.label)

    def __repr__(self):
        label = f", label={self.label!r}" if self.label else ""
        return f"SpectrumTrace({self.grid!r}{label})"


def average_traces(traces, label=None):
    """Average several traces bin-wise in linear power.

    The paper: "Each spectrum was measured 4 times over several hours and
    averaged." Averaging in linear power (not dB) is what a spectrum
    analyzer's power-average detector does.

    ``label`` names the averaged trace explicitly. When omitted, a label
    shared by every input is kept; inputs with differing labels (e.g.
    captures whose labels embed their own falt) produce a combined
    ``"average of N traces"`` label rather than silently inheriting the
    first capture's provenance.
    """
    traces = list(traces)
    if not traces:
        raise TraceError("cannot average zero traces")
    first = traces[0]
    accumulator = np.zeros_like(first.power_mw)
    for trace in traces:
        first._check_compatible(trace)
        accumulator += trace.power_mw
    if label is None:
        labels = {trace.label for trace in traces}
        label = first.label if len(labels) == 1 else f"average of {len(traces)} traces"
    return SpectrumTrace(first.grid, accumulator / len(traces), label=label)
