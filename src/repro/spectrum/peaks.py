"""Peak detection for heuristic outputs and spectra.

The paper defers peak detection to the literature ("[29] and [4] cover such
algorithms") and reports that the heuristic's output "had strong spikes" so
inspection was easy. We implement the cited family properly:

* Palshikar's S1/S2 spike functions (local max-/mean-difference scores), and
* a prominence-based detector built on them with noise-adaptive thresholds,

so the full pipeline is automated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError


@dataclass(frozen=True)
class Peak:
    """A detected peak: bin index, value at the peak, and its score."""

    index: int
    value: float
    score: float


def _validate_series(values, window):
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise DetectionError("peak detection expects a 1-D series")
    if window < 1:
        raise DetectionError("window must be >= 1")
    if values.size < 2 * window + 1:
        raise DetectionError("series shorter than the detection window")
    return values


def _windowed_neighbors(values, window):
    """(left, right) arrays of shape (n, window) of neighbors per position.

    Edges are padded with the edge value so scores stay defined there.
    """
    padded = np.pad(values, window, mode="edge")
    n = values.size
    left = np.empty((n, window), dtype=float)
    right = np.empty((n, window), dtype=float)
    for k in range(1, window + 1):
        left[:, k - 1] = padded[window - k : window - k + n]
        right[:, k - 1] = padded[window + k : window + k + n]
    return left, right


def palshikar_s1(values, window=3):
    """Palshikar's S1 spike function.

    S1(i) = (max over left window of (x_i - neighbor) +
             max over right window of (x_i - neighbor)) / 2.
    Large positive values mark points that stand above both sides.
    """
    values = _validate_series(values, window)
    left, right = _windowed_neighbors(values, window)
    x = values[:, None]
    return ((x - left).max(axis=1) + (x - right).max(axis=1)) / 2.0


def palshikar_s2(values, window=3):
    """Palshikar's S2 spike function: mean differences instead of max."""
    values = _validate_series(values, window)
    left, right = _windowed_neighbors(values, window)
    x = values[:, None]
    return ((x - left).mean(axis=1) + (x - right).mean(axis=1)) / 2.0


def detect_peaks(values, window=3, n_sigma=6.0, min_value=None, min_separation=None):
    """Find outstanding peaks in a series.

    Scores every point with Palshikar S1, flags points whose score exceeds
    the global score mean by ``n_sigma`` robust standard deviations (median
    absolute deviation scaled to sigma) and which are local maxima, then
    enforces ``min_separation`` bins between reported peaks by keeping the
    strongest in each cluster.

    ``min_value`` additionally requires the *series value* at the peak to
    exceed a floor — used by carrier detection to require score > 1 regions
    (the heuristic is ~1 off-carrier by construction).
    """
    values = _validate_series(values, window)
    scores = palshikar_s1(values, window)
    positive = scores[scores > 0]
    if positive.size == 0:
        return []
    median = float(np.median(scores))
    mad = float(np.median(np.abs(scores - median)))
    sigma = 1.4826 * mad
    if sigma <= 0:
        sigma = float(np.std(scores)) or 1.0
    threshold = median + n_sigma * sigma
    candidates = []
    for i in range(1, values.size - 1):
        if scores[i] <= threshold:
            continue
        if values[i] < values[i - 1] or values[i] < values[i + 1]:
            continue
        if min_value is not None and values[i] < min_value:
            continue
        candidates.append(Peak(index=i, value=float(values[i]), score=float(scores[i])))
    if not candidates:
        return []
    if min_separation is None:
        min_separation = window
    candidates.sort(key=lambda p: p.value, reverse=True)
    kept = []
    for peak in candidates:
        if all(abs(peak.index - other.index) >= min_separation for other in kept):
            kept.append(peak)
    kept.sort(key=lambda p: p.index)
    return kept
