"""Vectorized, cached scoring engine for the FASE heuristic.

The Eq. 1/2 scorer is the hot path of every campaign: a full-span survey
evaluates every spectrum at every shifted position ``f + h * falt_i`` —
N traces x H harmonics x N falts interpolations over grids of up to
hundreds of thousands of bins. :class:`ShiftedPowerCache` makes that
cheap twice over:

* **batched interpolation** — all N traces are stacked into one
  ``(N, n_bins)`` power matrix, and a shift is applied to every trace at
  once. Because the grid is uniform, ``f + shift`` lands at the same
  fractional bin offset for every bin, so the interpolation collapses to
  two gathers and one weighted sum instead of a per-trace binary-search
  ``np.interp``;
* **memoization** — shifted matrices are cached per shift, so the H x N
  score pipeline, the z-score fusion, and the detector's
  movement-verification pass never evaluate the same shift twice.

The cache is shared by :class:`~repro.core.heuristic.HeuristicScorer` and
:class:`~repro.core.detect.CarrierDetector`; the naive per-trace
``np.interp`` path survives as the reference implementation
(``HeuristicScorer(vectorized=False)``) that tests and benchmarks compare
against.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..errors import DetectionError


def shift_valid_range(grid, shift):
    """Half-open bin range ``[lo, hi)`` whose shifted positions have data.

    A bin can only be scored where ``f + shift`` falls inside the grid's
    span; outside it the interpolation merely clamps to the edge value.
    Because the grid is uniform the in-span bins always form one
    contiguous run, so the validity test reduces to two bounds. They are
    compared with a half-resolution tolerance: the exact boundary is
    derived from float arithmetic, and a strict comparison can flip the
    first/last in-span bin in or out when ``shift`` is an exact multiple
    of the resolution. Half a bin is the natural tolerance — a shifted
    position within half a bin of the span is still covered by the edge
    bin's resolution bandwidth.
    """
    # Bin k is valid iff -0.5 <= k + shift/fres <= n_bins - 1 + 0.5.
    offset = shift / grid.resolution
    lo = int(np.ceil(-offset - 0.5))
    hi = int(np.floor(grid.n_bins - 1 - offset + 0.5)) + 1
    lo = min(max(lo, 0), grid.n_bins)
    hi = min(max(hi, lo), grid.n_bins)
    return lo, hi


def shift_valid_mask(grid, shift):
    """Boolean-mask form of :func:`shift_valid_range` over the grid."""
    lo, hi = shift_valid_range(grid, shift)
    mask = np.zeros(grid.n_bins, dtype=bool)
    mask[lo:hi] = True
    return mask


class ShiftedPowerCache:
    """Batched, memoized ``SP_i(f + shift)`` evaluation for one campaign.

    Stacks the campaign's traces into a ``(N, n_bins)`` power matrix and
    evaluates each requested shift for *all* traces in one vectorized
    pass, caching the result so repeated shifts (the same ``h * falt_i``
    appears in every sub-score row and again in detection) are free.

    ``max_entries`` bounds the memo (LRU eviction); the default ``None``
    keeps every shift, which for a paper campaign (10 harmonics x 5
    falts) is 50 matrices.
    """

    def __init__(self, traces, max_entries=None):
        traces = list(traces)
        if len(traces) < 2:
            raise DetectionError("the scoring cache needs at least two traces")
        grid = traces[0].grid
        for trace in traces:
            if trace.grid != grid:
                raise DetectionError("traces must share one grid")
        if max_entries is not None and max_entries < 1:
            raise DetectionError("max_entries must be >= 1 (or None)")
        self.grid = grid
        self.power = np.ascontiguousarray(
            np.vstack([trace.power_mw for trace in traces])
        )
        self.max_entries = max_entries
        self._shifted = OrderedDict()
        self._rows = {}
        self._totals = {}
        self._floored_sums = {}
        self._ranges = {}
        self._masks = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_result(cls, result, max_entries=None):
        """Build a cache over a :class:`CampaignResult`'s traces."""
        return cls(result.traces, max_entries=max_entries)

    def subset(self, indices):
        """A new cache over a row-subset of this cache's traces.

        The degraded pipeline scores leave-one-out views (a flagged falt
        index excluded, Eq. 2 renormalized over the rest); subsetting
        reuses the already-stacked power matrix instead of restacking
        the surviving traces. Memoized shifts are *not* carried over —
        a shifted matrix of the full stack cannot be row-sliced into the
        child without pinning its memory, and the child's shift set
        differs anyway (different falts survive).
        """
        indices = [int(i) for i in indices]
        if len(indices) < 2:
            raise DetectionError("the scoring cache needs at least two traces")
        if len(set(indices)) != len(indices):
            raise DetectionError("subset indices must be distinct")
        for i in indices:
            if not 0 <= i < self.n_traces:
                raise DetectionError(f"trace index {i} outside 0..{self.n_traces - 1}")
        clone = object.__new__(type(self))
        clone.grid = self.grid
        clone.power = np.ascontiguousarray(self.power[indices])
        clone.max_entries = self.max_entries
        clone._shifted = OrderedDict()
        clone._rows = {}
        clone._totals = {}
        clone._floored_sums = {}
        clone._ranges = {}
        clone._masks = {}
        clone.hits = 0
        clone.misses = 0
        return clone

    @property
    def n_traces(self):
        return self.power.shape[0]

    @property
    def n_bins(self):
        return self.power.shape[1]

    # ------------------------------------------------------------------

    def shifted_all(self, shift):
        """``(N, n_bins)`` matrix of every trace evaluated at ``f + shift``.

        Matches ``np.interp`` semantics (linear interpolation, edge-value
        clamping outside the span) to within floating-point reordering.
        The returned array is shared with the cache — treat it as
        read-only.
        """
        key = float(shift)
        cached = self._shifted.get(key)
        if cached is not None:
            self._shifted.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        matrix = self._interpolate(key)
        matrix.flags.writeable = False
        self._shifted[key] = matrix
        if self.max_entries is not None and len(self._shifted) > self.max_entries:
            self._shifted.popitem(last=False)
        return matrix

    def shifted(self, index, shift):
        """One trace's shifted power: ``SP_index(f + shift)`` over the grid."""
        return self.shifted_all(shift)[index]

    def shifted_row(self, index, shift):
        """Like :meth:`shifted`, but never materializes the full matrix.

        The Eq. 2 numerator only ever reads trace ``i`` at shift
        ``h * falt_i``, so interpolating one row keeps the working set a
        single grid-length vector (cache-resident) instead of an
        ``(N, n_bins)`` matrix per shift. Falls through to an already
        cached full matrix when one exists.
        """
        shift = float(shift)
        full = self._shifted.get(shift)
        if full is not None:
            self._shifted.move_to_end(shift)
            self.hits += 1
            return full[index]
        key = (int(index), shift)
        row = self._rows.get(key)
        if row is not None:
            self.hits += 1
            return row
        self.misses += 1
        row = self._shift_matrix(self.power[index : index + 1], shift)[0]
        row.flags.writeable = False
        self._rows[key] = row
        return row

    def shifted_total(self, shift, floor=0.0):
        """``sum_j max(SP_j, floor)`` evaluated at ``f + shift``.

        Linear interpolation commutes with the sum over traces, so the
        Eq. 2 denominator needs one interpolation of a precomputed
        total-power vector instead of N per-trace interpolations. The
        floor is applied to the bin powers *before* interpolating; that
        matches flooring the interpolated values exactly wherever a trace
        does not cross the floor between adjacent bins (the floor sits
        ~7 decades below any physical noise floor, so in practice it only
        binds on all-zero synthetic traces, where both orderings agree).
        """
        shift = float(shift)
        floor = float(floor)
        key = (shift, floor)
        total = self._totals.get(key)
        if total is not None:
            self.hits += 1
            return total
        self.misses += 1
        base = self._floored_sums.get(floor)
        if base is None:
            floored = np.maximum(self.power, floor) if floor > 0.0 else self.power
            base = np.ascontiguousarray(floored.sum(axis=0))
            self._floored_sums[floor] = base
        total = self._shift_matrix(base[None, :], shift)[0]
        total.flags.writeable = False
        self._totals[key] = total
        return total

    def valid_range(self, shift):
        """Memoized :func:`shift_valid_range` for this cache's grid."""
        key = float(shift)
        bounds = self._ranges.get(key)
        if bounds is None:
            bounds = shift_valid_range(self.grid, key)
            self._ranges[key] = bounds
        return bounds

    def valid_mask(self, shift):
        """Memoized :func:`shift_valid_mask` for this cache's grid."""
        key = float(shift)
        mask = self._masks.get(key)
        if mask is None:
            mask = shift_valid_mask(self.grid, key)
            mask.flags.writeable = False
            self._masks[key] = mask
        return mask

    # ------------------------------------------------------------------

    def _interpolate(self, shift):
        """Uniform-grid linear interpolation of all traces at one shift."""
        return self._shift_matrix(self.power, shift)

    def _shift_matrix(self, power, shift):
        """Slice-blend interpolation of ``power`` rows at one shift.

        On a uniform grid ``f_k + shift`` sits at bin position
        ``k + shift/fres`` — a *constant* offset — so the interpolation is
        two contiguous slices blended by one scalar weight (plus constant
        edge clamps), with no per-point search or index gathers at all.
        ``power`` is any ``(M, n_bins)`` matrix over this cache's grid.
        """
        n_bins = self.n_bins
        offset = shift / self.grid.resolution
        whole = int(np.floor(offset))
        frac = offset - whole
        out = np.empty_like(power)
        # Columns k with 0 <= k+whole < n-1 interpolate between two real
        # bins; on the left of that range the shifted position is below
        # the span (clamp to the first bin), on the right at or past the
        # last bin center (clamp to the last bin, matching np.interp).
        lo = min(max(-whole, 0), n_bins)
        hi = min(max(n_bins - 1 - whole, 0), n_bins)
        if lo > 0:
            out[:, :lo] = power[:, :1]
        if hi < n_bins:
            out[:, hi:] = power[:, -1:]
        if hi > lo:
            left = power[:, lo + whole : hi + whole]
            if frac == 0.0:
                out[:, lo:hi] = left
            else:
                # left + frac*(right - left), evaluated in place so the
                # blend allocates nothing beyond the output itself.
                right = power[:, lo + whole + 1 : hi + whole + 1]
                interior = out[:, lo:hi]
                np.subtract(right, left, out=interior)
                interior *= frac
                interior += left
        return out

    def __repr__(self):
        return (
            f"ShiftedPowerCache({self.n_traces} traces x {self.n_bins} bins, "
            f"{len(self._shifted)} shifts cached, {self.hits} hits)"
        )
