"""Measurement campaigns: run the micro-benchmark, capture the spectra.

One campaign (Section 2.3): for each alternation frequency
``falt_i = falt1 + i * f_delta``, calibrate the X/Y micro-benchmark to that
frequency, let the system run it, and record the averaged spectrum
``SP_i``. The result bundles the traces with the *achieved* alternation
frequencies (integer loop counts quantize falt slightly; the heuristic uses
the real values, as the experimenters would after reading them off the
spectrum).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from ..errors import CampaignError, CaptureFaultError, DegradedCampaignError
from ..rng import child_rng, ensure_rng
from ..spectrum.analyzer import SpectrumAnalyzer
from ..telemetry import adopt_telemetry, current_telemetry, record_campaign_ledger
from ..uarch.activity import AlternationActivity
from ..uarch.microbench import AlternationMicrobenchmark
from ..uarch.timing import LatencyModel
from .config import FaseConfig


@dataclass(frozen=True)
class CampaignMeasurement:
    """One captured spectrum: the achieved falt, activity, and trace.

    ``flagged`` marks a capture the quality screen rejected after the
    retry budget ran out; its trace is kept (for inspection and the
    naive-vs-degraded detection delta) but the scoring path excludes it.
    ``quality`` is the screen's :class:`CaptureQuality` verdict when the
    capture was screened.
    """

    falt: float
    activity: AlternationActivity
    trace: object  # SpectrumTrace
    flagged: bool = False
    quality: object = None  # CaptureQuality | None


@dataclass
class CampaignResult:
    """All measurements of one campaign for one X/Y activity pair."""

    config: FaseConfig
    machine_name: str
    activity_label: str
    measurements: list = field(default_factory=list)
    robustness: object = None  # RobustnessReport | None for fault-plan runs

    @property
    def traces(self):
        return [m.trace for m in self.measurements]

    @property
    def falts(self):
        return [m.falt for m in self.measurements]

    @property
    def included_measurements(self):
        """Measurements the scoring path may use (not screen-flagged)."""
        return [m for m in self.measurements if not m.flagged]

    @property
    def excluded_indices(self):
        """Positions (into ``measurements``) of screen-flagged captures."""
        return [i for i, m in enumerate(self.measurements) if m.flagged]

    def scoring_view(self):
        """The result the Eq. 1/2 scorer should see.

        With no flagged captures this is ``self`` — bit-identical clean
        behavior. Otherwise it is the leave-one-out view: a result over
        the N-k unflagged measurements only, so Eq. 2's denominator
        renormalizes over the remaining spectra. Raises
        :class:`DegradedCampaignError` when fewer than two usable
        captures remain.
        """
        included = self.included_measurements
        if len(included) == len(self.measurements):
            return self
        if len(included) < 2:
            raise DegradedCampaignError(
                f"only {len(included)} usable capture(s) remain after exclusion; "
                "the heuristic needs at least two",
                robustness=self.robustness,
            )
        return CampaignResult(
            config=self.config,
            machine_name=self.machine_name,
            activity_label=self.activity_label,
            measurements=included,
            robustness=self.robustness,
        )

    def with_flags_cleared(self):
        """A view scoring *every* capture, flags ignored (delta baseline)."""
        if not self.excluded_indices:
            return self
        return CampaignResult(
            config=self.config,
            machine_name=self.machine_name,
            activity_label=self.activity_label,
            measurements=[replace(m, flagged=False) for m in self.measurements],
            robustness=self.robustness,
        )

    def prefix_view(self, n):
        """The campaign as it looked after its first ``n`` captures.

        The serial capture path appends measurements in falt order, so
        the prefix of length ``n`` is itself a valid (smaller) campaign:
        the Eq. 1/2 scorer sees a product of ``n`` factors instead of
        the full ``N``. The adaptive survey planner scores these views
        incrementally to bound how much evidence the remaining captures
        could still contribute. The view shares measurement objects with
        ``self`` — no traces are copied.
        """
        if not 2 <= n <= len(self.measurements):
            raise CampaignError(
                f"prefix length {n} outside 2..{len(self.measurements)}; "
                "the heuristic needs at least two measurements"
            )
        if n == len(self.measurements):
            return self
        return CampaignResult(
            config=self.config,
            machine_name=self.machine_name,
            activity_label=self.activity_label,
            measurements=self.measurements[:n],
            robustness=self.robustness,
        )

    @property
    def grid(self):
        if not self.measurements:
            raise CampaignError("campaign result has no measurements")
        return self.measurements[0].trace.grid

    def validate(self):
        """Sanity-check internal consistency (shared grid, distinct falts)."""
        if len(self.measurements) < 2:
            raise CampaignError("campaign needs at least two measurements")
        grid = self.grid
        for measurement in self.measurements:
            if measurement.trace.grid != grid:
                raise CampaignError("campaign traces are on different grids")
        falts = sorted(self.falts)
        for a, b in zip(falts, falts[1:]):
            if b - a < 2 * grid.resolution:
                raise CampaignError(
                    "achieved alternation frequencies are closer than two bins; "
                    "increase f_delta or decrease fres"
                )
        return self


class MeasurementCampaign:
    """Drives a system model through one FASE campaign.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) switches the
    campaign onto the degraded-mode path: captures go through a
    :class:`~repro.faults.FaultyAnalyzer`, every capture is screened
    against the cohort, failed or flagged captures are retried up to
    ``config.max_capture_retries`` times, and persistent failures are
    flagged (quality) or omitted (drops) with a full
    :class:`~repro.faults.RobustnessReport` on the result. Without a
    plan the capture paths are exactly the clean serial/parallel ones.
    """

    def __init__(self, machine, config, latency_model=None, rng=None, fault_plan=None):
        self.machine = machine
        self.config = config
        self.latency_model = latency_model or LatencyModel()
        self.rng = ensure_rng(rng)
        self.fault_plan = fault_plan

    def _analyzer(self):
        return SpectrumAnalyzer(
            n_averages=self.config.n_averages, rng=child_rng(self.rng, "analyzer")
        )

    def _indexed_analyzer(self, index, attempt=0):
        """A clean analyzer on the per-measurement derived noise stream.

        Attempt 0 is the ``analyzer:{index}`` stream of the parallel clean
        path; retries get their own ``analyzer:{index}:retry{a}`` stream.
        Every consumer of indexed captures (the parallel path, the
        degraded fault path, and :class:`repro.runner.DurableCampaign`)
        derives analyzers here, so their outputs are pure functions of
        (seed, index, attempt) and agree byte-for-byte with each other.
        """
        suffix = f"analyzer:{index}" if attempt == 0 else f"analyzer:{index}:retry{attempt}"
        return SpectrumAnalyzer(
            n_averages=self.config.n_averages, rng=child_rng(self.rng, suffix)
        )

    def capture_index(self, activities, label, grid, index, attempt=0):
        """One clean indexed capture as a :class:`CampaignMeasurement`."""
        activity = activities[index]
        with current_telemetry().span(
            "capture", stage="capture", index=index, attempt=attempt, falt=activity.falt
        ):
            scene = self.machine.scene(activity)
            trace = self._indexed_analyzer(index, attempt).capture(
                scene, grid, label=f"{label} falt={activity.falt:.6g}Hz"
            )
        return CampaignMeasurement(falt=activity.falt, activity=activity, trace=trace)

    def activities_for(self, op_x, op_y, label=None):
        """One calibrated alternation activity per configured falt."""
        activities = []
        for falt in self.config.falts():
            bench = AlternationMicrobenchmark.calibrated(
                op_x, op_y, falt, latency_model=self.latency_model
            )
            activities.append(bench.activity(label=label))
        return activities

    def run(self, op_x, op_y, label=None):
        """Calibrate and measure at every alternation frequency.

        ``op_x``/``op_y`` are :class:`~repro.uarch.isa.MicroOp` values (the
        paper's notation LDM/LDL1 is ``MicroOp.LDM, MicroOp.LDL1``).
        """
        return self.run_with_activities(self.activities_for(op_x, op_y, label), label=label)

    def iter_captures(self, activities, label=None):
        """The clean serial capture sequence, one measurement at a time.

        Yields exactly what the serial branch of
        :meth:`run_with_activities` records: one analyzer on the shared
        ``analyzer`` child stream, consumed in activity order. Because
        the stream is consumed strictly sequentially, a consumer that
        stops after ``k`` measurements holds a byte-identical prefix of
        the full run — the remaining noise draws are simply never made.
        The adaptive survey planner's early stop rests on this: captures
        it did take match the exhaustive run's, captures it skipped cost
        nothing.
        """
        label = label or (activities[0].label if activities else None) or "activity"
        grid = self.config.grid()
        analyzer = self._analyzer()
        telemetry = current_telemetry()
        for index, activity in enumerate(activities):
            with telemetry.span(
                "capture", stage="capture", index=index, attempt=0, falt=activity.falt
            ):
                scene = self.machine.scene(activity)
                trace = analyzer.capture(
                    scene, grid, label=f"{label} falt={activity.falt:.6g}Hz"
                )
            yield CampaignMeasurement(falt=activity.falt, activity=activity, trace=trace)

    def run_with_activities(self, activities, label=None):
        """Measure a pre-built activity per alternation frequency.

        Accepts arbitrary :class:`AlternationActivity` objects — used by
        tests to plant precisely controlled modulation, and by the
        steady-state captures of Figure 14 (constant activities carry no
        side-bands but still produce valid traces).
        """
        if len(activities) < 2:
            raise CampaignError("need at least two activities (one per falt)")
        grid = self.config.grid()
        result = CampaignResult(
            config=self.config,
            machine_name=self.machine.name,
            activity_label=label or activities[0].label or "activity",
        )
        telemetry = current_telemetry()
        n_workers = min(self.config.n_workers, len(activities))
        with telemetry.span(
            "campaign", label=result.activity_label, n_falts=len(activities)
        ):
            if self.fault_plan is not None:
                measurements, robustness = self._capture_degraded(
                    activities, result.activity_label, grid, n_workers
                )
                result.measurements.extend(measurements)
                result.robustness = robustness
                record_campaign_ledger(telemetry, result.measurements, robustness)
                if len(result.included_measurements) < 2:
                    raise DegradedCampaignError(
                        f"only {len(result.included_measurements)} usable capture(s) out of "
                        f"{len(activities)} survived fault screening",
                        robustness=robustness,
                    )
                return result.validate()
            if n_workers > 1:
                result.measurements.extend(
                    self._capture_parallel(activities, result.activity_label, grid, n_workers)
                )
            else:
                result.measurements.extend(
                    self.iter_captures(activities, label=result.activity_label)
                )
            record_campaign_ledger(telemetry, result.measurements, None)
        return result.validate()

    def _capture_parallel(self, activities, label, grid, n_workers):
        """Capture every activity's spectrum concurrently.

        Each measurement gets its own analyzer whose noise stream is
        derived from the campaign seed and the measurement index, so the
        result is reproducible regardless of thread scheduling or worker
        count (but differs from the serial shared-stream capture order).
        Scene rendering is pure and emitters are immutable during render,
        so sharing the machine across threads is safe.
        """

        def capture(index):
            return self.capture_index(activities, label, grid, index)

        with ThreadPoolExecutor(
            max_workers=n_workers,
            initializer=adopt_telemetry,
            initargs=(current_telemetry(),),
        ) as pool:
            return list(pool.map(capture, range(len(activities))))

    # ------------------------------------------------------------------
    # Degraded mode: fault injection, screening, bounded retries.

    def _degraded_attempt(self, activities, label, grid, index, attempt):
        """One capture attempt of measurement ``index`` under the fault plan.

        Noise and fault streams are both derived from (seed, index,
        attempt) — never from a shared sequential stream — so the outcome
        is a pure function of those three regardless of worker count or
        scheduling. Attempt 0 reuses the clean parallel path's
        ``analyzer:{index}`` stream, making a ``FaultPlan.none()`` run
        byte-identical to the clean parallel capture path.

        Returns ``(trace_or_None, events)``.
        """
        from ..faults.analyzer import FaultyAnalyzer

        analyzer = FaultyAnalyzer(
            self._indexed_analyzer(index, attempt),
            self.fault_plan,
            child_rng(self.rng, f"faults:{index}:{attempt}"),
            index=index,
            attempt=attempt,
        )
        activity = activities[index]
        with current_telemetry().span(
            "capture", stage="capture", index=index, attempt=attempt, falt=activity.falt
        ) as capture_span:
            scene = self.machine.scene(activity)
            try:
                trace = analyzer.capture(
                    scene, grid, label=f"{label} falt={activity.falt:.6g}Hz"
                )
            except CaptureFaultError:
                capture_span.set(dropped=True)
                return None, analyzer.events
        return trace, analyzer.events

    def _capture_degraded(self, activities, label, grid, n_workers):
        """Capture every activity under the fault plan, screening and retrying.

        Three deterministic stages: (1) capture every index, immediately
        retrying drops; (2) screen the cohort and retry flagged captures
        (the cohort reference is recomputed after each retry round, since
        a recovered capture sharpens it); (3) flag whatever still fails
        with its final quality verdict. Results are aggregated in index
        order, so the report and the traces are identical for any
        ``n_workers``.
        """
        from ..faults.robustness import RobustnessReport

        plan = self.fault_plan
        max_retries = self.config.max_capture_retries
        n = len(activities)
        attempts = [0] * n
        traces = [None] * n
        events = []
        excluded = {}

        def run_attempts(indices):
            tasks = [(index, attempts[index]) for index in indices]
            if n_workers > 1 and len(tasks) > 1:
                with ThreadPoolExecutor(
                    max_workers=min(n_workers, len(tasks)),
                    initializer=adopt_telemetry,
                    initargs=(current_telemetry(),),
                ) as pool:
                    outcomes = list(
                        pool.map(
                            lambda task: self._degraded_attempt(activities, label, grid, *task),
                            tasks,
                        )
                    )
            else:
                outcomes = [
                    self._degraded_attempt(activities, label, grid, index, attempt)
                    for index, attempt in tasks
                ]
            for index, (trace, attempt_events) in zip(indices, outcomes):
                events.extend(attempt_events)
                traces[index] = trace

        def capture_until_present(indices):
            """Attempt each index once, immediately retrying drops while
            the per-index budget lasts; budget-exhausted drops are
            recorded as excluded."""
            pending = list(indices)
            while pending:
                run_attempts(pending)
                retry = []
                for index in pending:
                    if traces[index] is not None:
                        continue
                    if attempts[index] < max_retries:
                        attempts[index] += 1
                        retry.append(index)
                    else:
                        excluded[index] = (
                            f"capture dropped on all {attempts[index] + 1} attempt(s)",
                        )
                pending = retry

        # Stage 1: first capture of every index (drop retries inline).
        capture_until_present(range(n))

        # Stage 2: cohort screening with bounded retries of flagged
        # captures; the reference is recomputed each round because a
        # recovered capture sharpens it.
        qualities = {}
        while True:
            present = [index for index in range(n) if traces[index] is not None]
            if len(present) < 2:
                break
            reference = plan.screen.reference([traces[index] for index in present])
            qualities = {
                index: plan.screen.assess(traces[index], reference) for index in present
            }
            retry = [
                index
                for index in present
                if not qualities[index].ok and attempts[index] < max_retries
            ]
            if not retry:
                break
            for index in retry:
                attempts[index] += 1
            capture_until_present(retry)

        # Stage 3: assemble measurements; persistently bad captures are
        # flagged (kept) and fully dropped ones omitted.
        dropped = tuple(index for index in range(n) if traces[index] is None)
        measurements = []
        for index, activity in enumerate(activities):
            trace = traces[index]
            if trace is None:
                continue
            quality = qualities.get(index)
            flagged = quality is not None and not quality.ok
            if flagged:
                excluded[index] = quality.reasons
                current_telemetry().event(
                    "screen-rejection", index=index, reasons=list(quality.reasons)
                )
            measurements.append(
                CampaignMeasurement(
                    falt=activity.falt,
                    activity=activity,
                    trace=trace,
                    flagged=flagged,
                    quality=quality,
                )
            )
        robustness = RobustnessReport(
            plan_description=plan.describe(),
            events=events,
            retries={
                index: attempts[index] for index in range(n) if attempts[index] > 0
            },
            excluded=excluded,
            dropped=dropped,
        )
        return measurements, robustness

    def capture_steady(self, levels, label="steady"):
        """One averaged capture of a constant workload (e.g. Figure 14)."""
        activity = AlternationActivity.constant(levels, label=label)
        analyzer = self._analyzer()
        return analyzer.capture(self.machine.scene(activity), self.config.grid(), label=label)
