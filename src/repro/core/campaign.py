"""Measurement campaigns: run the micro-benchmark, capture the spectra.

One campaign (Section 2.3): for each alternation frequency
``falt_i = falt1 + i * f_delta``, calibrate the X/Y micro-benchmark to that
frequency, let the system run it, and record the averaged spectrum
``SP_i``. The result bundles the traces with the *achieved* alternation
frequencies (integer loop counts quantize falt slightly; the heuristic uses
the real values, as the experimenters would after reading them off the
spectrum).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import CampaignError
from ..rng import child_rng, ensure_rng
from ..spectrum.analyzer import SpectrumAnalyzer
from ..uarch.activity import AlternationActivity
from ..uarch.microbench import AlternationMicrobenchmark
from ..uarch.timing import LatencyModel
from .config import FaseConfig


@dataclass(frozen=True)
class CampaignMeasurement:
    """One captured spectrum: the achieved falt, activity, and trace."""

    falt: float
    activity: AlternationActivity
    trace: object  # SpectrumTrace


@dataclass
class CampaignResult:
    """All measurements of one campaign for one X/Y activity pair."""

    config: FaseConfig
    machine_name: str
    activity_label: str
    measurements: list = field(default_factory=list)

    @property
    def traces(self):
        return [m.trace for m in self.measurements]

    @property
    def falts(self):
        return [m.falt for m in self.measurements]

    @property
    def grid(self):
        if not self.measurements:
            raise CampaignError("campaign result has no measurements")
        return self.measurements[0].trace.grid

    def validate(self):
        """Sanity-check internal consistency (shared grid, distinct falts)."""
        if len(self.measurements) < 2:
            raise CampaignError("campaign needs at least two measurements")
        grid = self.grid
        for measurement in self.measurements:
            if measurement.trace.grid != grid:
                raise CampaignError("campaign traces are on different grids")
        falts = sorted(self.falts)
        for a, b in zip(falts, falts[1:]):
            if b - a < 2 * grid.resolution:
                raise CampaignError(
                    "achieved alternation frequencies are closer than two bins; "
                    "increase f_delta or decrease fres"
                )
        return self


class MeasurementCampaign:
    """Drives a system model through one FASE campaign."""

    def __init__(self, machine, config, latency_model=None, rng=None):
        self.machine = machine
        self.config = config
        self.latency_model = latency_model or LatencyModel()
        self.rng = ensure_rng(rng)

    def _analyzer(self):
        return SpectrumAnalyzer(
            n_averages=self.config.n_averages, rng=child_rng(self.rng, "analyzer")
        )

    def run(self, op_x, op_y, label=None):
        """Calibrate and measure at every alternation frequency.

        ``op_x``/``op_y`` are :class:`~repro.uarch.isa.MicroOp` values (the
        paper's notation LDM/LDL1 is ``MicroOp.LDM, MicroOp.LDL1``).
        """
        activities = []
        for falt in self.config.falts():
            bench = AlternationMicrobenchmark.calibrated(
                op_x, op_y, falt, latency_model=self.latency_model
            )
            activities.append(bench.activity(label=label))
        return self.run_with_activities(activities, label=label)

    def run_with_activities(self, activities, label=None):
        """Measure a pre-built activity per alternation frequency.

        Accepts arbitrary :class:`AlternationActivity` objects — used by
        tests to plant precisely controlled modulation, and by the
        steady-state captures of Figure 14 (constant activities carry no
        side-bands but still produce valid traces).
        """
        if len(activities) < 2:
            raise CampaignError("need at least two activities (one per falt)")
        grid = self.config.grid()
        result = CampaignResult(
            config=self.config,
            machine_name=self.machine.name,
            activity_label=label or activities[0].label or "activity",
        )
        n_workers = min(self.config.n_workers, len(activities))
        if n_workers > 1:
            result.measurements.extend(
                self._capture_parallel(activities, result.activity_label, grid, n_workers)
            )
        else:
            analyzer = self._analyzer()
            for activity in activities:
                scene = self.machine.scene(activity)
                trace = analyzer.capture(
                    scene, grid, label=f"{result.activity_label} falt={activity.falt:.6g}Hz"
                )
                result.measurements.append(
                    CampaignMeasurement(falt=activity.falt, activity=activity, trace=trace)
                )
        return result.validate()

    def _capture_parallel(self, activities, label, grid, n_workers):
        """Capture every activity's spectrum concurrently.

        Each measurement gets its own analyzer whose noise stream is
        derived from the campaign seed and the measurement index, so the
        result is reproducible regardless of thread scheduling or worker
        count (but differs from the serial shared-stream capture order).
        Scene rendering is pure and emitters are immutable during render,
        so sharing the machine across threads is safe.
        """
        analyzers = [
            SpectrumAnalyzer(
                n_averages=self.config.n_averages,
                rng=child_rng(self.rng, f"analyzer:{index}"),
            )
            for index in range(len(activities))
        ]

        def capture(index):
            activity = activities[index]
            scene = self.machine.scene(activity)
            trace = analyzers[index].capture(
                scene, grid, label=f"{label} falt={activity.falt:.6g}Hz"
            )
            return CampaignMeasurement(falt=activity.falt, activity=activity, trace=trace)

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            return list(pool.map(capture, range(len(activities))))

    def capture_steady(self, levels, label="steady"):
        """One averaged capture of a constant workload (e.g. Figure 14)."""
        activity = AlternationActivity.constant(levels, label=label)
        analyzer = self._analyzer()
        return analyzer.capture(self.machine.scene(activity), self.config.grid(), label=label)
