"""FASE reports: the human-readable end product.

A :class:`FaseReport` bundles what Figure 11/13/17 show — the detected
carriers with their magnitudes and harmonic grouping — plus the
cross-activity classification of Section 4, rendered as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..units import format_frequency


@dataclass
class ActivityReport:
    """Detections for one X/Y activity pair.

    ``robustness`` is the campaign's
    :class:`~repro.faults.RobustnessReport` when the run used a fault
    plan — degradation is part of the end product, never silent.
    """

    activity_label: str
    detections: list
    harmonic_sets: list
    robustness: object = None

    def to_text(self):
        lines = [f"activity {self.activity_label}: {len(self.detections)} carriers"]
        for harmonic_set in self.harmonic_sets:
            lines.append(f"  set {harmonic_set.describe()}")
            for order, detection in harmonic_set.members:
                lines.append(f"    [{order:>2}] {detection.describe()}")
        if self.robustness is not None:
            lines.extend("  " + line for line in self.robustness.to_text().splitlines())
        return "\n".join(lines)


@dataclass
class FaseReport:
    """Full FASE run over one machine: per-activity results + classification.

    ``telemetry`` holds the run's final metrics snapshot as a plain dict
    (see :meth:`repro.telemetry.MetricsSnapshot.to_dict`) when the run
    was handed a :class:`~repro.telemetry.Telemetry`; ``None`` otherwise.
    """

    machine_name: str
    config_description: str
    activities: dict = field(default_factory=dict)  # label -> ActivityReport
    sources: list = field(default_factory=list)  # ClassifiedSource
    telemetry: object = None

    def detections_for(self, label):
        return self.activities[label].detections

    def sets_for(self, label):
        return self.activities[label].harmonic_sets

    def all_harmonic_sets(self):
        """Every harmonic set across all activities, in activity order.

        The survey engine feeds this into the cross-machine source
        comparison (:func:`~repro.core.classify.classify_sources` with one
        "activity" per machine).
        """
        sets = []
        for report in self.activities.values():
            sets.extend(report.harmonic_sets)
        return sets

    def carriers_near(self, frequency, label=None, rel_tol=0.01):
        """Detections within a relative tolerance of a frequency."""
        labels = [label] if label else list(self.activities)
        matches = []
        for lbl in labels:
            for detection in self.activities[lbl].detections:
                if abs(detection.frequency - frequency) <= rel_tol * frequency:
                    matches.append(detection)
        return matches

    def to_text(self):
        lines = [
            f"FASE report for {self.machine_name}",
            f"  {self.config_description}",
            "",
        ]
        for report in self.activities.values():
            lines.append(report.to_text())
            lines.append("")
        if self.sources:
            lines.append("classified sources:")
            for source in self.sources:
                lines.append(f"  {source.describe()}")
        return "\n".join(lines)

    def summary(self):
        """One line per source, in the style of the paper's figure legends."""
        lines = []
        for source in self.sources:
            lines.append(
                f"{format_frequency(source.harmonic_set.fundamental)}: "
                f"{source.mechanism} ({source.fingerprint})"
            )
        return "\n".join(lines)
