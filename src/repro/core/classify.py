"""Source classification from cross-activity evidence (Section 4 workflow).

"FASE results for different X/Y pairings usually provide a strong
indication of which aspect of the system modulates a given carrier signal"
— a carrier modulated by LDM/LDL1 but not by LDL2/LDL1 is memory-side; one
modulated by on-chip alternation only is core-side. On top of that
activity fingerprint, frequency-range and line-shape heuristics (mirroring
the paper's data-sheet reasoning) suggest the physical mechanism:

* 100-200 kHz, crystal-sharp, anti-correlated with activity → memory refresh
* 150-600 kHz, Gaussian lines, strong even harmonics → switching regulator
* tens of MHz and up, band-shaped → (spread-spectrum) clock
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DetectionError

#: Activity-fingerprint classes.
MEMORY_SIDE = "memory-side"
CORE_SIDE = "core-side"
SHARED = "shared"
UNKNOWN = "unknown"

#: Mechanism hypotheses.
SWITCHING_REGULATOR = "switching regulator"
MEMORY_REFRESH = "memory refresh"
CLOCK = "clock"
UNIDENTIFIED = "unidentified"


@dataclass(frozen=True)
class ClassifiedSource:
    """One harmonic set with its activity fingerprint and mechanism guess."""

    harmonic_set: object
    fingerprint: str
    mechanism: str
    modulating_labels: tuple

    def describe(self):
        labels = ", ".join(self.modulating_labels) or "none"
        return (
            f"{self.harmonic_set.describe()} -> {self.fingerprint}, "
            f"likely {self.mechanism} (modulated by: {labels})"
        )


def _set_matches(harmonic_set, other_set, rel_tol=0.02):
    """Whether two harmonic sets describe the same source.

    True when their fundamentals are near-equal or near-integer multiples
    (the same comb grouped at a different lowest observed member).
    """
    a, b = sorted((harmonic_set.fundamental, other_set.fundamental))
    ratio = b / a
    order = round(ratio)
    return order >= 1 and abs(ratio - order) <= rel_tol * order


def classify_sources(
    sets_by_activity,
    memory_labels=("LDM/LDL1",),
    onchip_labels=("LDL2/LDL1",),
):
    """Fuse per-activity harmonic sets into classified sources.

    ``sets_by_activity`` maps an activity label (e.g. ``"LDM/LDL1"``) to
    the list of :class:`~repro.core.harmonics.HarmonicSet` detected with
    that pair. Returns one :class:`ClassifiedSource` per distinct source.
    """
    if not sets_by_activity:
        raise DetectionError("need at least one activity's detections")
    sources = []
    consumed = [set() for _ in sets_by_activity]
    labels = list(sets_by_activity)
    for i, label in enumerate(labels):
        for j, harmonic_set in enumerate(sets_by_activity[label]):
            if j in consumed[i]:
                continue
            modulating = [label]
            for k in range(i + 1, len(labels)):
                other_label = labels[k]
                for m, other_set in enumerate(sets_by_activity[other_label]):
                    if m in consumed[k]:
                        continue
                    if _set_matches(harmonic_set, other_set):
                        consumed[k].add(m)
                        modulating.append(other_label)
                        break
            fingerprint = _fingerprint(modulating, memory_labels, onchip_labels)
            mechanism = _mechanism(harmonic_set)
            sources.append(
                ClassifiedSource(
                    harmonic_set=harmonic_set,
                    fingerprint=fingerprint,
                    mechanism=mechanism,
                    modulating_labels=tuple(modulating),
                )
            )
    sources.sort(key=lambda s: s.harmonic_set.fundamental)
    return sources


def _fingerprint(modulating, memory_labels, onchip_labels):
    by_memory = any(label in memory_labels for label in modulating)
    by_onchip = any(label in onchip_labels for label in modulating)
    if by_memory and by_onchip:
        return SHARED
    if by_memory:
        return MEMORY_SIDE
    if by_onchip:
        return CORE_SIDE
    return UNKNOWN


def _mechanism(harmonic_set):
    """Frequency/structure heuristics for the physical mechanism."""
    fundamental = harmonic_set.fundamental
    n_harmonics = len(harmonic_set.members)
    if fundamental >= 30e6:
        return CLOCK
    if 80e3 <= fundamental < 150e3:
        return MEMORY_REFRESH
    if 150e3 <= fundamental <= 600e3:
        # Refresh combs grouped at their strong comb line (e.g. 512 kHz)
        # are distinguished from regulators by their many similar-strength
        # harmonics: a <3 % duty pulse train's sinc envelope decays slowly
        # and its crystal lines stay sharp, while a regulator's detectable
        # harmonics are few (the RC linewidth grows with order, washing
        # out the falt shift) and decay faster.
        magnitudes = [member.magnitude_dbm for _, member in harmonic_set.members]
        if n_harmonics >= 4 and (max(magnitudes) - min(magnitudes)) < 15.0:
            return MEMORY_REFRESH
        return SWITCHING_REGULATOR
    return UNIDENTIFIED
