"""Carrier detection on top of the heuristic scores.

The paper stops at "visually inspecting the heuristic function's output to
identify peaks", deferring algorithms to its refs [29]/[4]; we automate the
step with the Palshikar peak detector from :mod:`repro.spectrum.peaks`:

1. compute F_h(f) for every configured harmonic (±1..±5),
2. fuse them into a combined log-evidence curve,
3. find above-threshold score clusters,
4. verify each contributing harmonic by the paper's movement rule, and
5. record the carrier's frequency (from the movement fit), magnitude, and
   estimated modulation depth.

Detection of a single harmonic of falt in a single side-band is sufficient
(Section 2.3), so a carrier is kept when at least one harmonic's score
clears the threshold *and* passes movement verification.

Movement verification implements Section 2.3's uniqueness argument: "the
observed spacing between the side-band peaks is unique for each harmonic
(2h∆ for the positive 2nd harmonic, -3h∆ for the negative third harmonic,
etc.)". A side-band scored under harmonic ``h`` must have its spectral
peak at ``f + h*falt_i`` in *every* measurement — its position regressed
against falt_i must have slope ``h``. Strong side-bands of *other*
carriers produce partial score alignments under the wrong harmonic index
("ghosts"), but their measured slope is their own k ≠ h, so the fit
rejects them. The fit's intercept is the carrier frequency, which is how
FASE "computes the frequency of the carrier" without needing to see the
carrier peak itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..telemetry import current_telemetry
from ..units import format_frequency, milliwatts_to_dbm
from .heuristic import HeuristicScorer


@dataclass(frozen=True)
class CarrierDetection:
    """One detected activity-modulated carrier.

    ``combined_score`` is the scorer's fused log10 evidence at the
    carrier ("decades of evidence",
    :meth:`~repro.core.heuristic.HeuristicScorer.combined_score`) — the
    unit :meth:`describe` reports. Detection thresholds operate on the
    separate combined *z-score*, which is not stored here.
    """

    frequency: float
    combined_score: float
    harmonic_scores: dict
    magnitude_dbm: float
    modulation_depth: float
    activity_label: str = ""

    @property
    def detected_harmonics(self):
        """Alternation harmonics whose F_h fired at this carrier."""
        return sorted(self.harmonic_scores)

    def describe(self):
        harmonics = ", ".join(f"{h:+d}" for h in self.detected_harmonics)
        return (
            f"carrier at {format_frequency(self.frequency)}: "
            f"{self.magnitude_dbm:.1f} dBm, evidence {self.combined_score:.1f} decades "
            f"(harmonics {harmonics}), depth {self.modulation_depth:.2f}"
        )


class CarrierDetector:
    """Finds activity-modulated carriers in a campaign result."""

    def __init__(
        self,
        scorer=None,
        min_combined_z=5.5,
        min_harmonic_z=4.5,
        min_harmonics=1,
        min_separation_hz=10e3,
        peak_window_bins=5,
        smoothing_bins=3,
        slope_tolerance=0.35,
        movement_window_hz=None,
    ):
        if min_combined_z <= 0:
            raise DetectionError("min combined z must be positive")
        if min_harmonic_z <= 0:
            raise DetectionError("min harmonic z must be positive")
        if min_harmonics < 1:
            raise DetectionError("min_harmonics must be >= 1")
        if min_separation_hz <= 0:
            raise DetectionError("min separation must be positive")
        if smoothing_bins < 1:
            raise DetectionError("smoothing_bins must be >= 1")
        self.scorer = scorer or HeuristicScorer()
        self.min_combined_z = float(min_combined_z)
        self.min_harmonic_z = float(min_harmonic_z)
        self.min_harmonics = int(min_harmonics)
        self.min_separation_hz = float(min_separation_hz)
        self.peak_window_bins = int(peak_window_bins)
        self.smoothing_bins = int(smoothing_bins)
        if slope_tolerance <= 0 or slope_tolerance >= 0.5:
            raise DetectionError("slope tolerance must be in (0, 0.5)")
        self.slope_tolerance = float(slope_tolerance)
        self.movement_window_hz = movement_window_hz

    # ------------------------------------------------------------------

    def detect(self, result):
        """All carriers modulated by the campaign's activity pair.

        One :class:`ShiftedPowerCache` is built per run and shared between
        the Eq. 1/2 scoring pass and the movement-verification /
        characterization reads, so no spectrum is stacked or interpolated
        twice (reference-mode scorers skip the cache by design).

        A degraded result (screen-flagged captures) is detected on its
        leave-one-out view: flagged captures contribute neither scores
        nor movement-fit points nor characterization reads. With no
        flags the view *is* the result, so clean behavior is unchanged.
        """
        view = getattr(result, "scoring_view", None)
        if view is not None:
            result = view()
        result.validate()
        telemetry = current_telemetry()
        with telemetry.span(
            "detect", stage="detect", label=result.activity_label
        ) as detect_span:
            cache_for = getattr(self.scorer, "cache_for", None)
            cache = cache_for(result) if cache_for is not None else None
            if cache is not None:
                scores = self.scorer.all_scores(result, cache=cache)
            else:
                scores = self.scorer.all_scores(result)
            zscores = self.scorer.harmonic_zscores(result, scores=scores)
            combined = self.scorer.combined_zscore(result, zscores=zscores)
            smoothed = self._smooth(combined)
            # Thresholding/clustering run on the z-score, but the reported
            # combined_score is the scorer's log10 evidence — the unit
            # describe() claims ("decades").
            evidence = self.scorer.combined_score(result, scores=scores)
            grid = result.grid
            min_separation_bins = max(int(round(self.min_separation_hz / grid.resolution)), 2)
            detections = []
            for start, stop in self._cluster_runs(smoothed, min_separation_bins):
                for index in self._cluster_candidates(
                    smoothed, start, stop, min_separation_bins
                ):
                    detection = self._build_detection(
                        result, scores, zscores, evidence, index, cache=cache
                    )
                    if detection is None:
                        continue
                    if any(
                        abs(detection.frequency - other.frequency) < self.min_separation_hz
                        for other in detections
                    ):
                        continue  # same carrier reached from a second candidate
                    detections.append(detection)
            detections.sort(key=lambda d: d.frequency)
            detect_span.set(n_detections=len(detections))
            if cache is not None:
                telemetry.count("scoring_cache_hits", cache.hits)
                telemetry.count("scoring_cache_misses", cache.misses)
        return detections

    # ------------------------------------------------------------------

    def _smooth(self, array):
        """Boxcar smoothing: averages down bin noise, keeps multi-bin peaks."""
        if self.smoothing_bins <= 1:
            return array
        kernel = np.ones(self.smoothing_bins) / self.smoothing_bins
        return np.convolve(array, kernel, mode="same")

    def _cluster_runs(self, smoothed, min_separation_bins):
        """(start, stop) index runs where the score clears the threshold.

        A carrier produces a *hump* in the combined z-score as wide as its
        spectral line (many bins for Gaussian regulator lines), not a sharp
        spike, so local-prominence peak pickers under-fire; instead we take
        connected above-threshold regions, merging regions closer than the
        separation.
        """
        above = smoothed >= self.min_combined_z
        if not np.any(above):
            return []
        indices = np.flatnonzero(above)
        runs = []
        run_start = indices[0]
        previous = indices[0]
        for idx in indices[1:]:
            if idx - previous >= min_separation_bins:
                runs.append((int(run_start), int(previous)))
                run_start = idx
            previous = idx
        runs.append((int(run_start), int(previous)))
        return runs

    def _cluster_candidates(self, smoothed, start, stop, min_separation_bins):
        """Candidate carrier indices within one cluster, strongest first.

        A cluster can contain more than one score maximum — a genuine
        carrier bridged (via smoothing and the above-threshold gap rule) to
        a stronger score artifact that movement verification will reject,
        or several genuine carriers. Every above-threshold local maximum,
        spaced by the separation, is offered; verification decides.
        """
        segment = smoothed[start : stop + 1]
        order = np.argsort(segment)[::-1]
        candidates = []
        for offset in order:
            if segment[offset] < self.min_combined_z:
                break
            index = start + int(offset)
            if all(abs(index - c) >= min_separation_bins for c in candidates):
                candidates.append(index)
        return candidates

    def _build_detection(self, result, scores, zscores, evidence, index, cache=None):
        grid = result.grid
        candidate_frequency = grid.frequency_at(index)
        harmonic_scores = {}
        intercepts = []
        for h, z in zscores.items():
            peak_z = float(self._window(z, index).max())
            if peak_z < self.min_harmonic_z:
                continue
            verdict = self._verify_movement(result, candidate_frequency, h, cache=cache)
            if verdict is None:
                continue
            harmonic_scores[h] = float(self._window(scores[h], index).max())
            intercepts.append(verdict)
        if len(harmonic_scores) < self.min_harmonics:
            return None
        # A carrier whose ONLY evidence is a single higher-order alternation
        # harmonic is implausible: |c_1| > |c_k| (k >= 2) for any duty
        # cycle, so if a higher harmonic is visible the 1st must be too
        # unless obscured — and an obscured ±1 pair plus a clean lone ±k
        # across all five spectra is far likelier to be a chance alignment
        # of other carriers' side-bands. Require either a ±1 harmonic or at
        # least two corroborating harmonics.
        if len(harmonic_scores) == 1 and abs(next(iter(harmonic_scores))) >= 2:
            return None
        frequency = float(np.median(intercepts))
        if not grid.contains(frequency):
            frequency = candidate_frequency
        refined_index = grid.index_of(frequency)
        magnitude_dbm, modulation_depth = self._characterize(result, refined_index, cache=cache)
        return CarrierDetection(
            frequency=frequency,
            combined_score=float(evidence[index]),
            harmonic_scores=harmonic_scores,
            magnitude_dbm=magnitude_dbm,
            modulation_depth=modulation_depth,
            activity_label=result.activity_label,
        )

    def _verify_movement(
        self, result, frequency, harmonic, prominence_ratio=4.0, min_prominent=None, cache=None
    ):
        """Check that the scored side-band really moves with slope ``h``.

        Locates the side-band's spectral peak near ``frequency + h*falt_i``
        in each measurement (counting only *prominent* peaks — at least
        ``prominence_ratio`` above the window's median power — so obscured
        side-bands are skipped rather than fabricated from noise) and fits
        position = carrier + slope * falt_i. Three guards reject ghosts:

        * at least ``min_prominent`` prominent side-band peaks,
        * fitted slope within an absolute tolerance of ``h`` (the search
          window tracks the hypothesis, so noise peaks mimic the slope on
          average — but not tightly), and
        * small fit residuals: true side-bands sit on the line to within a
          few bins, noise peaks scatter across the whole window.

        Returns the fitted carrier frequency (the intercept) on success,
        ``None`` on failure.
        """
        grid = result.grid
        if min_prominent is None:
            # Four of five side-bands must be prominent in the paper's
            # setup; with fewer alternation frequencies require all but one
            # (verification weakens — which the N-ablation bench shows).
            min_prominent = max(2, min(4, len(result.measurements) - 1))
        window_hz = self.movement_window_hz
        if window_hz is None:
            # The search window must cover the side-band's position
            # uncertainty (its line width, a small multiple of the
            # resolution) and at least one falt step — but NOT much more:
            # a window that tracks the hypothesis over a wide span lets a
            # single strong static spur capture every measurement's argmax.
            f_delta = max(
                abs(result.falts[i + 1] - result.falts[i])
                for i in range(len(result.falts) - 1)
            )
            window_hz = max(20.0 * grid.resolution, f_delta)
        window_bins = max(int(round(window_hz / grid.resolution)), 2)
        # The shared cache's stacked power matrix serves the window reads;
        # without one (reference-mode scorer) fall back to the traces.
        power_rows = cache.power if cache is not None else None
        positions = []
        falts = []
        for row, measurement in enumerate(result.measurements):
            target = frequency + harmonic * measurement.falt
            if not grid.contains(target):
                continue
            center = grid.index_of(target)
            lo = max(center - window_bins, 0)
            hi = min(center + window_bins + 1, grid.n_bins)
            if power_rows is not None:
                segment = power_rows[row, lo:hi]
            else:
                segment = measurement.trace.power_mw[lo:hi]
            peak_offset = int(np.argmax(segment))
            # Background from a low quantile: the window may legitimately
            # contain broad structure (e.g. a spread-spectrum pedestal) on
            # top of the floor, which would inflate a median estimate.
            background = float(np.percentile(segment, 25.0))
            if background > 0 and segment[peak_offset] < prominence_ratio * background:
                continue  # obscured or absent side-band: skip, don't invent
            positions.append(grid.frequency_at(lo + peak_offset))
            falts.append(measurement.falt)
        if len(positions) < min_prominent:
            return None
        falts = np.asarray(falts)
        positions = np.asarray(positions)
        residual_tolerance = max(3.0 * grid.resolution, 0.12 * window_hz)
        # Allow dropping outlier points down to min_prominent: a single
        # side-band whose window is captured by an unrelated static tone
        # must not veto the carrier ("we can reliably detect the presence
        # of modulation ... even if several of the side-band signals are
        # obscured", Section 2.3).
        while True:
            carrier = float(np.mean(positions - harmonic * falts))
            residuals = positions - (carrier + harmonic * falts)
            rms = float(np.sqrt(np.mean(residuals**2)))
            if rms <= residual_tolerance:
                break
            if len(positions) <= min_prominent:
                return None
            worst = int(np.argmax(np.abs(residuals)))
            positions = np.delete(positions, worst)
            falts = np.delete(falts, worst)
        if len(falts) >= 2 and np.ptp(falts) > 0:
            slope, _ = np.polyfit(falts, positions, 1)
            if abs(slope - harmonic) > self.slope_tolerance:
                return None
        if abs(carrier - frequency) > window_hz:
            return None  # inconsistent with the score cluster that proposed it
        return carrier

    def _window(self, array, index):
        lo = max(index - self.peak_window_bins, 0)
        hi = min(index + self.peak_window_bins + 1, len(array))
        return array[lo:hi]

    def _characterize(self, result, index, cache=None):
        """Carrier magnitude and modulation depth from the first spectrum.

        The carrier power is the strongest bin near the detected frequency;
        the first side-band power is read at ±falt1 from it. For a 50 %-duty
        square alternation, side-band k=1 power is (swing/pi)^2 against a
        carrier of mean-amplitude-squared, so depth = (pi/2) sqrt(Psb/Pc)
        (clamped to [0, 1]).
        """
        measurement = result.measurements[0]
        grid = measurement.trace.grid
        power = cache.power[0] if cache is not None else measurement.trace.power_mw
        carrier_window = self._window(power, index)
        carrier_power = float(carrier_window.max())
        magnitude_dbm = float(milliwatts_to_dbm(carrier_power))
        sideband_powers = []
        for sign in (+1, -1):
            offset_freq = grid.frequency_at(index) + sign * measurement.falt
            if not grid.contains(offset_freq):
                continue
            sb_window = self._window(power, grid.index_of(offset_freq))
            sideband_powers.append(float(sb_window.max()))
        if not sideband_powers or carrier_power <= 0:
            return magnitude_dbm, 0.0
        sideband_power = float(np.median(sideband_powers))
        depth = (np.pi / 2.0) * np.sqrt(sideband_power / carrier_power)
        return magnitude_dbm, float(np.clip(depth, 0.0, 1.0))
