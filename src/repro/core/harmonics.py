"""Grouping detected carriers into harmonic sets.

Section 4: "after performing FASE it is useful to group the identified
carriers into sets such that all the carriers within a set occur at
frequencies which appear to be multiples of one another" — a set of
harmonics points at one periodic physical behaviour, and the relative
magnitudes within a set hint at its duty cycle (Section 2.1).

Candidate fundamentals are the detected carriers themselves (a set is
grouped at its lowest *observed* member): the paper groups the refresh
signal at "512 kHz, 1024 kHz, etc." even though the underlying period is
128 kHz, because the 128 kHz sub-harmonics are only visible near-field.
Restricting candidates this way also prevents conflating unrelated combs
through an accidental common divisor (315 kHz and 225 kHz sets share a
45 kHz divisor a free GCD search would latch onto).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..units import format_frequency


@dataclass(frozen=True)
class HarmonicSet:
    """Carriers at (approximate) integer multiples of one fundamental."""

    fundamental: float
    members: tuple  # of (order, CarrierDetection)

    @property
    def frequencies(self):
        return [member.frequency for _, member in self.members]

    @property
    def orders(self):
        return [order for order, _ in self.members]

    @property
    def strongest_dbm(self):
        return max(member.magnitude_dbm for _, member in self.members)

    @property
    def total_evidence(self):
        return sum(member.combined_score for _, member in self.members)

    @property
    def max_modulation_depth(self):
        return max(member.modulation_depth for _, member in self.members)

    def describe(self):
        orders = ", ".join(str(order) for order in self.orders)
        return (
            f"fundamental {format_frequency(self.fundamental)} "
            f"(harmonics {orders}, strongest {self.strongest_dbm:.1f} dBm)"
        )


def _order_of(frequency, fundamental, rel_tol):
    """Integer order if ``frequency`` is a near-multiple, else None."""
    ratio = frequency / fundamental
    order = int(round(ratio))
    if order < 1:
        return None
    if abs(ratio - order) <= rel_tol * order:
        return order
    return None


def group_harmonics(detections, rel_tol=0.01, max_order=32):
    """Partition detections into harmonic sets.

    Greedy over candidate fundamentals drawn from the detected carriers:
    the candidate capturing the most remaining carriers (with distinct
    orders, ties broken toward the larger fundamental) forms a set; repeat
    until every carrier is grouped. Each set's fundamental is refined by a
    least-squares fit over its members. Singleton sets are legitimate
    (e.g. a clock whose harmonics are out of band).
    """
    if rel_tol <= 0 or rel_tol >= 0.5:
        raise DetectionError("rel_tol must be in (0, 0.5)")
    if max_order < 1:
        raise DetectionError("max_order must be >= 1")
    remaining = sorted(detections, key=lambda d: d.frequency)
    sets = []
    while remaining:
        best = None
        for candidate in remaining:
            fundamental = candidate.frequency
            members = []
            seen_orders = set()
            conflated = False
            for other in remaining:
                order = _order_of(other.frequency, fundamental, rel_tol)
                if order is None or order > max_order:
                    continue
                if order in seen_orders:
                    # Two carriers at the same multiple: this fundamental
                    # conflates separate sources; keep only the first.
                    conflated = True
                    continue
                seen_orders.add(order)
                members.append((order, other))
            if conflated and len(members) <= 1:
                continue
            key = (len(members), fundamental)
            if best is None or key > best[0]:
                best = (key, members)
        if best is None:
            carrier = remaining.pop(0)
            sets.append(HarmonicSet(carrier.frequency, ((1, carrier),)))
            continue
        _, members = best
        refined = _refine_fundamental(members)
        sets.append(HarmonicSet(refined, tuple(members)))
        member_ids = {id(member) for _, member in members}
        remaining = [carrier for carrier in remaining if id(carrier) not in member_ids]
    sets.sort(key=lambda s: s.fundamental)
    return sets


def _refine_fundamental(members):
    """Least-squares fundamental from (order, carrier) pairs.

    Minimizes sum_i (f_i - order_i * f0)^2 → f0 = sum(order*f) / sum(order^2).
    """
    orders = np.array([order for order, _ in members], dtype=float)
    frequencies = np.array([member.frequency for _, member in members], dtype=float)
    return float(np.sum(orders * frequencies) / np.sum(orders * orders))
