"""FM-FASE: finding frequency-modulated emanations (the paper's §4.4 idea).

"In principle, signals that are frequency-modulated by system activity
should be possible to identify by a FASE-like approach based on spectral
properties of FM-modulated signals."

A constant-on-time regulator moves its switching *frequency* with load, so
AM-FASE sees no falt-tracking side-bands and (correctly) ignores it. The
FM variant implemented here exploits the dual signature: instead of five
alternation frequencies, capture averaged spectra at several *steady*
activity levels; a frequency-modulated carrier is a spectral hump whose

* center frequency moves monotonically with the level, by much more than
  the measurement scatter, while
* its band power stays roughly constant (energy relocates, it doesn't
  grow or shrink — that would be AM).

AM carriers show the opposite pattern (fixed centroid, level-dependent
power), and unmodulated signals move neither, so the same sweep classifies
all three behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..rng import ensure_rng
from ..spectrum.analyzer import SpectrumAnalyzer
from ..spectrum.peaks import detect_peaks
from ..uarch.activity import AlternationActivity
from ..units import format_frequency

#: Classification labels for swept humps.
FM_CARRIER = "FM"
AM_CARRIER = "AM"
STATIC_SIGNAL = "static"


@dataclass(frozen=True)
class SweptHump:
    """One spectral hump tracked across the activity-level sweep."""

    idle_frequency: float
    centroids: tuple  # Hz per level
    band_powers: tuple  # mW per level
    levels: tuple

    @property
    def frequency_shift(self):
        """Total centroid movement from the lowest to the highest level."""
        return self.centroids[-1] - self.centroids[0]

    @property
    def power_ratio_db(self):
        """Band-power change (dB) from the lowest to the highest level."""
        lo = max(self.band_powers[0], 1e-30)
        hi = max(self.band_powers[-1], 1e-30)
        return 10.0 * np.log10(hi / lo)

    def classify(self, min_shift_hz, max_fm_power_change_db=3.0, min_am_power_change_db=3.0):
        """FM: centroid moves monotonically AND band power is conserved
        (pure FM relocates energy). A moving centroid with a big power
        change is a tracking artifact (a static line whose window was
        invaded by a stronger neighbor) or a hybrid; only the power-
        conserving movement is reported as FM."""
        shift = abs(self.frequency_shift)
        power_change = abs(self.power_ratio_db)
        monotone = self._is_monotone(self.centroids)
        if shift >= min_shift_hz and monotone and power_change <= max_fm_power_change_db:
            return FM_CARRIER
        if power_change >= min_am_power_change_db and self._is_monotone(self.band_powers):
            return AM_CARRIER
        return STATIC_SIGNAL

    @staticmethod
    def _is_monotone(values):
        diffs = np.diff(values)
        return bool(np.all(diffs >= 0) or np.all(diffs <= 0))

    def describe(self):
        return (
            f"hump at {format_frequency(self.idle_frequency)}: "
            f"shift {self.frequency_shift / 1e3:+.1f} kHz, "
            f"power change {self.power_ratio_db:+.1f} dB over the sweep"
        )


@dataclass(frozen=True)
class FmDetection:
    """A carrier identified as frequency-modulated by the activity domain."""

    hump: SweptHump
    kind: str

    def describe(self):
        return f"{self.kind} carrier: {self.hump.describe()}"


class FmFaseScanner:
    """Scan a machine for frequency-modulated carriers.

    ``levels`` are the steady activity levels applied to ``domain`` (e.g.
    the core supply for a CPU regulator). Captures use the exact analyzer
    mean by default (the classification compares smooth averaged spectra;
    estimation noise only blurs centroids and can be enabled for realism).
    """

    def __init__(
        self,
        grid,
        domain,
        levels=(0.0, 0.25, 0.5, 0.75, 1.0),
        min_shift_hz=None,
        hump_window_hz=None,
        max_step_hz=None,
        n_averages=None,
        rng=None,
    ):
        if len(levels) < 3:
            raise DetectionError("need at least three levels to see monotone movement")
        if sorted(levels) != list(levels):
            raise DetectionError("levels must be sorted ascending")
        self.grid = grid
        self.domain = domain
        self.levels = tuple(float(level) for level in levels)
        self.min_shift_hz = (
            float(min_shift_hz) if min_shift_hz is not None else 20.0 * grid.resolution
        )
        self.hump_window_hz = (
            float(hump_window_hz) if hump_window_hz is not None else 100.0 * grid.resolution
        )
        #: How far the hump may move between consecutive levels; the
        #: tracker searches this far around the previous centroid.
        self.max_step_hz = (
            float(max_step_hz) if max_step_hz is not None else grid.span / 15.0
        )
        self.analyzer = SpectrumAnalyzer(n_averages=n_averages, rng=ensure_rng(rng))

    # ------------------------------------------------------------------

    def capture_sweep(self, machine):
        """One averaged trace per steady activity level."""
        traces = []
        for level in self.levels:
            activity = AlternationActivity.constant(
                {self.domain: level}, label=f"{self.domain}={level:g}"
            )
            traces.append(self.analyzer.capture(machine.scene(activity), self.grid))
        return traces

    def _hump_candidates(self, traces):
        """Peak positions in the *idle* (first-level) spectrum.

        An FM carrier smears to a low broad ridge in a mean-across-levels
        spectrum (its energy keeps moving), so candidates are seeded from
        the idle capture where every carrier is concentrated, then tracked
        level by level.
        """
        power = traces[0].power_mw
        floor = np.median(power)
        # full hump-window prominence: a wide (many-bin) regulator hump has
        # little contrast at quarter-window range but towers over the floor
        # a full window away
        window_bins = max(int(self.hump_window_hz / self.grid.resolution), 3)
        peaks = detect_peaks(
            10.0 * np.log10(np.maximum(power, 1e-30)),
            window=window_bins,
            n_sigma=4.0,
            min_separation=int(self.hump_window_hz / self.grid.resolution),
        )
        return [
            self.grid.frequency_at(p.index) for p in peaks if power[p.index] > 10.0 * floor
        ]

    def _window_centroid(self, trace, center):
        """(centroid, band power) in a hump window around ``center``."""
        half = self.hump_window_hz / 2.0
        lo = max(center - half, self.grid.start)
        hi = min(center + half, self.grid.frequency_at(self.grid.n_bins - 1))
        lo_i, hi_i = self.grid.slice_indices(lo, hi)
        freqs = self.grid.frequencies[lo_i:hi_i]
        segment = trace.power_mw[lo_i:hi_i]
        # centroid over the above-floor portion so the window's flat noise
        # does not pin the centroid to the window center
        floor = np.median(segment)
        weights = np.maximum(segment - floor, 0.0)
        total = weights.sum()
        if total <= 0:
            return float(center), float(segment.sum())
        return float(np.sum(freqs * weights) / total), float(segment.sum())

    def _track_hump(self, traces, frequency):
        """Follow a hump across the level sweep.

        Per level: find the strongest bin within ``max_step_hz`` of the
        previous centroid, then refine with a windowed centroid. This
        tracks carriers that move much farther over the full sweep than a
        single window width (the constant-on-time regulator moves tens of
        kHz per level step).
        """
        centroids = []
        powers = []
        previous = float(frequency)
        for i, trace in enumerate(traces):
            # the first level is anchored tightly to the candidate (the
            # wide step search would let a strong neighbor steal the
            # track); subsequent levels may step up to max_step_hz
            reach = self.hump_window_hz / 2.0 if i == 0 else self.max_step_hz
            lo = max(previous - reach, self.grid.start)
            hi = min(previous + reach, self.grid.frequency_at(self.grid.n_bins - 1))
            lo_i, hi_i = self.grid.slice_indices(lo, hi)
            peak = lo_i + int(np.argmax(trace.power_mw[lo_i:hi_i]))
            centroid, power = self._window_centroid(trace, self.grid.frequency_at(peak))
            centroids.append(centroid)
            powers.append(power)
            previous = centroid
        return SweptHump(
            idle_frequency=float(centroids[0]),
            centroids=tuple(centroids),
            band_powers=tuple(powers),
            levels=self.levels,
        )

    # ------------------------------------------------------------------

    def scan(self, machine):
        """All swept humps with their FM/AM/static classification."""
        traces = self.capture_sweep(machine)
        detections = []
        for frequency in self._hump_candidates(traces):
            hump = self._track_hump(traces, frequency)
            if any(
                abs(hump.idle_frequency - other.hump.idle_frequency) < self.hump_window_hz
                for other in detections
            ):
                continue  # two candidates converged onto the same hump
            kind = hump.classify(self.min_shift_hz)
            detections.append(FmDetection(hump=hump, kind=kind))
        return detections

    def fm_carriers(self, machine):
        """Only the frequency-modulated carriers."""
        return [d for d in self.scan(machine) if d.kind == FM_CARRIER]
