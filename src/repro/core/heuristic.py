"""The FASE heuristic (Equations 1 and 2).

For a harmonic ``h`` of the alternation frequency, the score at candidate
carrier frequency ``f`` is

    F_h(f)    = prod_i F_{i,h}(f)                               (Eq. 1)
    F_{i,h}(f) = SP_i(f + h*falt_i) / ( (1/(N-1)) sum_{j!=i} SP_j(f + h*falt_i) )   (Eq. 2)

Sub-score ``i`` reads spectrum ``i`` at its own shifted side-band position
``f + h*falt_i`` and normalizes by the *other* spectra **at that same
absolute frequency** — the paper's prose is explicit: "At the exact same
frequency in at least some of the other spectra, however, the signal will
not be as strong because these spectra have peaks at falt_j and so their
side-band signal is at a different frequency." A side-band that moves with
falt therefore scores ≫ 1 in every sub-score (each spectrum is strong
exactly where the others are not), while anything stationary — radio
stations, unmodulated combs, noise hills — cancels to ≈ 1. (Shifting the
denominator spectra by their *own* falt_j instead would park every
spectrum on its own side-band peak and flatten the score to 1 everywhere,
including at real carriers.)

Spectra are combined in *linear power* — the ratio of Eq. 2 is a power
ratio, and the figures' dBm axes are display-only.

Two implementations compute the same numbers: the default vectorized
pipeline batches every shift through a shared
:class:`~repro.core.scoring.ShiftedPowerCache` and evaluates all
harmonics as one ``(H, N, n_bins)`` array (log-space accumulation
preserved); ``HeuristicScorer(vectorized=False)`` keeps the naive
per-trace ``np.interp`` path as the reference implementation for tests
and benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..errors import DetectionError
from ..telemetry import current_telemetry
from .campaign import CampaignResult
from .scoring import ShiftedPowerCache, shift_valid_mask

#: Floor (mW) applied to shifted powers before ratios. Far below the
#: thermal noise per bin of any realistic capture (-148 dBm ≈ 1.6e-15 mW)
#: so it only guards truly empty synthetic traces.
DEFAULT_POWER_FLOOR = 1e-22


class HeuristicScorer:
    """Computes Eq. 1/2 score arrays over a campaign's grid."""

    def __init__(self, power_floor=DEFAULT_POWER_FLOOR, clip_subscore=1e9, vectorized=True):
        if power_floor <= 0:
            raise DetectionError("power floor must be positive")
        if clip_subscore <= 1:
            raise DetectionError("subscore clip must exceed 1")
        self.power_floor = float(power_floor)
        self.clip_subscore = float(clip_subscore)
        self.vectorized = bool(vectorized)

    # ------------------------------------------------------------------

    def cache_for(self, traces_or_result):
        """A :class:`ShiftedPowerCache` over a trace list or campaign result.

        Returns ``None`` in reference mode, where every evaluation goes
        through per-trace ``np.interp`` by design.
        """
        if not self.vectorized:
            return None
        traces = getattr(traces_or_result, "traces", traces_or_result)
        return ShiftedPowerCache(traces)

    def subscores(self, traces, falts, harmonic, cache=None):
        """The N sub-scores F_{i,h}(f) as an (N, n_bins) matrix.

        For each ``i`` every spectrum is evaluated at the *same* shifted
        frequency ``f + h*falt_i``; the sub-score is spectrum i over the
        mean of the others there. Bins whose shifted frequency falls
        outside the measured span have no data and are forced to 1.
        """
        self._validate(traces, falts, harmonic)
        if not self.vectorized:
            return self._subscores_reference(traces, falts, harmonic)
        if cache is None:
            cache = ShiftedPowerCache(traces)
        return self._subscores_vectorized(cache, falts, harmonic)

    def _subscores_vectorized(self, cache, falts, harmonic, out=None, scratch=None):
        n = cache.n_traces
        floor = self.power_floor
        subs = out if out is not None else np.empty((n, cache.n_bins), dtype=float)
        denom = scratch if scratch is not None else np.empty(cache.n_bins, dtype=float)
        inv_others = 1.0 / (n - 1)
        for i, falt in enumerate(falts):
            shift = harmonic * falt
            # Numerator: one row interpolation, floored straight into the
            # output row; denominator: one interpolation of the
            # precomputed floored total (linearity of the interpolation)
            # minus that row. The working set per sub-score is a handful
            # of grid-length vectors, not an (N, n_bins) matrix per shift.
            sub = subs[i]
            np.maximum(cache.shifted_row(i, shift), floor, out=sub)
            np.subtract(cache.shifted_total(shift, floor), sub, out=denom)
            denom *= inv_others
            np.maximum(denom, floor, out=denom)
            np.divide(sub, denom, out=sub)
            np.clip(sub, 1.0 / self.clip_subscore, self.clip_subscore, out=sub)
            # Bins whose shifted position has no measured data sit outside
            # one contiguous in-span run; force both flanks to 1.
            valid_lo, valid_hi = cache.valid_range(shift)
            sub[:valid_lo] = 1.0
            sub[valid_hi:] = 1.0
        return subs

    def _subscores_reference(self, traces, falts, harmonic):
        """The naive path: one ``np.interp`` per trace per shift."""
        grid = traces[0].grid
        n = len(traces)
        subs = np.empty((n, grid.n_bins), dtype=float)
        for i, falt in enumerate(falts):
            shift = harmonic * falt
            shifted = np.empty((n, grid.n_bins), dtype=float)
            for j, trace in enumerate(traces):
                shifted[j] = trace.shifted_power(shift)
            shifted = np.maximum(shifted, self.power_floor)
            mean_others = (shifted.sum(axis=0) - shifted[i]) / (n - 1)
            sub = shifted[i] / np.maximum(mean_others, self.power_floor)
            sub = np.clip(sub, 1.0 / self.clip_subscore, self.clip_subscore)
            sub[~shift_valid_mask(grid, shift)] = 1.0
            subs[i] = sub
        return subs

    def harmonic_score(self, traces, falts, harmonic, cache=None):
        """F_h(f) over the whole grid (Eq. 1)."""
        subs = self.subscores(traces, falts, harmonic, cache=cache)
        return self._accumulate(subs)

    def all_scores(self, result, cache=None):
        """{harmonic: F_h array} for every configured harmonic.

        The vectorized path stacks every harmonic's sub-scores into one
        ``(H, N, n_bins)`` array and reduces it with a single log-space
        accumulation; pass ``cache`` to share shifted-power evaluations
        with other consumers (the detector's movement verification).

        A degraded result (screen-flagged captures) is scored through its
        leave-one-out view: the flagged falt indices are excluded and the
        Eq. 2 denominator renormalizes over the remaining spectra. A
        caller-supplied ``cache`` must already cover that view (the
        detector builds its cache from the view for exactly this reason).
        """
        view = getattr(result, "scoring_view", None)
        if view is not None:
            result = view()
        result.validate()
        harmonics = tuple(result.config.harmonics)
        telemetry = current_telemetry()
        with telemetry.span(
            "score", stage="score", label=result.activity_label, n_harmonics=len(harmonics)
        ):
            if not self.vectorized:
                return {
                    h: self.harmonic_score(result.traces, result.falts, h)
                    for h in harmonics
                }
            owns_cache = cache is None
            if owns_cache:
                cache = ShiftedPowerCache.from_result(result)
            stack = np.empty((len(harmonics), cache.n_traces, cache.n_bins), dtype=float)
            scratch = np.empty(cache.n_bins, dtype=float)
            for k, h in enumerate(harmonics):
                self._subscores_vectorized(
                    cache, result.falts, h, out=stack[k], scratch=scratch
                )
            scores = self._accumulate(stack, axis=1)
            if owns_cache:
                # Whoever builds the cache flushes its counters; a shared
                # cache is flushed by its owner (the detector) instead.
                telemetry.count("scoring_cache_hits", cache.hits)
                telemetry.count("scoring_cache_misses", cache.misses)
            return {h: scores[k] for k, h in enumerate(harmonics)}

    def scores_excluding(self, result, exclude_index, cache=None):
        """Leave-one-out scores: falt index ``exclude_index`` held out.

        The excluded spectrum contributes neither a sub-score row nor a
        term in any Eq. 2 denominator; the remaining N-1 spectra
        renormalize exactly as if the campaign had never measured it.
        A ``cache`` built over the *full* result is reused via
        :meth:`ShiftedPowerCache.subset`, so ablation sweeps (hold out
        each index in turn) pay for one trace stack, not N.
        """
        measurements = result.measurements
        if not 0 <= exclude_index < len(measurements):
            raise DetectionError(
                f"exclude_index {exclude_index} outside 0..{len(measurements) - 1}"
            )
        kept = [i for i in range(len(measurements)) if i != exclude_index]
        subset = CampaignResult(
            config=result.config,
            machine_name=result.machine_name,
            activity_label=result.activity_label,
            measurements=[measurements[i] for i in kept],
        )
        sub_cache = None
        if self.vectorized:
            sub_cache = (
                cache.subset(kept) if cache is not None else ShiftedPowerCache.from_result(subset)
            )
        return self.all_scores(subset, cache=sub_cache)

    def _accumulate(self, subs, axis=0):
        """Eq. 1 product across traces, guarded against overflow.

        Each factor is clipped to ``[1/clip, clip]``, so the product of N
        sub-scores is bounded by ``clip**N``; when that provably fits in
        float64 the product is taken directly (a single cheap pass).
        Otherwise accumulation happens in log space, which is safe for
        any N at the cost of a transcendental per element.
        """
        n = subs.shape[axis]
        if n * np.log10(self.clip_subscore) < 250.0:
            return np.prod(subs, axis=axis)
        return np.exp(np.sum(np.log(subs), axis=axis))

    def combined_score(self, result, scores=None, cache=None):
        """Evidence fused across harmonics: sum of positive log10 scores.

        The paper inspects each F_h separately; this simple fusion sums
        ``max(log10 F_h, 0)`` so independent harmonics reinforce each other
        while off-carrier scores (~1, log ~0) contribute nothing. Returned
        in log10 units ("decades of evidence"). For automated detection
        prefer :meth:`combined_zscore`, which normalizes each harmonic by
        its own noise statistics first.
        """
        if scores is None:
            scores = self.all_scores(result, cache=cache)
        grid = result.grid
        combined = np.zeros(grid.n_bins, dtype=float)
        for score in scores.values():
            combined += np.maximum(np.log10(score), 0.0)
        return combined

    @staticmethod
    def zscore(score_array):
        """Robust z-score of one harmonic's log-score array.

        Off-carrier, log10 F_h fluctuates around 0 with a spread set by the
        capture averaging and side-band overlap; carriers stand many robust
        standard deviations (median absolute deviation scaled to sigma)
        above it. Normalizing per harmonic makes detection thresholds
        independent of the campaign's noise floor and averaging count.
        """
        log_score = np.log10(score_array)
        median = float(np.median(log_score))
        mad = float(np.median(np.abs(log_score - median)))
        sigma = 1.4826 * mad
        if sigma <= 0:
            sigma = float(np.std(log_score)) or 1.0
        return (log_score - median) / sigma

    def harmonic_zscores(self, result, scores=None, cache=None):
        """{harmonic: robust z-score array} for every configured harmonic."""
        if scores is None:
            scores = self.all_scores(result, cache=cache)
        return {h: self.zscore(score) for h, score in scores.items()}

    def combined_zscore(self, result, scores=None, zscores=None, cache=None):
        """Root-sum-square fusion of the positive per-harmonic z-scores.

        Z(f) = sqrt(sum_h max(z_h(f), 0)^2). Section 2.3 stresses that
        "detection of a single harmonic of falt in a single side-band is
        sufficient to detect a carrier" — several side-bands are routinely
        obscured by unrelated signals — so the fusion must not average
        strong evidence away across harmonics that (legitimately) carry
        none: a 50 %-duty alternation has no even harmonics at all, and a
        carrier with one clean side-band may only excite h = -1. RSS keeps
        a single z = 9 harmonic decisive while off-carrier bins (z ~ N(0,1)
        per harmonic) stay near sqrt(H/2) ~ 2.2.
        """
        if zscores is None:
            zscores = self.harmonic_zscores(result, scores=scores, cache=cache)
        grid = result.grid
        combined = np.zeros(grid.n_bins, dtype=float)
        for z in zscores.values():
            combined += np.maximum(z, 0.0) ** 2
        return np.sqrt(combined)

    # ------------------------------------------------------------------

    @staticmethod
    def _validate(traces, falts, harmonic):
        if len(traces) != len(falts):
            raise DetectionError("one falt per trace is required")
        if len(traces) < 2:
            raise DetectionError("the heuristic needs at least two spectra")
        if harmonic == 0:
            raise DetectionError("harmonic 0 is the carrier itself; score side-bands")
        grid = traces[0].grid
        for trace in traces:
            if trace.grid != grid:
                raise DetectionError("traces must share one grid")


class IncrementalEvidence:
    """Running Eq. 1 evidence over a growing capture prefix.

    The adaptive survey planner feeds captures in one at a time (the
    serial shared-stream order of
    :meth:`~repro.core.campaign.MeasurementCampaign.iter_captures`) and
    asks after each whether the campaign is still worth finishing. Each
    Eq. 2 sub-score is clipped to ``[1/clip, clip]``, so after ``k`` of
    ``N`` captures the final ``log10 F_h`` at any bin can exceed the
    current prefix maximum by at most ``(N - k) * log10(clip)`` — and in
    practice by far less, which is what ``bound_decades`` lets a caller
    encode as a per-falt cap. When even that optimistic bound stays
    below the detection threshold, no completion of the campaign can
    cross it and the remaining captures are provably wasted.
    """

    def __init__(self, config, machine_name, activity_label, scorer=None):
        self.scorer = scorer or HeuristicScorer()
        self.result = CampaignResult(
            config=config, machine_name=machine_name, activity_label=activity_label
        )
        self._evidence = None

    @property
    def n_captures(self):
        return len(self.result.measurements)

    @property
    def max_evidence_decades(self):
        """Strongest ``log10 F_h`` over all harmonics and bins so far.

        ``None`` until two captures exist (Eq. 2 needs a denominator).
        """
        return self._evidence

    def add(self, measurement):
        """Fold one capture in; returns the updated prefix evidence."""
        self.result.measurements.append(measurement)
        if self.n_captures >= 2:
            scores = self.scorer.all_scores(self.result)
            self._evidence = max(
                float(np.max(np.log10(score))) for score in scores.values()
            )
        return self._evidence

    def bound_decades(self, n_total, per_falt_cap_decades):
        """Upper bound on the final evidence after all ``n_total`` captures.

        Assumes each of the remaining factors contributes at most
        ``per_falt_cap_decades`` decades at the current best bin.
        Infinite until the prefix evidence is defined.
        """
        if self._evidence is None:
            return float("inf")
        remaining = max(n_total - self.n_captures, 0)
        return self._evidence + remaining * float(per_falt_cap_decades)
