"""FASE core: campaign protocol, heuristic, detection, classification.

The paper's primary contribution, implemented from Section 2:

* :class:`FaseConfig` / the Figure 10 campaign presets,
* :class:`MeasurementCampaign` (five falts, averaged captures),
* :class:`HeuristicScorer` (Equations 1-2),
* :class:`CarrierDetector` (automated peak detection on the scores),
* :func:`group_harmonics` and :func:`classify_sources` (Section 4's
  causation workflow),
* :func:`run_fase` tying everything together.
"""

from .config import (
    FaseConfig,
    DEFAULT_HARMONICS,
    campaign_low_band,
    campaign_mid_band,
    campaign_high_band,
    PAPER_CAMPAIGNS,
)
from .campaign import MeasurementCampaign, CampaignResult, CampaignMeasurement
from .heuristic import DEFAULT_POWER_FLOOR, HeuristicScorer, IncrementalEvidence
from .scoring import ShiftedPowerCache, shift_valid_mask, shift_valid_range
from .detect import CarrierDetector, CarrierDetection
from .harmonics import HarmonicSet, group_harmonics
from .classify import (
    ClassifiedSource,
    classify_sources,
    MEMORY_SIDE,
    CORE_SIDE,
    SHARED,
    UNKNOWN,
    SWITCHING_REGULATOR,
    MEMORY_REFRESH,
    CLOCK,
    UNIDENTIFIED,
)
from .report import FaseReport, ActivityReport
from .pipeline import is_memory_pair, pair_label, run_fase
from .fmfase import (
    FmFaseScanner,
    FmDetection,
    SweptHump,
    FM_CARRIER,
    AM_CARRIER,
    STATIC_SIGNAL,
)

__all__ = [
    "FaseConfig",
    "DEFAULT_HARMONICS",
    "campaign_low_band",
    "campaign_mid_band",
    "campaign_high_band",
    "PAPER_CAMPAIGNS",
    "MeasurementCampaign",
    "CampaignResult",
    "CampaignMeasurement",
    "HeuristicScorer",
    "IncrementalEvidence",
    "DEFAULT_POWER_FLOOR",
    "ShiftedPowerCache",
    "shift_valid_mask",
    "shift_valid_range",
    "CarrierDetector",
    "CarrierDetection",
    "HarmonicSet",
    "group_harmonics",
    "ClassifiedSource",
    "classify_sources",
    "MEMORY_SIDE",
    "CORE_SIDE",
    "SHARED",
    "UNKNOWN",
    "SWITCHING_REGULATOR",
    "MEMORY_REFRESH",
    "CLOCK",
    "UNIDENTIFIED",
    "FaseReport",
    "ActivityReport",
    "is_memory_pair",
    "run_fase",
    "pair_label",
    "FmFaseScanner",
    "FmDetection",
    "SweptHump",
    "FM_CARRIER",
    "AM_CARRIER",
    "STATIC_SIGNAL",
]
