"""End-to-end FASE runs: campaign → heuristic → detection → classification.

``run_fase`` is the one-call public API: give it a system model, an X/Y
micro-op pair (or several), and a campaign configuration; it returns a
:class:`~repro.core.report.FaseReport` with every activity-modulated
carrier, grouped into harmonic sets and classified by which activities
modulate them.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from pathlib import Path

from ..rng import child_rng, ensure_rng
from ..runner import DurableCampaign, journal_dirname
from ..telemetry import adopt_telemetry, current_telemetry, use_thread_telemetry
from ..uarch.isa import MicroOp
from .campaign import MeasurementCampaign
from .classify import classify_sources
from .config import campaign_low_band
from .detect import CarrierDetector
from .harmonics import group_harmonics
from .report import ActivityReport, FaseReport

#: Micro-ops whose loop bodies travel to DRAM (Section 4 fingerprinting).
_MEMORY_OPS = (MicroOp.LDM, MicroOp.STM)


def pair_label(op_x, op_y):
    """The paper's pair notation, e.g. ``"LDM/LDL1"``."""
    return f"{op_x.value}/{op_y.value}"


def is_memory_pair(op_x, op_y):
    """Whether exactly one side of an X/Y pair is memory traffic.

    Such a pair alternates DRAM activity on and off, so carriers it
    modulates carry the paper's "memory-side" fingerprint; pairs where
    both or neither side hits DRAM fingerprint on-chip mechanisms
    instead. Shared by :func:`run_fase` and the survey engine so both
    classify with the same rule.
    """
    return (op_x in _MEMORY_OPS) != (op_y in _MEMORY_OPS)


def run_fase(
    machine,
    pairs=((MicroOp.LDM, MicroOp.LDL1), (MicroOp.LDL2, MicroOp.LDL1)),
    config=None,
    detector=None,
    latency_model=None,
    rng=None,
    n_workers=None,
    fault_plan=None,
    checkpoint_dir=None,
    resume=True,
    telemetry=None,
    campaign_hook=None,
):
    """Run FASE on a machine for one or more X/Y activity pairs.

    Returns a :class:`FaseReport`. The default pairs are the two the paper
    focuses on: LDM/LDL1 (memory modulation, Figure 11) and LDL2/LDL1
    (on-chip modulation, Figure 13).

    ``n_workers`` (default: the config's ``n_workers``) > 1 fans the
    independent activity pairs across a thread pool; each pair's campaign
    draws from its own seed-derived random stream, so parallel runs are
    reproducible per seed but differ from the serial shared-stream run.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) runs every
    campaign on the degraded-mode path: captures are corrupted per the
    plan, screened, retried up to ``config.max_capture_retries`` times,
    and scored leave-one-out with flagged falt indices excluded. Each
    activity's :class:`~repro.faults.RobustnessReport` lands on its
    :class:`ActivityReport`, including the naive-vs-degraded detection
    delta whenever a capture was actually excluded.

    ``checkpoint_dir`` switches every campaign onto the durable execution
    path (:class:`~repro.runner.DurableCampaign`): each pair checkpoints
    completed captures to a journal under this directory, captures run
    under ``config.capture_timeout_s`` watchdog deadlines, and a killed
    run re-invoked with the same arguments resumes from the journals
    (``resume=False`` refuses an existing journal instead). Durable
    captures use the per-measurement derived streams, so a checkpointed
    run equals a clean ``n_workers > 1`` run trace-for-trace, not the
    serial shared-stream run.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry`) is installed as
    the ambient pipeline for the duration of the run: every campaign,
    capture, scoring, and detection stage below emits spans, events, and
    counters into it, and the final metrics snapshot lands on
    ``report.telemetry``. ``None`` (the default) leaves the ambient
    telemetry untouched — the no-op default adds no overhead.

    ``campaign_hook`` is called once per pair as ``hook(label, result)``
    with the pair's finished :class:`~repro.core.campaign.CampaignResult`
    after detection — the one window where campaign spectra are still
    alive. The report itself stays compact (detections and harmonic sets
    only); the survey's zero-copy data plane uses this hook to publish
    trace rows into shared memory without ``run_fase`` ever exposing
    whole campaigns. A hook exception fails the pair's run.
    """
    rng = ensure_rng(rng)
    config = config or campaign_low_band()
    detector = detector or CarrierDetector()
    if n_workers is None:
        n_workers = config.n_workers
    report = FaseReport(machine_name=machine.name, config_description=config.describe())
    sets_by_activity = {}
    memory_labels = []
    onchip_labels = []
    pairs = tuple(pairs)

    def build_campaign(label, pair_rng):
        if checkpoint_dir is not None:
            return DurableCampaign(
                machine,
                config,
                journal_dir=Path(checkpoint_dir) / journal_dirname(label),
                latency_model=latency_model,
                rng=pair_rng,
                fault_plan=fault_plan,
                resume=resume,
            )
        return MeasurementCampaign(
            machine, config, latency_model=latency_model, rng=pair_rng, fault_plan=fault_plan
        )

    def scan_pair(op_x, op_y, pair_rng):
        label = pair_label(op_x, op_y)
        tel = current_telemetry()
        with tel.span("pair", label=label):
            campaign = build_campaign(label, pair_rng)
            result = campaign.run(op_x, op_y, label=label)
            resumed = getattr(campaign, "resumed_indices", ())
            if resumed:
                tel.event(
                    "campaign-resumed",
                    label=label,
                    n_resumed=len(resumed),
                    indices=list(resumed),
                )
            detections = detector.detect(result)
            robustness = result.robustness
            if robustness is not None and result.excluded_indices:
                # What did excluding the flagged captures change? Score the
                # same spectra once more with flags ignored and diff the
                # carrier lists into the ledger.
                naive = detector.detect(result.with_flags_cleared())
                robustness.record_detection_delta(naive, detections)
            if campaign_hook is not None:
                campaign_hook(label, result)
            return label, detections, group_harmonics(detections), robustness

    with ExitStack() as stack:
        if telemetry is not None:
            # Thread-scoped: concurrent pipelines in sibling threads (the
            # service worker fleet) must not clobber each other's ambient
            # install. Pool threads below adopt this thread's pipeline.
            stack.enter_context(use_thread_telemetry(telemetry))
        tel = current_telemetry()
        with tel.span("run_fase", machine=machine.name, n_pairs=len(pairs)):
            if n_workers > 1 and len(pairs) > 1:
                pair_rngs = [
                    child_rng(rng, f"pair:{pair_label(op_x, op_y)}") for op_x, op_y in pairs
                ]
                with ThreadPoolExecutor(
                    max_workers=min(n_workers, len(pairs)),
                    initializer=adopt_telemetry,
                    initargs=(tel,),
                ) as pool:
                    outcomes = list(
                        pool.map(
                            lambda item: scan_pair(item[0][0], item[0][1], item[1]),
                            zip(pairs, pair_rngs),
                        )
                    )
            else:
                outcomes = [scan_pair(op_x, op_y, rng) for op_x, op_y in pairs]

            for (op_x, op_y), (label, detections, harmonic_sets, robustness) in zip(
                pairs, outcomes
            ):
                report.activities[label] = ActivityReport(
                    activity_label=label,
                    detections=detections,
                    harmonic_sets=harmonic_sets,
                    robustness=robustness,
                )
                sets_by_activity[label] = harmonic_sets
                (memory_labels if is_memory_pair(op_x, op_y) else onchip_labels).append(label)
            report.sources = classify_sources(
                sets_by_activity,
                memory_labels=tuple(memory_labels),
                onchip_labels=tuple(onchip_labels),
            )
        if telemetry is not None and telemetry.enabled:
            report.telemetry = telemetry.snapshot().to_dict()
            telemetry.emit_snapshot()
    return report
