"""FASE campaign configuration (Figure 10).

A campaign is defined by its frequency span, the spectrum resolution
``fres``, the base alternation frequency ``falt1``, the step ``f_delta``
between successive alternation frequencies, and how many alternation
frequencies are measured (five throughout the paper: "we found that five
alternation frequencies are sufficient to detect almost any carrier").

The paper's three campaigns:

    span        fres     falt1      f_delta
    0-4 MHz     50 Hz    43.3 kHz   0.5 kHz
    0-120 MHz   500 Hz   43.3 kHz   5 kHz
    0-1200 MHz  500 Hz   1800 kHz   100 kHz
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CampaignError
from ..spectrum.grid import FrequencyGrid

#: Harmonics of falt the paper scores: "the 1st, 2nd, 3rd, 4th and 5th
#: positive and negative harmonics of the alternation activity".
DEFAULT_HARMONICS = (1, -1, 2, -2, 3, -3, 4, -4, 5, -5)


@dataclass(frozen=True)
class FaseConfig:
    """Parameters of one FASE measurement campaign."""

    span_low: float = 0.0
    span_high: float = 4e6
    fres: float = 50.0
    falt1: float = 43.3e3
    f_delta: float = 0.5e3
    n_alternations: int = 5
    n_averages: int = 4
    harmonics: tuple = DEFAULT_HARMONICS
    name: str = ""
    #: Opt-in parallelism: >1 fans campaign captures (and run_fase's
    #: independent X/Y pairs) across a thread pool. Parallel captures draw
    #: from per-measurement derived random streams, so results are
    #: reproducible for a given seed but differ from the serial stream.
    n_workers: int = 1
    #: Degraded-mode retry budget: when a fault plan is active, a capture
    #: that drops or fails quality screening is re-taken up to this many
    #: extra times (each attempt on its own derived random streams)
    #: before being excluded. Ignored without a fault plan.
    max_capture_retries: int = 2
    #: Durable-execution wall-clock deadline per capture attempt, in
    #: seconds. ``None`` disables the watchdog. Only the
    #: :class:`repro.runner.DurableCampaign` path enforces it; a capture
    #: exceeding the deadline is retried (with backoff) up to
    #: ``max_capture_retries`` extra times and then dropped.
    capture_timeout_s: object = None  # float | None
    #: Base delay of the durable path's bounded exponential backoff:
    #: retry k of a timed-out/failed capture waits
    #: ``retry_backoff_s * 2**(k-1)`` seconds (capped at 30 s).
    retry_backoff_s: float = 0.5

    def __post_init__(self):
        if self.span_high <= self.span_low:
            raise CampaignError("span_high must exceed span_low")
        if self.fres <= 0:
            raise CampaignError("fres must be positive")
        if self.falt1 <= 0:
            raise CampaignError("falt1 must be positive")
        if self.f_delta <= 0:
            raise CampaignError("f_delta must be positive")
        if self.n_alternations < 2:
            raise CampaignError(
                "need at least two alternation frequencies for the heuristic's "
                "cross-normalization"
            )
        if self.n_averages < 1:
            raise CampaignError("n_averages must be >= 1")
        if self.n_workers < 1:
            raise CampaignError("n_workers must be >= 1")
        if self.max_capture_retries < 0:
            raise CampaignError("max_capture_retries must be >= 0")
        if self.capture_timeout_s is not None and self.capture_timeout_s <= 0:
            raise CampaignError("capture_timeout_s must be positive (or None to disable)")
        if self.retry_backoff_s < 0:
            raise CampaignError("retry_backoff_s must be >= 0")
        if not self.harmonics or 0 in self.harmonics:
            raise CampaignError("harmonics must be non-empty and exclude 0")
        if self.f_delta >= self.falt1:
            raise CampaignError("f_delta should be small compared to falt1")
        if self.f_delta < 2 * self.fres:
            raise CampaignError(
                "f_delta must be at least two resolution bins or the side-band "
                "shift is unresolvable"
            )

    def falts(self):
        """The target alternation frequencies falt1 .. falt1+(n-1)*f_delta."""
        return [self.falt1 + i * self.f_delta for i in range(self.n_alternations)]

    def grid(self):
        """The capture grid for this campaign."""
        return FrequencyGrid(self.span_low, self.span_high, self.fres)

    def n_points(self):
        """Data points per spectrum (the paper's 0-4 MHz campaign: 80,000)."""
        return self.grid().n_bins

    def describe(self):
        label = self.name or "campaign"
        return (
            f"{label}: {self.span_low / 1e6:g}-{self.span_high / 1e6:g} MHz, "
            f"fres={self.fres:g} Hz ({self.n_points()} points), "
            f"falt1={self.falt1 / 1e3:g} kHz, f_delta={self.f_delta / 1e3:g} kHz, "
            f"{self.n_alternations} alternations x {self.n_averages} averages"
        )


def campaign_low_band():
    """Figure 10 row 1: 0-4 MHz at 50 Hz; falt1 = 43.3 kHz, f_delta = 0.5 kHz."""
    return FaseConfig(
        span_low=0.0,
        span_high=4e6,
        fres=50.0,
        falt1=43.3e3,
        f_delta=0.5e3,
        name="low band (0-4 MHz)",
    )


def campaign_mid_band():
    """Figure 10 row 2: 0-120 MHz at 500 Hz; falt1 = 43.3 kHz, f_delta = 5 kHz."""
    return FaseConfig(
        span_low=0.0,
        span_high=120e6,
        fres=500.0,
        falt1=43.3e3,
        f_delta=5e3,
        name="mid band (0-120 MHz)",
    )


def campaign_high_band():
    """Figure 10 row 3: 0-1200 MHz at 500 Hz; falt1 = 1800 kHz, f_delta = 100 kHz.

    The large falt1 moves side-bands outside spread-spectrum clock pedestals
    (Section 4.3's guidance for detecting swept clocks).
    """
    return FaseConfig(
        span_low=0.0,
        span_high=1200e6,
        fres=500.0,
        falt1=1800e3,
        f_delta=100e3,
        name="high band (0-1200 MHz)",
    )


PAPER_CAMPAIGNS = {
    "low": campaign_low_band,
    "mid": campaign_mid_band,
    "high": campaign_high_band,
}
