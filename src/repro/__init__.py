"""repro: a full reproduction of FASE (Callan, Zajić, Prvulovic, ISCA 2015).

FASE — Finding Amplitude-modulated Side-channel Emanations — automatically
finds periodic EM signals emitted by a computer whose amplitude is
modulated by specific program activity. This package implements the
methodology end to end over a first-principles emission simulator (the
physical capture chain is the one thing a pure-software reproduction must
substitute; see DESIGN.md for the substitution argument):

* :mod:`repro.signals` — pulse-train Fourier analysis, oscillator line
  shapes, AM/FM side-band synthesis, noise, time-domain waveforms;
* :mod:`repro.spectrum` — frequency grids, traces, the spectrum-analyzer
  model, Welch PSDs, peak detection;
* :mod:`repro.uarch` — the Figure 6 micro-benchmark over a cache-hierarchy
  timing model, with falt calibration;
* :mod:`repro.system` — emitters (switching regulators, memory refresh,
  spread-spectrum clocks), the metropolitan RF environment, and the four
  preset machines of the paper;
* :mod:`repro.core` — the FASE campaigns, the Eq. 1/2 heuristic, carrier
  detection, harmonic grouping, and source classification;
* :mod:`repro.analysis` — near-field localization, modulation-depth
  sweeps, rejection validation, and FM confirmation;
* :mod:`repro.telemetry` — opt-in tracing, metrics, and per-stage
  profiling for every campaign (off by default, zero overhead);
* :mod:`repro.survey` — the sharded, process-parallel multi-machine
  survey engine with worker-death recovery and cross-machine source
  comparison.

Quickstart::

    from repro import corei7_desktop, run_fase
    report = run_fase(corei7_desktop(rng=0), rng=1)
    print(report.to_text())
"""

from .core import (
    FaseConfig,
    campaign_low_band,
    campaign_mid_band,
    campaign_high_band,
    MeasurementCampaign,
    HeuristicScorer,
    CarrierDetector,
    CarrierDetection,
    HarmonicSet,
    group_harmonics,
    classify_sources,
    FaseReport,
    run_fase,
    pair_label,
)
from .faults import FaultPlan, RobustnessReport
from .runner import CampaignJournal, DurableCampaign, recover_campaign
from .spectrum import FrequencyGrid, SpectrumTrace, SpectrumAnalyzer
from .telemetry import (
    Telemetry,
    NullTelemetry,
    NULL_TELEMETRY,
    current_telemetry,
    use_telemetry,
    set_telemetry,
    MetricsRegistry,
    MetricsSnapshot,
    StageProfiler,
    Recorder,
    JsonlSink,
    read_jsonl,
)
from .survey import SurveyLedger, SurveyReport, run_survey
from .system import (
    SystemModel,
    corei7_desktop,
    corei3_laptop,
    turionx2_laptop,
    pentium3m_laptop,
)
from .uarch import MicroOp, AlternationMicrobenchmark, AlternationActivity

__version__ = "1.0.0"

__all__ = [
    "FaseConfig",
    "campaign_low_band",
    "campaign_mid_band",
    "campaign_high_band",
    "MeasurementCampaign",
    "HeuristicScorer",
    "CarrierDetector",
    "CarrierDetection",
    "HarmonicSet",
    "group_harmonics",
    "classify_sources",
    "FaseReport",
    "run_fase",
    "pair_label",
    "FaultPlan",
    "RobustnessReport",
    "CampaignJournal",
    "DurableCampaign",
    "recover_campaign",
    "SurveyLedger",
    "SurveyReport",
    "run_survey",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current_telemetry",
    "use_telemetry",
    "set_telemetry",
    "MetricsRegistry",
    "MetricsSnapshot",
    "StageProfiler",
    "Recorder",
    "JsonlSink",
    "read_jsonl",
    "FrequencyGrid",
    "SpectrumTrace",
    "SpectrumAnalyzer",
    "SystemModel",
    "corei7_desktop",
    "corei3_laptop",
    "turionx2_laptop",
    "pentium3m_laptop",
    "MicroOp",
    "AlternationMicrobenchmark",
    "AlternationActivity",
    "__version__",
]
