"""Weighted fair-share scheduling with quotas, priorities, and aging.

Every decision is a **pure function of the journaled state**: the job
store's :meth:`~repro.service.queue.JobStore.snapshot` is derived
entirely from replayable transitions (claims are the scheduler's
logical clock — no wall time anywhere), so feeding the same journal
through :meth:`FairShareScheduler.select` reproduces the same choice,
decision for decision. That is what makes scheduling auditable: the
journal *is* the explanation.

Selection, in order:

1. **Eligibility** — a tenant competes only while it has a queued job
   with pending work and headroom under ``max_concurrent_shards``
   (capture ceilings are enforced at funding time by the store, so an
   unfundable shard is skipped rather than blocking the queue).
2. **Priority with aging** — higher ``priority`` wins, but a tenant's
   effective priority rises by one for every ``aging_decisions`` claims
   granted to others since its last claim (or, for a tenant yet to be
   granted one, since its admission — so a newcomer ages up from
   parity rather than arriving pre-boosted). Any starved tenant therefore
   overtakes any finite static priority in bounded time:
   starvation-freedom by construction, not by luck.
3. **Weighted fair share** — among equal effective priorities, the
   tenant with the smallest ``charge / weight`` wins, where ``charge``
   counts every claim the tenant was ever granted. With continuous
   backlog and equal priorities this bounds each tenant's normalized
   drift by ``max(1/weight)`` — the property the Hypothesis tier pins.
4. **Deterministic tie-break** — remaining ties fall to the
   lexicographically smallest tenant name, then the earliest-submitted
   job.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ServiceError


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's scheduling contract.

    ``weight`` scales the tenant's fair share (2.0 ⇒ twice the shards
    of a weight-1.0 peer under contention); ``priority`` is strict
    precedence between classes (subject to aging);
    ``max_concurrent_shards`` caps in-flight claims;
    ``max_captures`` caps total funded captures across all the tenant's
    jobs (:class:`~repro.survey.planner.CaptureBudget` semantics —
    shards the ceiling cannot fund are ledgered ``budget-exhausted``).
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    max_concurrent_shards: object = None  # int | None
    max_captures: object = None  # float | None

    def __post_init__(self):
        if not self.name:
            raise ServiceError("a tenant policy needs a name")
        if self.weight <= 0:
            raise ServiceError(f"tenant {self.name!r}: weight must be positive")
        if self.max_concurrent_shards is not None and self.max_concurrent_shards < 1:
            raise ServiceError(f"tenant {self.name!r}: max_concurrent_shards must be >= 1")
        if self.max_captures is not None and self.max_captures <= 0:
            raise ServiceError(f"tenant {self.name!r}: max_captures must be positive")


class FairShareScheduler:
    """Deterministic weighted fair-share selection over a store snapshot."""

    def __init__(self, policies=(), aging_decisions=16):
        if aging_decisions is not None and aging_decisions < 1:
            raise ServiceError("aging_decisions must be >= 1 (or None to disable aging)")
        self.policies = {}
        for policy in policies:
            if policy.name in self.policies:
                raise ServiceError(f"duplicate tenant policy {policy.name!r}")
            self.policies[policy.name] = policy
        self.aging_decisions = aging_decisions

    def policy_for(self, tenant):
        """The tenant's policy; unregistered tenants get the defaults."""
        policy = self.policies.get(tenant)
        if policy is None:
            policy = self.policies[tenant] = TenantPolicy(name=tenant)
        return policy

    def effective_priority(self, policy, usage, decision):
        """Static priority plus the aging boost earned while waiting."""
        if self.aging_decisions is None:
            return policy.priority
        waited = decision - usage.get("last_claim_decision", 0)
        return policy.priority + waited // self.aging_decisions

    def select(self, snapshot):
        """The next job to draw a shard from, or ``None`` when idle.

        Pure: no state is read or written beyond ``snapshot`` and the
        (immutable) policies, so replaying a journal reproduces every
        choice exactly.
        """
        decision = snapshot.get("decision", 0)
        candidates = []
        for name in sorted(snapshot.get("tenants", {})):
            usage = snapshot["tenants"][name]
            job_id = next(
                (entry["job_id"] for entry in usage.get("jobs", ()) if entry["has_pending"]),
                None,
            )
            if job_id is None:
                continue
            policy = self.policy_for(name)
            if (
                policy.max_concurrent_shards is not None
                and usage.get("live_claims", 0) >= policy.max_concurrent_shards
            ):
                continue
            candidates.append(
                (
                    -self.effective_priority(policy, usage, decision),
                    usage.get("charged", 0) / policy.weight,
                    name,
                    job_id,
                )
            )
        if not candidates:
            return None
        return min(candidates)[3]
