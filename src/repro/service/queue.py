"""The durable job store: every lifecycle transition is journaled.

The store is the service's single source of scheduling truth. Its state
lives in two layers, both built on :mod:`repro.journalutil`'s
append-only, per-line-checksummed, fsync'd discipline:

* ``store.jsonl`` — one record per lifecycle transition (``submit``,
  ``claim``, ``progress``, ``release``, ``skip``, ``cancel``,
  ``cancelled``, ``complete``, ``restart``). Replaying it reconstructs
  every job's pending/claimed/settled partition exactly, so a service
  killed at an arbitrary point restarts with zero lost or duplicated
  work.
* one :class:`~repro.survey.manifest.SurveyManifest` per job — the
  shard *results* and ledger, reusing the survey layer's crash-safe
  journal unchanged. A shard result is appended to the job's manifest
  *before* its ``progress`` record reaches the store journal, so a
  ``completed`` transition always has a durable result behind it; the
  reverse kill window (result durable, progress lost) merely re-marks
  the shard completed from the manifest on replay.

Orphan adoption falls out of shard purity: a claim whose worker died —
or whose whole service process was SIGKILLed — is released back to
pending (journaled, so the release itself is replayable) and any worker
re-runs it; the result is byte-identical because shards are pure
functions of ``(seed, shard_id)``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..errors import ServiceError
from ..io import _config_from_dict, _config_to_dict
from ..journalutil import append_line, atomic_write, ensure_line_boundary, iter_journal
from ..runner import journal_dirname
from ..survey.engine import plan_shards
from ..survey.manifest import JournaledLedger, SurveyManifest, plan_fingerprint, replay_ledger
from ..survey.planner import CaptureBudget
from ..survey.report import BUDGET_EXHAUSTED
from ..telemetry import MetricsSnapshot

#: Format marker of the store header, for forward compatibility.
STORE_FORMAT = "fase-service-store-v1"

#: Job lifecycle states (terminal: COMPLETED, CANCELLED).
QUEUED = "queued"
RUNNING = "running"
CANCELLING = "cancelling"
COMPLETED = "completed"
CANCELLED = "cancelled"

_HEADER_NAME = "HEADER.json"
_LOG_NAME = "store.jsonl"

_CANCEL_DETAIL = "job cancelled before this shard started"


@dataclass(frozen=True)
class JobSpec:
    """One submitted campaign: what to survey, for whom, how persistent.

    The shard plan is *derived*, never stored: ``plan_shards`` is
    deterministic in these fields, so replaying a ``submit`` record
    reconstructs the identical plan (and manifest fingerprint) the
    original process computed.
    """

    job_id: str
    tenant: str
    machines: tuple
    pairs: tuple  # ((op_x, op_y), ...) micro-op names
    config: object  # FaseConfig
    bands: object = None
    seed: int = 0
    max_shard_retries: int = 2

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "machines": list(self.machines),
            "pairs": [list(pair) for pair in self.pairs],
            "config": _config_to_dict(self.config),
            "bands": (
                [list(span) for span in self.bands]
                if isinstance(self.bands, (list, tuple))
                else self.bands
            ),
            "seed": int(self.seed),
            "max_shard_retries": int(self.max_shard_retries),
        }

    @classmethod
    def from_dict(cls, data):
        bands = data.get("bands")
        if isinstance(bands, list):
            bands = tuple((float(low), float(high)) for low, high in bands)
        return cls(
            job_id=data["job_id"],
            tenant=data["tenant"],
            machines=tuple(data["machines"]),
            pairs=tuple(tuple(pair) for pair in data["pairs"]),
            config=_config_from_dict(dict(data["config"])),
            bands=bands,
            seed=int(data.get("seed", 0)),
            max_shard_retries=int(data.get("max_shard_retries", 2)),
        )

    def shard_plan(self):
        return plan_shards(
            machines=self.machines,
            pairs=self.pairs,
            config=self.config,
            bands=self.bands,
            seed=self.seed,
        )


@dataclass(frozen=True)
class ClaimedShard:
    """What :meth:`JobStore.claim` hands a worker: one funded shard."""

    job_id: str
    tenant: str
    spec: object  # ShardSpec
    max_shard_retries: int


@dataclass
class _JobState:
    """In-memory scheduling state of one job (rebuilt by replay)."""

    spec: JobSpec
    shard_specs: tuple
    manifest: SurveyManifest
    ledger: JournaledLedger
    events_path: Path
    state: str = QUEUED
    pending: list = field(default_factory=list)  # shard ids, plan order
    claims: dict = field(default_factory=dict)  # shard_id -> worker
    results: dict = field(default_factory=dict)  # shard_id -> ShardResult
    failures: dict = field(default_factory=dict)  # shard_id -> charged count
    abandoned: set = field(default_factory=set)
    skipped: set = field(default_factory=set)
    cancelled_shards: set = field(default_factory=set)
    funded: set = field(default_factory=set)  # shard ids charged to the budget
    worker_shards: dict = field(default_factory=dict)  # worker -> shards completed

    def spec_for(self, shard_id):
        for spec in self.shard_specs:
            if spec.shard_id == shard_id:
                return spec
        raise ServiceError(f"job {self.spec.job_id!r} has no shard {shard_id!r}")

    def settled(self, shard_id):
        return (
            shard_id in self.results
            or shard_id in self.abandoned
            or shard_id in self.skipped
            or shard_id in self.cancelled_shards
        )


class JobStore:
    """The service's durable, multi-tenant job queue.

    Thread-safe: the worker fleet and the HTTP handlers share one store
    under one lock. Every mutating method journals its transition before
    the in-memory state reflects it, so the durable state never lags the
    observable state. Append failures raise :class:`ServiceError` — a
    job store that cannot persist transitions must not pretend to.
    """

    def __init__(self, root, scheduler=None):
        from .scheduler import FairShareScheduler

        self.root = Path(root)
        self.log_path = self.root / _LOG_NAME
        self.scheduler = scheduler if scheduler is not None else FairShareScheduler(())
        self.jobs = {}  # job_id -> _JobState
        self.order = []  # job ids in submit order
        self.budgets = {}  # tenant -> CaptureBudget (only for capped tenants)
        self.decision = 0  # claim counter: the scheduler's logical clock
        # tenant -> decision of its latest claim, seeded at admission so
        # a brand-new tenant ages from parity, not from decision zero.
        self.last_claim_decision = {}
        self.charged = {}  # tenant -> fairness charge (total claims)
        #: Liveness clock per worker, in ``time.monotonic()`` seconds.
        #: Reaping ages claims against THIS map, never the wall clock:
        #: an NTP step must not mass-release healthy claims (forward)
        #: or keep a dead worker's claim forever (backward). The
        #: ``workers/<name>.hb`` file mtime is kept purely for display.
        self._worker_beats = {}
        self._worker_counts = {}  # worker -> lifecycle counters
        self.reap_calls = 0  # lock acquisitions by reap_stale_claims
        self._seq = 0
        self._lock = threading.RLock()

    # -- lifecycle ----------------------------------------------------

    def open(self, server_name="service"):
        """Create or resume the store; returns ``self``.

        On resume, the journal is replayed into memory, a ``restart``
        marker is appended, and every outstanding claim — necessarily
        orphaned, since claims do not survive the owning process — is
        released back to pending for adoption by any worker.
        """
        with self._lock:
            self.root.mkdir(parents=True, exist_ok=True)
            header_path = self.root / _HEADER_NAME
            if header_path.is_file():
                try:
                    header = json.loads(header_path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    raise ServiceError(
                        f"store header at {str(header_path)!r} is unreadable: {exc}"
                    ) from exc
                if header.get("format") != STORE_FORMAT:
                    raise ServiceError(
                        f"unsupported store format {header.get('format')!r} "
                        f"at {str(header_path)!r}"
                    )
            else:
                self._write(
                    atomic_write,
                    header_path,
                    json.dumps({"format": STORE_FORMAT}, indent=2).encode("utf-8"),
                )
            self._write(ensure_line_boundary, self.log_path)
            had_records = self._replay()
            if had_records:
                self._append({"kind": "restart", "server": server_name})
                for job in self.jobs.values():
                    for shard_id, worker in sorted(job.claims.items()):
                        self._release_locked(
                            job,
                            shard_id,
                            worker,
                            "orphaned by service restart; released for adoption",
                        )
                    self._maybe_finalize_locked(job)
        return self

    def _write(self, fn, *args):
        try:
            return fn(*args)
        except OSError as exc:
            raise ServiceError(f"job store at {str(self.root)!r} is not writable: {exc}") from exc

    def _append(self, record):
        self._write(append_line, self.log_path, record)

    # -- replay -------------------------------------------------------

    def _replay(self):
        """Rebuild the in-memory state from the journal; True if non-empty.

        A damaged final line is the kill-mid-write signature — the
        record never became durable, so it simply never happened.
        Interior damage is skipped the same way; every affected shard
        re-runs, which purity makes safe.
        """
        if not self.log_path.exists():
            return False
        any_record = False
        for record, _is_last in self._write(lambda p: list(iter_journal(p)), self.log_path):
            if record is None:
                continue
            any_record = True
            self._apply(record)
        for job in self.jobs.values():
            self._maybe_finalize_locked(job)
        return any_record

    def _apply(self, record):
        kind = record.get("kind")
        if kind == "submit":
            self._admit(JobSpec.from_dict(record["job"]))
        elif kind == "claim":
            job = self.jobs.get(record["job_id"])
            if job is None:
                return
            shard_id = record["shard_id"]
            if shard_id in job.pending:
                job.pending.remove(shard_id)
            if not job.settled(shard_id):
                job.claims[shard_id] = record["worker"]
            if job.state == QUEUED:
                # A claim means the job ran, even if this shard's result
                # already came back from the manifest during _admit.
                job.state = RUNNING
            self._account_claim(job.spec.tenant, job, shard_id)
            self._count_worker(record["worker"], "claimed")
        elif kind == "progress":
            job = self.jobs.get(record["job_id"])
            if job is None:
                return
            shard_id = record["shard_id"]
            job.claims.pop(shard_id, None)
            worker = record.get("worker")
            if worker:
                key = "completed" if record.get("status") == "completed" else "failed"
                self._count_worker(worker, key)
                if key == "completed":
                    job.worker_shards[worker] = job.worker_shards.get(worker, 0) + 1
            if record.get("status") == "completed":
                # The result itself came back from the job's manifest in
                # _admit; a progress record whose result was torn away
                # leaves the shard pending, and it safely re-runs.
                if shard_id not in job.results and not job.settled(shard_id):
                    if shard_id not in job.pending:
                        job.pending.append(shard_id)
            else:
                # The failure count is NOT re-charged here: fail_shard
                # made it durable in the manifest ledger (record_failure
                # carries the cumulative count) *before* this progress
                # record, and _admit already restored that final count.
                # Replaying only repairs membership — the claim is gone,
                # and the shard re-pends unless the ledger settled it.
                if not job.settled(shard_id) and shard_id not in job.pending:
                    job.pending.append(shard_id)
        elif kind == "release":
            job = self.jobs.get(record["job_id"])
            if job is None:
                return
            shard_id = record["shard_id"]
            job.claims.pop(shard_id, None)
            if record.get("worker"):
                self._count_worker(record["worker"], "released")
            if job.state in (CANCELLING, CANCELLED):
                # Mirror _release_locked: a claim released after the
                # cancel joins the cancellation instead of resurrecting
                # as pending (the ledger record was written live).
                if not job.settled(shard_id):
                    job.cancelled_shards.add(shard_id)
            elif not job.settled(shard_id) and shard_id not in job.pending:
                job.pending.append(shard_id)
        elif kind == "skip":
            job = self.jobs.get(record["job_id"])
            if job is None:
                return
            shard_id = record["shard_id"]
            if shard_id in job.pending:
                job.pending.remove(shard_id)
            job.skipped.add(shard_id)
        elif kind == "cancel":
            job = self.jobs.get(record["job_id"])
            if job is None or job.state in (COMPLETED, CANCELLED):
                return
            job.cancelled_shards.update(job.pending)
            job.pending = []
            job.state = CANCELLING
        elif kind == "cancelled":
            job = self.jobs.get(record["job_id"])
            if job is not None:
                job.state = CANCELLED
        elif kind == "complete":
            job = self.jobs.get(record["job_id"])
            if job is not None:
                job.state = COMPLETED
        # restart / unknown kinds: informational or future; ignored.

    def _count_worker(self, worker, key):
        counts = self._worker_counts.setdefault(
            worker, {"claimed": 0, "completed": 0, "failed": 0, "released": 0}
        )
        counts[key] += 1

    def _account_claim(self, tenant, job, shard_id):
        self.decision += 1
        self.last_claim_decision[tenant] = self.decision
        self.charged[tenant] = self.charged.get(tenant, 0) + 1
        if shard_id not in job.funded:
            job.funded.add(shard_id)
            budget = self._budget_for(tenant)
            if budget is not None:
                spec = job.spec_for(shard_id)
                budget.restore(spec.machine, len(spec.config.falts()))

    # -- submission ---------------------------------------------------

    def submit(self, tenant, machines=None, pairs=None, config=None, bands=None,
               seed=0, max_shard_retries=2):
        """Admit one campaign; returns its job id.

        The ``submit`` record (the full job spec) is durable before the
        job is schedulable, and the job's survey manifest is created in
        the same step — so a kill at any point leaves either no job or a
        fully resumable one.
        """
        from ..survey.engine import DEFAULT_PAIRS
        from ..core.config import campaign_low_band

        if not tenant or not isinstance(tenant, str):
            raise ServiceError("a job needs a non-empty tenant name")
        with self._lock:
            self._seq += 1
            spec = JobSpec(
                job_id=f"job-{self._seq:06d}",
                tenant=tenant,
                machines=tuple(machines) if machines else None,
                pairs=tuple(
                    (getattr(x, "value", x), getattr(y, "value", y))
                    for x, y in (pairs or DEFAULT_PAIRS)
                ),
                config=config or campaign_low_band(),
                bands=bands,
                seed=seed,
                max_shard_retries=max_shard_retries,
            )
            if spec.machines is None:
                # Resolve now so the journaled spec is fully explicit.
                from ..system import ALL_PRESETS

                spec = replace(spec, machines=tuple(sorted(ALL_PRESETS)))
            spec.shard_plan()  # validate before anything is durable
            self._append({"kind": "submit", "job": spec.to_dict()})
            job = self._admit(spec)
            self._emit_event(job, "job-submitted", tenant=tenant, n_shards=len(job.shard_specs))
            return spec.job_id

    def _job_dir(self, job_id):
        return self.root / "jobs" / journal_dirname(job_id)

    def _admit(self, spec):
        shard_specs = spec.shard_plan()
        job_dir = self._job_dir(spec.job_id)
        manifest = SurveyManifest(job_dir / "manifest")
        fingerprint = plan_fingerprint(shard_specs)
        results = {}
        ledger_events = []
        if manifest.exists():
            manifest.open(fingerprint)
            state = manifest.load()
            results = state.results
            ledger_events = state.ledger_events
        else:
            self._write(lambda: job_dir.mkdir(parents=True, exist_ok=True))
            manifest.create(fingerprint, shard_specs, description=spec.config.describe())
            if manifest.degraded is not None:
                raise ServiceError(
                    f"could not create the manifest for {spec.job_id!r}: {manifest.degraded}"
                )
        ledger = JournaledLedger(manifest)
        replay_ledger(ledger, ledger_events)
        job = _JobState(
            spec=spec,
            shard_specs=shard_specs,
            manifest=manifest,
            ledger=ledger,
            events_path=job_dir / "events.jsonl",
            results=results,
        )
        for failure in ledger.failures:
            if failure.charged:
                job.failures[failure.shard_id] = max(
                    job.failures.get(failure.shard_id, 0), failure.failures
                )
        job.abandoned.update(ledger.abandoned)
        # A prior run's cancellations are manifest history; the *store*
        # journal decides whether they still stand (its cancel/cancelled
        # records replay after this).
        job.pending = [
            s.shard_id
            for s in shard_specs
            if s.shard_id not in job.results and s.shard_id not in job.abandoned
        ]
        self.jobs[spec.job_id] = job
        self.order.append(spec.job_id)
        # First sighting of this tenant: its aging clock starts *now*.
        # Without this baseline a tenant admitted after N total claims
        # would read as having waited all N and leapfrog every static
        # priority class on its first claim. setdefault keeps genuine
        # claim history (and replay) authoritative.
        self.last_claim_decision.setdefault(spec.tenant, self.decision)
        # Keep the id sequence monotonic across restarts.
        try:
            seq = int(spec.job_id.rsplit("-", 1)[1])
            self._seq = max(self._seq, seq)
        except (IndexError, ValueError):
            pass
        return job

    # -- scheduling ---------------------------------------------------

    def _budget_for(self, tenant):
        policy = self.scheduler.policy_for(tenant)
        if policy.max_captures is None:
            return None
        budget = self.budgets.get(tenant)
        if budget is None:
            budget = self.budgets[tenant] = CaptureBudget(total=float(policy.max_captures))
        return budget

    def snapshot(self):
        """The scheduler's world: per-tenant usage and queued work.

        A pure value (plain dicts), derived entirely from journaled
        transitions — which is what makes every scheduling decision
        replayable.
        """
        with self._lock:
            tenants = {}
            for job_id in self.order:
                job = self.jobs[job_id]
                tenant = job.spec.tenant
                usage = tenants.setdefault(
                    tenant,
                    {
                        "live_claims": 0,
                        "charged": self.charged.get(tenant, 0),
                        "last_claim_decision": self.last_claim_decision.get(tenant, 0),
                        "jobs": [],
                    },
                )
                usage["live_claims"] += len(job.claims)
                usage["jobs"].append({
                    "job_id": job_id,
                    # Cancelling/terminal jobs never offer work, even if a
                    # replay race left ids in pending.
                    "has_pending": bool(job.pending) and job.state in (QUEUED, RUNNING),
                })
            return {"decision": self.decision, "tenants": tenants}

    def claim(self, worker):
        """One scheduling decision: the next funded shard, or ``None``.

        The scheduler picks the tenant/job (pure function of
        :meth:`snapshot`); the store takes that job's first pending
        shard in plan order, funds it against the tenant's capture
        ceiling (unfundable shards are skipped with a
        ``budget-exhausted`` ledger decision — they count as settled, so
        an over-budget job completes instead of deadlocking), journals
        the claim, and hands the worker the spec.
        """
        with self._lock:
            while True:
                choice = self.scheduler.select(self.snapshot())
                if choice is None:
                    return None
                job = self.jobs[choice]
                tenant = job.spec.tenant
                shard_id = job.pending[0]
                spec = job.spec_for(shard_id)
                budget = self._budget_for(tenant)
                captures = len(spec.config.falts())
                if (
                    budget is not None
                    and shard_id not in job.funded
                    and not budget.can_fund(spec.machine, captures)
                ):
                    self._append({
                        "kind": "skip",
                        "job_id": job.spec.job_id,
                        "shard_id": shard_id,
                        "detail": "tenant capture ceiling",
                    })
                    job.pending.remove(shard_id)
                    job.skipped.add(shard_id)
                    job.ledger.record_planned(
                        shard_id,
                        BUDGET_EXHAUSTED,
                        f"tenant {tenant!r} capture ceiling "
                        f"({budget.total:g}) cannot fund this shard's "
                        f"{captures} capture(s)",
                    )
                    self._emit_event(job, "shard-skipped", shard=shard_id)
                    self._maybe_finalize_locked(job)
                    continue
                self._append({
                    "kind": "claim",
                    "job_id": job.spec.job_id,
                    "shard_id": shard_id,
                    "worker": worker,
                    "decision": self.decision + 1,
                })
                job.pending.remove(shard_id)
                job.claims[shard_id] = worker
                if job.state == QUEUED:
                    job.state = RUNNING
                self._account_claim(tenant, job, shard_id)
                self._count_worker(worker, "claimed")
                # A claim is proof of life: seed the liveness clock so a
                # reap racing the worker's first heartbeat cannot release
                # (and double-run) a shard the worker just accepted.
                self._worker_beats[worker] = time.monotonic()
                self._emit_event(job, "shard-claimed", shard=shard_id, worker=worker)
                return ClaimedShard(
                    job_id=job.spec.job_id,
                    tenant=tenant,
                    spec=spec,
                    max_shard_retries=job.spec.max_shard_retries,
                )

    def complete_shard(self, job_id, shard_id, result, worker, elapsed_s=None):
        """A worker finished a shard. Result first, transition second.

        The manifest append is durable before the ``progress`` record,
        so a kill between the two can only lose the *transition* — and
        replay re-marks the shard completed from the manifest.
        ``elapsed_s`` (a worker-host's self-reported shard wall-clock)
        rides only the advisory event stream, never the journal.
        """
        with self._lock:
            job = self._job(job_id)
            if shard_id not in job.results:
                job.manifest.append_shard(result)
            self._append({
                "kind": "progress",
                "job_id": job_id,
                "shard_id": shard_id,
                "status": "completed",
                "worker": worker,
            })
            job.claims.pop(shard_id, None)
            job.results[shard_id] = result
            job.worker_shards[worker] = job.worker_shards.get(worker, 0) + 1
            self._count_worker(worker, "completed")
            attrs = {"shard": shard_id, "worker": worker}
            if elapsed_s is not None:
                attrs["elapsed_s"] = round(float(elapsed_s), 6)
            self._emit_event(job, "shard-finished", **attrs)
            self._maybe_finalize_locked(job)

    def fail_shard(self, job_id, shard_id, kind, detail, worker):
        """A worker's shard failed: charge, requeue-or-abandon, journal."""
        with self._lock:
            job = self._job(job_id)
            n = job.failures.get(shard_id, 0) + 1
            job.ledger.record_failure(shard_id, kind, detail, failures=n)
            if n <= job.spec.max_shard_retries:
                job.ledger.record_requeue(shard_id)
            else:
                job.ledger.record_abandoned(
                    shard_id, f"{kind} after {n} failure(s): {detail}"
                )
            self._append({
                "kind": "progress",
                "job_id": job_id,
                "shard_id": shard_id,
                "status": "failed",
                "failure_kind": kind,
                "detail": detail,
                "worker": worker,
            })
            job.claims.pop(shard_id, None)
            job.failures[shard_id] = n
            self._count_worker(worker, "failed")
            if n > job.spec.max_shard_retries:
                job.abandoned.add(shard_id)
            elif shard_id not in job.pending and not job.settled(shard_id):
                job.pending.append(shard_id)
            self._emit_event(job, "shard-failed", shard=shard_id, kind=kind, failures=n)
            self._maybe_finalize_locked(job)

    def release_shard(self, job_id, shard_id, worker, detail):
        """Give a claim back uncharged (worker shutdown, stale reap)."""
        with self._lock:
            job = self._job(job_id)
            if job.claims.get(shard_id) != worker:
                return
            self._release_locked(job, shard_id, worker, detail)

    def _release_locked(self, job, shard_id, worker, detail):
        self._append({
            "kind": "release",
            "job_id": job.spec.job_id,
            "shard_id": shard_id,
            "worker": worker,
            "detail": detail,
        })
        job.claims.pop(shard_id, None)
        self._count_worker(worker, "released")
        if job.state == CANCELLING:
            # The cancellation already claimed this job's future work; a
            # released claim joins it instead of returning to pending.
            if not job.settled(shard_id):
                job.cancelled_shards.add(shard_id)
                job.ledger.record_cancelled(shard_id, _CANCEL_DETAIL)
        elif not job.settled(shard_id) and shard_id not in job.pending:
            job.pending.append(shard_id)
        self._emit_event(job, "shard-released", shard=shard_id, detail=detail)
        self._maybe_finalize_locked(job)

    def cancel(self, job_id):
        """Cooperative cancellation: pending shards die now, claims drain.

        Returns the job's state after the request (``cancelling`` while
        claims are still in flight, ``cancelled`` once drained; terminal
        states are returned unchanged — cancelling a finished job is a
        no-op, not an error).
        """
        with self._lock:
            job = self._job(job_id)
            if job.state in (COMPLETED, CANCELLED):
                return job.state
            self._append({"kind": "cancel", "job_id": job_id})
            for shard_id in job.pending:
                job.cancelled_shards.add(shard_id)
                job.ledger.record_cancelled(shard_id, _CANCEL_DETAIL)
            job.pending = []
            job.state = CANCELLING
            self._emit_event(job, "job-cancel-requested", n_in_flight=len(job.claims))
            self._maybe_finalize_locked(job)
            return job.state

    def _maybe_finalize_locked(self, job):
        if job.state in (COMPLETED, CANCELLED) or job.claims:
            return
        if job.state == CANCELLING:
            self._append({"kind": "cancelled", "job_id": job.spec.job_id})
            job.state = CANCELLED
            self._emit_event(job, "job-cancelled")
        elif not job.pending:
            self._append({"kind": "complete", "job_id": job.spec.job_id})
            job.state = COMPLETED
            self._emit_event(
                job,
                "job-completed",
                n_results=len(job.results),
                workers=dict(sorted(job.worker_shards.items())),
            )

    # -- workers ------------------------------------------------------

    def worker_heartbeat(self, worker):
        """Record worker liveness: monotonic clock + display file.

        The reaper ages claims against the in-process monotonic beat;
        the ``workers/<name>.hb`` touch is advisory wall-clock display
        only (``worker_stats``), and its failure never fails the beat.
        """
        self._worker_beats[worker] = time.monotonic()
        path = self.root / "workers" / f"{journal_dirname(worker)}.hb"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.touch()
        except OSError:
            pass

    def reap_stale_claims(self, max_age_s, now=None):
        """Release every claim whose worker stopped heartbeating.

        The released shards return to pending for adoption by any live
        worker — the in-process analogue of the restart-time orphan
        release. Returns the number of claims reaped.

        Ages are measured on the process-local **monotonic** clock
        (``now``, when given, is in the ``time.monotonic()`` domain): a
        backwards NTP step must not make every claim look fresh forever,
        and a forward step must not mass-release healthy claims into
        double-runs. Claims whose worker this process has never heard
        from are infinitely stale — such claims cannot outlive a restart
        (``open`` releases them), so a missing beat means a worker that
        died between journal replay and its first heartbeat.
        """
        now = time.monotonic() if now is None else now
        reaped = 0
        with self._lock:
            self.reap_calls += 1
            for job in list(self.jobs.values()):
                for shard_id, worker in sorted(job.claims.items()):
                    beat = self._worker_beats.get(worker)
                    age = float("inf") if beat is None else now - beat
                    if age > max_age_s:
                        self._release_locked(
                            job,
                            shard_id,
                            worker,
                            f"worker {worker!r} heartbeat stale ({age:.1f}s); "
                            "claim reaped for adoption",
                        )
                        reaped += 1
                self._maybe_finalize_locked(job)
        return reaped

    def worker_stats(self):
        """Per-worker lifecycle counters and liveness, JSON-safe.

        Counters are rebuilt from the journal on replay (claims,
        completions, failures, releases are all journaled with their
        worker), so the view survives restarts. ``last_heartbeat_unix``
        is wall-clock display from the advisory ``.hb`` file —
        reaping never reads it (see :meth:`reap_stale_claims`).
        """
        with self._lock:
            live = {}
            for job in self.jobs.values():
                for worker in job.claims.values():
                    live[worker] = live.get(worker, 0) + 1
            now = time.monotonic()
            stats = {}
            for worker in sorted(set(self._worker_counts) | set(self._worker_beats)):
                counts = self._worker_counts.get(
                    worker, {"claimed": 0, "completed": 0, "failed": 0, "released": 0}
                )
                hb = self.root / "workers" / f"{journal_dirname(worker)}.hb"
                try:
                    last_unix = hb.stat().st_mtime
                except OSError:
                    last_unix = None
                beat = self._worker_beats.get(worker)
                stats[worker] = {
                    **counts,
                    "live_claims": live.get(worker, 0),
                    "last_heartbeat_unix": last_unix,
                    "heartbeat_age_s": None if beat is None else round(now - beat, 3),
                }
            return stats

    # -- queries ------------------------------------------------------

    def _job(self, job_id):
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def job_ids(self):
        with self._lock:
            return list(self.order)

    def all_settled(self):
        with self._lock:
            return all(job.state in (COMPLETED, CANCELLED) for job in self.jobs.values())

    def job_state(self, job_id):
        """The job's lifecycle state alone — what an event tail polls."""
        with self._lock:
            return self._job(job_id).state

    def shard_spec(self, job_id, shard_id):
        """The planned spec for one shard; raises on unknown job/shard."""
        with self._lock:
            return self._job(job_id).spec_for(shard_id)

    def job_status(self, job_id):
        """Status + per-shard progress + merged metrics, all JSON-safe."""
        with self._lock:
            job = self._job(job_id)
            shards = {}
            for spec in job.shard_specs:
                sid = spec.shard_id
                if sid in job.results:
                    shards[sid] = "completed"
                elif sid in job.claims:
                    shards[sid] = f"claimed:{job.claims[sid]}"
                elif sid in job.abandoned:
                    shards[sid] = "abandoned"
                elif sid in job.skipped:
                    shards[sid] = "skipped"
                elif sid in job.cancelled_shards:
                    shards[sid] = "cancelled"
                else:
                    shards[sid] = "pending"
            merged = MetricsSnapshot(counters={}, gauges={}, histograms={})
            for result in job.results.values():
                merged = merged.merge(MetricsSnapshot.from_dict(result.metrics))
            return {
                "job_id": job_id,
                "tenant": job.spec.tenant,
                "state": job.state,
                "n_shards": len(job.shard_specs),
                "n_completed": len(job.results),
                "n_failures": sum(job.failures.values()),
                "shards": shards,
                "workers": dict(sorted(job.worker_shards.items())),
                "metrics": merged.to_dict(),
            }

    def job_report(self, job_id):
        """The job's :class:`~repro.survey.report.SurveyReport` so far.

        Aggregated exactly as ``run_survey`` would have — same merge
        code path — over whatever shards have completed; the ledger
        carries retries, abandonments, skips, and cancellations.
        """
        from ..survey.engine import _aggregate

        with self._lock:
            job = self._job(job_id)
            report, _ = _aggregate(
                job.shard_specs, job.results, job.ledger, job.spec.config.describe()
            )
            return report

    def tenant_usage(self, tenant):
        """Quota usage for one tenant (policy, claims, captures)."""
        with self._lock:
            policy = self.scheduler.policy_for(tenant)
            live = sum(
                len(job.claims)
                for job in self.jobs.values()
                if job.spec.tenant == tenant
            )
            budget = self.budgets.get(tenant)
            return {
                "tenant": tenant,
                "weight": policy.weight,
                "priority": policy.priority,
                "max_concurrent_shards": policy.max_concurrent_shards,
                "max_captures": policy.max_captures,
                "live_claims": live,
                "charged_shards": self.charged.get(tenant, 0),
                "captures_spent": 0.0 if budget is None else budget.spent(),
                "jobs": [
                    job_id
                    for job_id in self.order
                    if self.jobs[job_id].spec.tenant == tenant
                ],
            }

    def events_path(self, job_id):
        with self._lock:
            return self._job(job_id).events_path

    def _emit_event(self, job, name, **attrs):
        """One advisory line in the job's telemetry JSONL (never fails)."""
        record = {"type": "event", "name": name, "attrs": attrs}
        try:
            with open(job.events_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            pass
