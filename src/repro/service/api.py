"""The stdlib-only HTTP face of the campaign service.

:class:`FaseService` composes the durable store, the fair-share
scheduler, and (optionally) an in-process worker fleet, and serves a
JSON API from a ``ThreadingHTTPServer`` — no framework, no extra
dependency:

=========  ================================  ===============================
method     path                              body / response
=========  ================================  ===============================
``POST``   ``/jobs``                         submit a campaign spec →
                                             ``{job_id}``
``GET``    ``/jobs``                         every job's status summary
``GET``    ``/jobs/{id}``                    status + per-shard progress +
                                             merged metrics
``GET``    ``/jobs/{id}/result``             the aggregated
                                             :class:`~repro.survey.SurveyReport`
                                             as JSON (never a pickle)
``POST``   ``/jobs/{id}/cancel``             cooperative cancellation
``GET``    ``/jobs/{id}/events``             the job's event stream;
                                             ``?offset=N`` resumes,
                                             ``?follow=1`` live-tails
                                             (chunked NDJSON envelopes)
``POST``   ``/claims``                       claim one shard for a remote
                                             worker host → spec as JSON
``POST``   ``/jobs/{id}/shards/{s}/result``  report a finished shard
``POST``   ``/jobs/{id}/shards/{s}/fail``    report a failed shard
``POST``   ``/jobs/{id}/shards/{s}/release`` give a claim back uncharged
``PUT``    ``/workers/{name}/heartbeat``     worker-host liveness beat
``GET``    ``/workers``                      per-worker lifecycle counters
``GET``    ``/tenants/{id}``                 quota usage
=========  ================================  ===============================

The claim/report endpoints are what turn the service into a *hub* for
:class:`~repro.service.host.WorkerHost` processes: remote hosts run the
shards, but every store transition still happens here, in the single
writer process — the journal's crash-safety story is unchanged.

Every response is JSON except ``/events`` (``application/x-ndjson``).
Unknown jobs/tenants are 404, malformed requests 400 — always with an
``{"error": ...}`` body.

**Event streaming.** A plain ``GET /jobs/{id}/events`` answers a
snapshot of every *complete* line from ``?offset=`` (default 0) with
the next resume offset in the ``X-Fase-Events-Offset`` header — a torn
final line (an append caught mid-write) is withheld until its newline
lands, never served as garbage. With ``?follow=1`` the response is a
chunked NDJSON live tail of envelopes::

    {"offset": 123, "event": {...}}   # one event; offset = resume point
    {"offset": 123}                   # keepalive (nothing new)
    {"offset": 456, "end": "completed"}  # job went terminal; stream done

Offsets are byte offsets into the job's events log, valid across
reconnects — pass the last seen ``offset`` back as ``?offset=`` to
resume without replay or loss.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.config import FaseConfig
from ..errors import ReproError, ServiceError
from ..journalutil import read_complete_lines
from ..survey.manifest import shard_result_from_dict
from ..survey.report import SHARD_ERROR
from ..survey.shards import shard_spec_to_dict
from .queue import CANCELLED, COMPLETED, JobStore
from .scheduler import FairShareScheduler
from .workers import WorkerFleet

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(FaseConfig)}


def config_from_request(data):
    """A :class:`FaseConfig` from a (possibly partial) JSON dict.

    Unknown fields are rejected loudly — a typo'd knob silently falling
    back to its default would corrupt a campaign without a trace.
    """
    if data is None:
        return None
    unknown = sorted(set(data) - _CONFIG_FIELDS)
    if unknown:
        raise ServiceError(f"unknown config field(s): {', '.join(unknown)}")
    fields = dict(data)
    if "harmonics" in fields and fields["harmonics"] is not None:
        fields["harmonics"] = tuple(fields["harmonics"])
    return FaseConfig(**fields)


class FaseService:
    """The long-lived campaign service: store + scheduler + fleet + HTTP.

    ``tenants`` is an iterable of
    :class:`~repro.service.scheduler.TenantPolicy`; unregistered tenants
    are admitted with default policy. ``workers`` sizes the in-process
    fleet — ``workers=0`` runs a *hub-only* service with no local
    workers at all, for deployments where every shard runs on remote
    :class:`~repro.service.host.WorkerHost` processes (the service then
    reaps stale host claims itself when ``reap_after_s`` is set).
    ``shard_timeout_s`` arms the fleet's stall watchdog, ``shard_fn``
    swaps the shard body in tests. Use as a context manager or call
    :meth:`start`/:meth:`stop`.
    """

    #: Live-tail pacing: how often a follow stream polls the events log,
    #: and how long it stays silent before writing a keepalive envelope.
    stream_poll_s = 0.1
    stream_keepalive_s = 2.0

    def __init__(
        self,
        root,
        tenants=(),
        workers=2,
        shard_timeout_s=None,
        shard_fn=None,
        aging_decisions=16,
        reap_after_s=None,
        server_name="fase-service",
    ):
        self.scheduler = FairShareScheduler(tenants, aging_decisions=aging_decisions)
        self.store = JobStore(root, scheduler=self.scheduler)
        self.fleet = None
        if workers:
            self.fleet = WorkerFleet(
                self.store,
                workers=workers,
                shard_fn=shard_fn,
                shard_timeout_s=shard_timeout_s,
                reap_after_s=reap_after_s,
            )
        self.reap_after_s = reap_after_s
        self.server_name = server_name
        self._httpd = None
        self._http_thread = None
        self._reaper_thread = None
        # Set on stop(): follow-stream handlers and the hub reaper poll
        # it so a shutdown does not hang on an open live tail.
        self._stopping = threading.Event()

    # -- lifecycle ----------------------------------------------------

    def start(self, host="127.0.0.1", port=0):
        """Open (or resume) the store, start the fleet, bind the API.

        Returns ``(host, port)`` with the actual bound port — pass
        ``port=0`` to let the OS choose (the test tier does).
        """
        self._stopping.clear()
        self.store.open(server_name=self.server_name)
        if self.fleet is not None:
            self.fleet.start()
        elif self.reap_after_s is not None:
            # Hub-only service: no fleet thread ever reaps, so the
            # service sweeps stale remote-host claims itself.
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, name="fase-reaper", daemon=True
            )
            self._reaper_thread.start()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="fase-http", daemon=True
        )
        self._http_thread.start()
        return self._httpd.server_address[:2]

    def stop(self):
        self._stopping.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
            self._http_thread = None
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=10.0)
            self._reaper_thread = None
        if self.fleet is not None:
            self.fleet.stop()

    def _reap_loop(self):
        interval = self.reap_after_s / 2.0
        while not self._stopping.wait(interval):
            self.store.reap_stale_claims(self.reap_after_s)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    @property
    def address(self):
        if self._httpd is None:
            raise ServiceError("the service is not serving")
        return self._httpd.server_address[:2]

    # -- request handlers (called by the HTTP layer) ------------------

    def submit_job(self, body):
        pairs = None
        if body.get("pairs") is not None:
            pairs = tuple(tuple(pair) for pair in body["pairs"])
        job_id = self.store.submit(
            tenant=body.get("tenant"),
            machines=body.get("machines"),
            pairs=pairs,
            config=config_from_request(body.get("config")),
            bands=body.get("bands"),
            seed=int(body.get("seed", 0)),
            max_shard_retries=int(body.get("max_shard_retries", 2)),
        )
        return {"job_id": job_id}

    def job_result_json(self, job_id):
        return self.store.job_report(job_id).to_dict()

    def claim_shard(self, body):
        """One remote claim: heartbeat the host, pick a shard, wire it.

        The claim poll doubles as a liveness beat — a host that keeps
        asking for work is by definition alive, even between shards.
        """
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError("a claim needs a non-empty worker name")
        self.store.worker_heartbeat(worker)
        claimed = self.store.claim(worker)
        if claimed is None:
            return {"claim": None}
        return {
            "claim": {
                "job_id": claimed.job_id,
                "tenant": claimed.tenant,
                "max_shard_retries": claimed.max_shard_retries,
                "spec": shard_spec_to_dict(claimed.spec),
            }
        }

    def report_result(self, job_id, shard_id, body):
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError("a shard report needs a non-empty worker name")
        data = body.get("result")
        if not isinstance(data, dict):
            raise ServiceError("a shard result report needs a 'result' object")
        if data.get("shard_id") != shard_id:
            raise ServiceError(
                f"result is for shard {data.get('shard_id')!r}, "
                f"not the addressed {shard_id!r}"
            )
        self.store.shard_spec(job_id, shard_id)  # 404 before any mutation
        elapsed_s = body.get("elapsed_s")
        self.store.complete_shard(
            job_id,
            shard_id,
            shard_result_from_dict(data),
            worker,
            elapsed_s=None if elapsed_s is None else float(elapsed_s),
        )
        return {"job_id": job_id, "shard_id": shard_id, "state": self.store.job_state(job_id)}

    def report_failure(self, job_id, shard_id, body):
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError("a shard report needs a non-empty worker name")
        self.store.shard_spec(job_id, shard_id)
        self.store.fail_shard(
            job_id,
            shard_id,
            str(body.get("kind") or SHARD_ERROR),
            str(body.get("detail") or "remote worker reported a failure"),
            worker,
        )
        return {"job_id": job_id, "shard_id": shard_id, "state": self.store.job_state(job_id)}

    def release_claim(self, job_id, shard_id, body):
        worker = body.get("worker")
        if not worker or not isinstance(worker, str):
            raise ServiceError("a release needs a non-empty worker name")
        self.store.shard_spec(job_id, shard_id)
        self.store.release_shard(
            job_id,
            shard_id,
            worker,
            str(body.get("detail") or "released by its worker host"),
        )
        return {"job_id": job_id, "shard_id": shard_id, "state": self.store.job_state(job_id)}


def _make_handler(service):
    """A request-handler class closed over one :class:`FaseService`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "fase-service"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # the job store journal is the audit trail, not stderr

        # -- plumbing -------------------------------------------------

        def _send_json(self, payload, status=200):
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, message, status):
            self._send_json({"error": message}, status=status)

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
            except ValueError as exc:
                raise ServiceError(f"request body is not valid JSON: {exc}") from exc
            if not isinstance(body, dict):
                raise ServiceError("request body must be a JSON object")
            return body

        def _route(self):
            path = urllib.parse.urlsplit(self.path).path
            return [urllib.parse.unquote(part) for part in path.split("/") if part]

        def _query(self):
            return urllib.parse.parse_qs(urllib.parse.urlsplit(self.path).query)

        # -- verbs ----------------------------------------------------

        def do_GET(self):
            parts = self._route()
            try:
                if parts == ["jobs"]:
                    return self._send_json(
                        {
                            "jobs": [
                                service.store.job_status(job_id)
                                for job_id in service.store.job_ids()
                            ]
                        }
                    )
                if len(parts) == 2 and parts[0] == "jobs":
                    return self._send_json(service.store.job_status(parts[1]))
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                    return self._send_json(service.job_result_json(parts[1]))
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                    return self._send_events(parts[1])
                if parts == ["workers"]:
                    return self._send_json({"workers": service.store.worker_stats()})
                if len(parts) == 2 and parts[0] == "tenants":
                    return self._send_json(service.store.tenant_usage(parts[1]))
                self._send_error(f"no such resource: {self.path}", 404)
            except ServiceError as exc:
                self._send_error(str(exc), 404 if _is_missing(exc) else 400)
            except ReproError as exc:
                self._send_error(str(exc), 400)
            except (ValueError, TypeError) as exc:
                self._send_error(f"malformed request: {exc}", 400)

        def do_POST(self):
            parts = self._route()
            try:
                if parts == ["jobs"]:
                    return self._send_json(service.submit_job(self._read_body()), status=201)
                if parts == ["claims"]:
                    return self._send_json(service.claim_shard(self._read_body()))
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                    state = service.store.cancel(parts[1])
                    return self._send_json({"job_id": parts[1], "state": state})
                if len(parts) == 5 and parts[0] == "jobs" and parts[2] == "shards":
                    job_id, shard_id, action = parts[1], parts[3], parts[4]
                    body = self._read_body()
                    if action == "result":
                        return self._send_json(service.report_result(job_id, shard_id, body))
                    if action == "fail":
                        return self._send_json(service.report_failure(job_id, shard_id, body))
                    if action == "release":
                        return self._send_json(service.release_claim(job_id, shard_id, body))
                self._send_error(f"no such resource: {self.path}", 404)
            except ServiceError as exc:
                self._send_error(str(exc), 404 if _is_missing(exc) else 400)
            except ReproError as exc:
                self._send_error(str(exc), 400)
            except (ValueError, TypeError) as exc:
                # Malformed scalars in an otherwise-JSON body ("seed":
                # "abc", a non-list "pairs", ...) must answer 400, never
                # drop the connection with a server-side traceback.
                self._send_error(f"malformed request: {exc}", 400)

        def do_PUT(self):
            parts = self._route()
            try:
                if len(parts) == 3 and parts[0] == "workers" and parts[2] == "heartbeat":
                    service.store.worker_heartbeat(parts[1])
                    return self._send_json({"worker": parts[1], "ok": True})
                self._send_error(f"no such resource: {self.path}", 404)
            except ReproError as exc:
                self._send_error(str(exc), 400)

        # -- the events stream ----------------------------------------

        def _send_events(self, job_id):
            query = self._query()
            try:
                offset = int(query.get("offset", ["0"])[0])
            except ValueError as exc:
                raise ServiceError(f"offset must be an integer: {exc}") from exc
            follow = query.get("follow", ["0"])[0] not in ("", "0", "false")
            path = service.store.events_path(job_id)  # 404s before headers
            if not follow:
                return self._send_events_snapshot(path, offset)
            self._stream_events(job_id, path, offset)

        def _send_events_snapshot(self, path, offset):
            lines, next_offset = read_complete_lines(path, offset)
            body = b"".join(line + b"\n" for line in lines)
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("X-Fase-Events-Offset", str(next_offset))
            self.end_headers()
            self.wfile.write(body)

        def _chunk(self, payload):
            self.wfile.write(f"{len(payload):x}\r\n".encode("ascii") + payload + b"\r\n")
            self.wfile.flush()

        def _envelope(self, **fields):
            self._chunk(json.dumps(fields, sort_keys=True).encode("utf-8") + b"\n")

        def _stream_events(self, job_id, path, offset):
            """Chunked NDJSON live tail; ends when the job goes terminal.

            Each event rides an envelope carrying the byte offset *after*
            its line — the client's resume token. Unparseable lines (a
            sealed fragment, interior damage) are skipped but still
            advance the offset, so a bad line can never wedge the tail.
            """
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            pos = max(0, int(offset))
            quiet_s = 0.0
            try:
                while True:
                    # State first, batch second: the terminal transition
                    # and its final event are written under one store
                    # lock, so a post-terminal read drains everything.
                    state = service.store.job_state(job_id)
                    lines, next_pos = read_complete_lines(path, pos)
                    for line in lines:
                        pos += len(line) + 1
                        try:
                            event = json.loads(line)
                        except ValueError:
                            continue
                        self._envelope(offset=pos, event=event)
                    pos = next_pos
                    if lines:
                        quiet_s = 0.0
                    elif state in (COMPLETED, CANCELLED):
                        self._envelope(offset=pos, end=state)
                        break
                    if service._stopping.is_set():
                        break
                    if quiet_s >= service.stream_keepalive_s:
                        self._envelope(offset=pos)
                        quiet_s = 0.0
                    time.sleep(service.stream_poll_s)
                    quiet_s += service.stream_poll_s
                self._chunk(b"")  # the chunked-encoding terminator
            except OSError:
                return  # the client went away; nothing to clean up

    return Handler


def _is_missing(exc):
    text = str(exc)
    return "unknown job" in text or "has no shard" in text
