"""The stdlib-only HTTP face of the campaign service.

:class:`FaseService` composes the durable store, the fair-share
scheduler, and the worker fleet, and serves a JSON API from a
``ThreadingHTTPServer`` — no framework, no extra dependency:

=========  ==========================  =======================================
method     path                        body / response
=========  ==========================  =======================================
``POST``   ``/jobs``                   submit a campaign spec → ``{job_id}``
``GET``    ``/jobs``                   every job's status summary
``GET``    ``/jobs/{id}``              status + per-shard progress + merged
                                       :class:`~repro.telemetry.MetricsSnapshot`
``GET``    ``/jobs/{id}/result``       the aggregated
                                       :class:`~repro.survey.SurveyReport`
                                       as JSON (never a pickle)
``POST``   ``/jobs/{id}/cancel``       cooperative cancellation
``GET``    ``/jobs/{id}/events``       the job's telemetry JSONL stream
``GET``    ``/tenants/{id}``           quota usage
=========  ==========================  =======================================

Every response is JSON except ``/events`` (``application/x-ndjson``).
Unknown jobs/tenants are 404, malformed requests 400 — always with an
``{"error": ...}`` body.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.config import FaseConfig
from ..errors import ReproError, ServiceError
from .queue import JobStore
from .scheduler import FairShareScheduler
from .workers import WorkerFleet

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(FaseConfig)}


def config_from_request(data):
    """A :class:`FaseConfig` from a (possibly partial) JSON dict.

    Unknown fields are rejected loudly — a typo'd knob silently falling
    back to its default would corrupt a campaign without a trace.
    """
    if data is None:
        return None
    unknown = sorted(set(data) - _CONFIG_FIELDS)
    if unknown:
        raise ServiceError(f"unknown config field(s): {', '.join(unknown)}")
    fields = dict(data)
    if "harmonics" in fields and fields["harmonics"] is not None:
        fields["harmonics"] = tuple(fields["harmonics"])
    return FaseConfig(**fields)


class FaseService:
    """The long-lived campaign service: store + scheduler + fleet + HTTP.

    ``tenants`` is an iterable of
    :class:`~repro.service.scheduler.TenantPolicy`; unregistered tenants
    are admitted with default policy. ``workers`` sizes the fleet,
    ``shard_timeout_s`` arms its stall watchdog, ``shard_fn`` swaps the
    shard body in tests. Use as a context manager or call
    :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        root,
        tenants=(),
        workers=2,
        shard_timeout_s=None,
        shard_fn=None,
        aging_decisions=16,
        reap_after_s=None,
        server_name="fase-service",
    ):
        self.scheduler = FairShareScheduler(tenants, aging_decisions=aging_decisions)
        self.store = JobStore(root, scheduler=self.scheduler)
        self.fleet = WorkerFleet(
            self.store,
            workers=workers,
            shard_fn=shard_fn,
            shard_timeout_s=shard_timeout_s,
            reap_after_s=reap_after_s,
        )
        self.server_name = server_name
        self._httpd = None
        self._http_thread = None

    # -- lifecycle ----------------------------------------------------

    def start(self, host="127.0.0.1", port=0):
        """Open (or resume) the store, start the fleet, bind the API.

        Returns ``(host, port)`` with the actual bound port — pass
        ``port=0`` to let the OS choose (the test tier does).
        """
        self.store.open(server_name=self.server_name)
        self.fleet.start()
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="fase-http", daemon=True
        )
        self._http_thread.start()
        return self._httpd.server_address[:2]

    def stop(self):
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
            self._http_thread = None
        self.fleet.stop()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    @property
    def address(self):
        if self._httpd is None:
            raise ServiceError("the service is not serving")
        return self._httpd.server_address[:2]

    # -- request handlers (called by the HTTP layer) ------------------

    def submit_job(self, body):
        pairs = None
        if body.get("pairs") is not None:
            pairs = tuple(tuple(pair) for pair in body["pairs"])
        job_id = self.store.submit(
            tenant=body.get("tenant"),
            machines=body.get("machines"),
            pairs=pairs,
            config=config_from_request(body.get("config")),
            bands=body.get("bands"),
            seed=int(body.get("seed", 0)),
            max_shard_retries=int(body.get("max_shard_retries", 2)),
        )
        return {"job_id": job_id}

    def job_result_json(self, job_id):
        return self.store.job_report(job_id).to_dict()


def _make_handler(service):
    """A request-handler class closed over one :class:`FaseService`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "fase-service"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # the job store journal is the audit trail, not stderr

        # -- plumbing -------------------------------------------------

        def _send_json(self, payload, status=200):
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error(self, message, status):
            self._send_json({"error": message}, status=status)

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
            except ValueError as exc:
                raise ServiceError(f"request body is not valid JSON: {exc}") from exc
            if not isinstance(body, dict):
                raise ServiceError("request body must be a JSON object")
            return body

        def _route(self):
            parts = [part for part in self.path.split("?")[0].split("/") if part]
            return parts

        # -- verbs ----------------------------------------------------

        def do_GET(self):
            parts = self._route()
            try:
                if parts == ["jobs"]:
                    return self._send_json(
                        {
                            "jobs": [
                                service.store.job_status(job_id)
                                for job_id in service.store.job_ids()
                            ]
                        }
                    )
                if len(parts) == 2 and parts[0] == "jobs":
                    return self._send_json(service.store.job_status(parts[1]))
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                    return self._send_json(service.job_result_json(parts[1]))
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                    return self._send_events(parts[1])
                if len(parts) == 2 and parts[0] == "tenants":
                    return self._send_json(service.store.tenant_usage(parts[1]))
                self._send_error(f"no such resource: {self.path}", 404)
            except ServiceError as exc:
                self._send_error(str(exc), 404 if "unknown job" in str(exc) else 400)
            except ReproError as exc:
                self._send_error(str(exc), 400)
            except (ValueError, TypeError) as exc:
                self._send_error(f"malformed request: {exc}", 400)

        def do_POST(self):
            parts = self._route()
            try:
                if parts == ["jobs"]:
                    return self._send_json(service.submit_job(self._read_body()), status=201)
                if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                    state = service.store.cancel(parts[1])
                    return self._send_json({"job_id": parts[1], "state": state})
                self._send_error(f"no such resource: {self.path}", 404)
            except ServiceError as exc:
                self._send_error(str(exc), 404 if "unknown job" in str(exc) else 400)
            except ReproError as exc:
                self._send_error(str(exc), 400)
            except (ValueError, TypeError) as exc:
                # Malformed scalars in an otherwise-JSON body ("seed":
                # "abc", a non-list "pairs", ...) must answer 400, never
                # drop the connection with a server-side traceback.
                self._send_error(f"malformed request: {exc}", 400)

        def _send_events(self, job_id):
            path = service.store.events_path(job_id)
            try:
                data = path.read_bytes()
            except OSError:
                data = b""
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    return Handler
