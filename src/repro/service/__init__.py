"""repro.service: survey-as-a-service — a durable multi-tenant campaign
scheduler with an HTTP job API.

The ROADMAP's top open item composed: PR 8's crash-safe manifests, the
engine's shard purity and attributable retries, and the telemetry
layer's mergeable snapshots become a *long-lived service* that accepts
campaign jobs from many tenants and survives being SIGKILLed at any
point.

* :mod:`~repro.service.queue` — :class:`JobStore`, the durable job
  queue: every submit/claim/progress/release/skip/cancel/complete
  transition rides the same append-only, checksummed, fsync'd journal
  discipline as the survey manifest (:mod:`repro.journalutil`), with one
  per-job :class:`~repro.survey.SurveyManifest` holding shard results;
* :mod:`~repro.service.scheduler` — :class:`TenantPolicy` and
  :class:`FairShareScheduler`: weighted fair share, strict priorities
  with aging (starvation-freedom), concurrency quotas, and capture
  ceilings — every decision a pure, replayable function of the journal;
* :mod:`~repro.service.workers` — :class:`WorkerFleet`: claim-driven
  threads running shards through the engine's stall-watchdog machinery,
  heartbeating into the store so stale claims can be reaped and adopted;
* :mod:`~repro.service.api` — :class:`FaseService`, the stdlib-only
  ``ThreadingHTTPServer`` JSON API, including the worker-host
  claim/report endpoints and the live ``/events`` tail;
* :mod:`~repro.service.host` — :class:`WorkerHost`, a standalone
  worker process that claims shards over HTTP, runs them through the
  same stall-watchdog machinery, and reports results as JSON — the
  service stays the single store writer;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the typed
  Python client (including :meth:`~ServiceClient.stream_events`, a
  resumable live-tail generator).

Entry points: ``repro serve`` / ``worker`` / ``submit`` / ``jobs`` /
``watch`` / ``cancel`` on the command line, or :class:`FaseService` +
:class:`ServiceClient` in code::

    with FaseService(root, tenants=[TenantPolicy("alice", weight=2.0)]) as svc:
        host, port = svc.start()
        client = ServiceClient(f"http://{host}:{port}")
        job_id = client.submit("alice", machines=["corei7_desktop"])
        client.wait(job_id)
        report = client.result(job_id)
"""

from .api import FaseService, config_from_request
from .client import TERMINAL_STATES, ServiceClient
from .host import WorkerHost, run_worker_host
from .queue import (
    CANCELLED,
    CANCELLING,
    COMPLETED,
    QUEUED,
    RUNNING,
    STORE_FORMAT,
    ClaimedShard,
    JobSpec,
    JobStore,
)
from .scheduler import FairShareScheduler, TenantPolicy
from .workers import WorkerFleet

__all__ = [
    "CANCELLED",
    "CANCELLING",
    "COMPLETED",
    "ClaimedShard",
    "FairShareScheduler",
    "FaseService",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "STORE_FORMAT",
    "ServiceClient",
    "TERMINAL_STATES",
    "TenantPolicy",
    "WorkerFleet",
    "WorkerHost",
    "config_from_request",
    "run_worker_host",
]
