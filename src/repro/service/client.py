"""A typed, stdlib-only Python client for the campaign service API.

Thin by design: every method is one HTTP round trip mapping 1:1 onto
:mod:`repro.service.api`'s endpoints, errors surface as
:class:`~repro.errors.ServiceError` with the server's message, and
:meth:`ServiceClient.result` revives the full
:class:`~repro.survey.SurveyReport` through its JSON codec — the wire
never carries a pickle.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.parse
import urllib.request

from ..errors import ServiceError
from ..io import _config_to_dict
from ..survey.manifest import shard_result_to_dict
from ..survey.report import SurveyReport
from ..survey.shards import shard_spec_from_dict
from .queue import ClaimedShard

#: Job states a poll loop treats as final.
TERMINAL_STATES = ("completed", "cancelled")


def _quote(segment):
    """A value as one URL path segment (shard ids carry ``:``)."""
    return urllib.parse.quote(segment, safe="")


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8321")``."""

    def __init__(self, base_url, timeout_s=30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -----------------------------------------------------

    def _request(self, method, path, body=None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            error = ServiceError(f"{method} {path} failed ({exc.code}): {detail}")
            error.status = exc.code  # callers distinguish 4xx from outages
            raise error from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from exc

    def _json(self, method, path, body=None):
        return json.loads(self._request(method, path, body))

    # -- the API ------------------------------------------------------

    def submit(
        self,
        tenant,
        machines=None,
        pairs=None,
        config=None,
        bands=None,
        seed=0,
        max_shard_retries=2,
    ):
        """Submit one campaign; returns its job id.

        ``config`` may be a :class:`~repro.core.FaseConfig` (serialized
        for the wire) or a plain dict of config fields; ``pairs`` are
        micro-op name pairs like ``[("LDM", "LDL1")]``.
        """
        if config is not None and not isinstance(config, dict):
            config = _config_to_dict(config)
        body = {
            "tenant": tenant,
            "machines": list(machines) if machines else None,
            "pairs": [list(pair) for pair in pairs] if pairs else None,
            "config": config,
            "bands": bands,
            "seed": seed,
            "max_shard_retries": max_shard_retries,
        }
        return self._json("POST", "/jobs", body)["job_id"]

    def jobs(self):
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id):
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id):
        """The job's aggregated report, revived as a :class:`SurveyReport`."""
        return SurveyReport.from_json(self._request("GET", f"/jobs/{job_id}/result"))

    def cancel(self, job_id):
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def tenant(self, tenant):
        return self._json("GET", f"/tenants/{tenant}")

    def events(self, job_id, offset=0):
        """The job's event snapshot from ``offset``, parsed.

        The server only serves *complete* lines (a torn tail is
        withheld, not mangled); unparseable interior lines are skipped.
        """
        raw = self._request("GET", f"/jobs/{job_id}/events?offset={int(offset)}")
        records = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    def stream_events(self, job_id, offset=0, reconnects=3):
        """Live-tail a job's events: yields each event dict as it lands.

        A generator over the chunked ``?follow=1`` stream. Keepalive
        envelopes are consumed internally; the generator ends when the
        job reaches a terminal state (its return value is that state,
        e.g. ``"completed"``). A dropped connection reconnects from the
        last seen byte offset — no events replayed, none lost — up to
        ``reconnects`` consecutive failures before raising.
        """
        pos = int(offset)
        failures = 0
        while True:
            url = f"{self.base_url}/jobs/{job_id}/events?offset={pos}&follow=1"
            request = urllib.request.Request(
                url, headers={"Accept": "application/x-ndjson"}
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                    for raw in response:
                        if not raw.strip():
                            continue
                        try:
                            envelope = json.loads(raw)
                        except ValueError:
                            continue
                        failures = 0
                        pos = int(envelope.get("offset", pos))
                        if "end" in envelope:
                            return envelope["end"]
                        event = envelope.get("event")
                        if event is not None:
                            yield event
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", "replace")
                try:
                    detail = json.loads(detail).get("error", detail)
                except ValueError:
                    pass
                raise ServiceError(
                    f"GET /jobs/{job_id}/events failed ({exc.code}): {detail}"
                ) from exc
            except (urllib.error.URLError, OSError, http.client.HTTPException) as exc:
                failures += 1
                if failures > reconnects:
                    raise ServiceError(
                        f"event stream for {job_id!r} failed: {exc}"
                    ) from exc
                time.sleep(0.2)
                continue
            # The server ended the stream without a terminal marker
            # (service shutdown mid-tail): resume from the last offset.
            failures += 1
            if failures > reconnects:
                raise ServiceError(
                    f"event stream for {job_id!r} ended before the job did"
                )
            time.sleep(0.2)

    # -- the worker-host wire (used by repro.service.host) ------------

    def claim(self, worker):
        """Claim one funded shard; ``None`` when no work is available.

        The revived :class:`~repro.service.queue.ClaimedShard` carries a
        real :class:`~repro.survey.shards.ShardSpec` — host-local fields
        (heartbeat path, checkpoint dir) are unset; the host fills in
        its own.
        """
        payload = self._json("POST", "/claims", {"worker": worker})
        claim = payload.get("claim")
        if claim is None:
            return None
        return ClaimedShard(
            job_id=claim["job_id"],
            tenant=claim["tenant"],
            spec=shard_spec_from_dict(claim["spec"]),
            max_shard_retries=int(claim["max_shard_retries"]),
        )

    def report_result(self, job_id, shard_id, result, worker, elapsed_s=None):
        """Report a finished shard; the result travels as JSON."""
        if not isinstance(result, dict):
            result = shard_result_to_dict(result)
        body = {"worker": worker, "result": result, "elapsed_s": elapsed_s}
        return self._json(
            "POST", f"/jobs/{job_id}/shards/{_quote(shard_id)}/result", body
        )

    def report_failure(self, job_id, shard_id, kind, detail, worker):
        body = {"worker": worker, "kind": kind, "detail": detail}
        return self._json(
            "POST", f"/jobs/{job_id}/shards/{_quote(shard_id)}/fail", body
        )

    def release(self, job_id, shard_id, worker, detail):
        body = {"worker": worker, "detail": detail}
        return self._json(
            "POST", f"/jobs/{job_id}/shards/{_quote(shard_id)}/release", body
        )

    def heartbeat(self, worker):
        return self._json("PUT", f"/workers/{_quote(worker)}/heartbeat")

    def workers(self):
        """Per-worker lifecycle counters and liveness, fleet and hosts."""
        return self._json("GET", "/workers")["workers"]

    def wait(self, job_id, timeout_s=60.0, poll_s=0.1):
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServiceError` on deadline — a service that lost
        its fleet should fail the caller, not hang it.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id!r} still {status['state']!r} after {timeout_s:g}s"
                )
            time.sleep(poll_s)
