"""A typed, stdlib-only Python client for the campaign service API.

Thin by design: every method is one HTTP round trip mapping 1:1 onto
:mod:`repro.service.api`'s endpoints, errors surface as
:class:`~repro.errors.ServiceError` with the server's message, and
:meth:`ServiceClient.result` revives the full
:class:`~repro.survey.SurveyReport` through its JSON codec — the wire
never carries a pickle.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..errors import ServiceError
from ..io import _config_to_dict
from ..survey.report import SurveyReport

#: Job states a poll loop treats as final.
TERMINAL_STATES = ("completed", "cancelled")


class ServiceClient:
    """One service endpoint, e.g. ``ServiceClient("http://127.0.0.1:8321")``."""

    def __init__(self, base_url, timeout_s=30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- plumbing -----------------------------------------------------

    def _request(self, method, path, body=None):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(f"{method} {path} failed ({exc.code}): {detail}") from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from exc

    def _json(self, method, path, body=None):
        return json.loads(self._request(method, path, body))

    # -- the API ------------------------------------------------------

    def submit(
        self,
        tenant,
        machines=None,
        pairs=None,
        config=None,
        bands=None,
        seed=0,
        max_shard_retries=2,
    ):
        """Submit one campaign; returns its job id.

        ``config`` may be a :class:`~repro.core.FaseConfig` (serialized
        for the wire) or a plain dict of config fields; ``pairs`` are
        micro-op name pairs like ``[("LDM", "LDL1")]``.
        """
        if config is not None and not isinstance(config, dict):
            config = _config_to_dict(config)
        body = {
            "tenant": tenant,
            "machines": list(machines) if machines else None,
            "pairs": [list(pair) for pair in pairs] if pairs else None,
            "config": config,
            "bands": bands,
            "seed": seed,
            "max_shard_retries": max_shard_retries,
        }
        return self._json("POST", "/jobs", body)["job_id"]

    def jobs(self):
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id):
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id):
        """The job's aggregated report, revived as a :class:`SurveyReport`."""
        return SurveyReport.from_json(self._request("GET", f"/jobs/{job_id}/result"))

    def cancel(self, job_id):
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def tenant(self, tenant):
        return self._json("GET", f"/tenants/{tenant}")

    def events(self, job_id):
        """The job's telemetry JSONL, parsed (a torn tail is skipped)."""
        raw = self._request("GET", f"/jobs/{job_id}/events")
        records = []
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
        return records

    def wait(self, job_id, timeout_s=60.0, poll_s=0.1):
        """Poll until the job is terminal; returns its final status.

        Raises :class:`ServiceError` on deadline — a service that lost
        its fleet should fail the caller, not hang it.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.job(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id!r} still {status['state']!r} after {timeout_s:g}s"
                )
            time.sleep(poll_s)
