"""The worker fleet: threads draining shard claims through `run_shard`.

Each worker loops claim → run → report. The *shard* is the unit of
work — the same pure ``(seed, shard_id)`` function the survey engine
fans out — so the fleet inherits every safety property the survey tiers
already prove: re-running a shard after a crash, a reaped claim, or a
duplicated adoption is always byte-identical.

Failure handling mirrors :mod:`repro.survey.engine`:

* without a ``shard_timeout_s`` the shard runs inline on the worker
  thread; exceptions are charged ``shard-error`` against the job's
  retry budget;
* with one, the shard runs in a fresh single-worker ``fork`` pool
  bounded by the engine's own heartbeat-extended stall watchdog
  (:func:`~repro.survey.engine._await_or_kill`): a hung worker process
  is killed and charged ``shard-stalled``, a dead one ``worker-death``
  — the same ledger vocabulary as a standalone survey.

Workers heartbeat into the store every loop, so
:meth:`~repro.service.queue.JobStore.reap_stale_claims` can release
the claims of a wedged worker for adoption by its peers.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

from ..errors import ServiceError
from ..runner import journal_dirname
from ..survey.engine import _await_or_kill, _ShardStalled, _stall_detail
from ..survey.report import SHARD_ERROR, SHARD_STALLED, WORKER_DEATH
from ..survey.shards import run_shard


class WorkerFleet:
    """A pool of claim-driven worker threads over one :class:`JobStore`.

    ``shard_fn`` replaces :func:`~repro.survey.shards.run_shard` in
    tests (module-level, picklable). ``reap_after_s`` arms the stale-
    claim reaper: the fleet releases claims whose owner has not
    heartbeated within that window, sweeping at most once per
    ``reap_after_s / 2`` across all workers.
    """

    def __init__(
        self,
        store,
        workers=2,
        shard_fn=None,
        shard_timeout_s=None,
        poll_interval_s=0.05,
        reap_after_s=None,
        name_prefix="worker",
    ):
        if workers < 1:
            raise ServiceError("the fleet needs at least one worker")
        self.store = store
        self.n_workers = workers
        self.shard_fn = shard_fn or run_shard
        self.shard_timeout_s = shard_timeout_s
        self.poll_interval_s = poll_interval_s
        self.reap_after_s = reap_after_s
        self.name_prefix = name_prefix
        self._threads = []
        self._stop = threading.Event()
        # Stale-claim reaping is fleet-wide work, not per-worker work:
        # one reap per reap_after_s/2 window, whichever worker gets
        # there first, instead of every worker taking the store lock on
        # every poll iteration (O(workers x poll rate) contention).
        self._reap_lock = threading.Lock()
        self._next_reap_at = 0.0

    # -- lifecycle ----------------------------------------------------

    def start(self):
        if self._threads:
            raise ServiceError("the fleet is already running")
        self._stop.clear()
        for index in range(self.n_workers):
            name = f"{self.name_prefix}-{index}"
            thread = threading.Thread(target=self._run, args=(name,), name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout_s=30.0):
        """Cooperative shutdown: workers finish their in-flight shard."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    def drain(self, timeout_s=60.0):
        """Block until every job is terminal (or the deadline passes).

        A store with no jobs at all is *already* drained: an idle but
        healthy service answers ``True`` immediately — draining promises
        "no unfinished work", not "work happened". (``all_settled`` is
        vacuously true for an empty store, and that is the semantics a
        shutdown path wants: nothing in flight, safe to stop.)
        """
        deadline = time.monotonic() + timeout_s
        while True:
            if self.store.all_settled():
                return True
            if time.monotonic() >= deadline:
                return self.store.all_settled()
            time.sleep(self.poll_interval_s)

    # -- the worker loop ----------------------------------------------

    def _maybe_reap(self):
        """At most one fleet-wide reap per ``reap_after_s / 2`` window."""
        if self.reap_after_s is None:
            return
        now = time.monotonic()
        with self._reap_lock:
            if now < self._next_reap_at:
                return
            self._next_reap_at = now + self.reap_after_s / 2.0
        self.store.reap_stale_claims(self.reap_after_s)

    def _run(self, name):
        while not self._stop.is_set():
            self.store.worker_heartbeat(name)
            self._maybe_reap()
            claimed = self.store.claim(name)
            if claimed is None:
                self._stop.wait(self.poll_interval_s)
                continue
            self._run_claim(name, claimed)

    def shard_heartbeat_path(self, claimed):
        """The stall-watchdog heartbeat file for one claim.

        Namespaced by **job id and shard id**: two jobs covering the
        same (machine, pair, band) plan identical shard ids, and a
        shared per-shard-id file would let one job's beats extend the
        other job's hung shard past its stall deadline forever.
        """
        name = journal_dirname(f"{claimed.job_id}:{claimed.spec.shard_id}")
        return self.store.root / "workers" / f"{name}.shard.hb"

    def _run_claim(self, name, claimed):
        spec = claimed.spec
        if self.shard_timeout_s is not None:
            spec = replace(spec, heartbeat_path=str(self.shard_heartbeat_path(claimed)))
        try:
            if self.shard_timeout_s is None:
                result = self.shard_fn(spec)
            else:
                result = self._run_watched(spec)
        except _ShardStalled:
            self.store.fail_shard(
                claimed.job_id,
                spec.shard_id,
                SHARD_STALLED,
                _stall_detail(self.shard_timeout_s),
                name,
            )
        except BrokenProcessPool:
            self.store.fail_shard(
                claimed.job_id,
                spec.shard_id,
                WORKER_DEATH,
                "worker process died running this shard",
                name,
            )
        except Exception as exc:  # noqa: BLE001 - every shard error is ledgered
            self.store.fail_shard(claimed.job_id, spec.shard_id, SHARD_ERROR, str(exc), name)
        else:
            self.store.complete_shard(claimed.job_id, spec.shard_id, result, name)

    def _run_watched(self, spec):
        """One shard in a killable single-worker pool under the watchdog."""
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            future = pool.submit(self.shard_fn, spec)
            return _await_or_kill(future, spec, pool, self.shard_timeout_s)
