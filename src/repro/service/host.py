"""Standalone worker hosts: remote processes draining service shards.

A :class:`WorkerHost` is the out-of-process counterpart of one
:class:`~repro.service.workers.WorkerFleet` thread. It connects to a
running :class:`~repro.service.api.FaseService` over plain HTTP and
loops claim → run → report:

* **claim** — ``POST /claims`` hands back one funded
  :class:`~repro.survey.shards.ShardSpec` in wire (JSON) form; the
  host revives it and fills in its own local plumbing (a stall-watchdog
  heartbeat file under its scratch dir — job-namespaced, the same
  discipline as the in-process fleet);
* **run** — the shard executes through the *same* machinery as
  everywhere else: :func:`~repro.survey.shards.run_shard` inline, or in
  a killable single-worker ``fork`` pool under the engine's
  heartbeat-extended stall watchdog when ``shard_timeout_s`` is armed;
* **report** — the result rides back as JSON
  (``POST /jobs/{id}/shards/{shard}/result``), failures carry the
  engine's ledger vocabulary (``shard-error`` / ``shard-stalled`` /
  ``worker-death``), and a background thread PUTs heartbeats so the
  service can reap the claims of a host that dies mid-shard.

The service process stays the **single store writer**: a host never
touches the journal, so every crash-safety invariant the store proves
in-process carries over unchanged to a fleet of remote hosts. Shard
purity does the rest — a host SIGKILLed mid-shard loses nothing, its
claim is reaped, another host adopts the shard, and the re-run is
byte-identical.

Entry points: ``fase worker --connect URL`` on the command line, or
:func:`run_worker_host` / :class:`WorkerHost` in code.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import socket
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from pathlib import Path

from ..errors import ServiceError
from ..runner import journal_dirname
from ..survey.engine import _await_or_kill, _ShardStalled, _stall_detail
from ..survey.report import SHARD_ERROR, SHARD_STALLED, WORKER_DEATH
from ..survey.shards import run_shard
from .client import ServiceClient


def default_host_name():
    """A host identity unique per (machine, process): claims key on it."""
    return f"host-{socket.gethostname()}-{os.getpid()}"


class WorkerHost:
    """One worker-host process draining shards from a remote service.

    ``shard_fn`` swaps the shard body in tests (module-level,
    picklable). ``shard_timeout_s`` arms the stall watchdog (shards
    then run in killable single-worker pools). ``idle_exit_s`` makes
    the host exit after that long with no claimable work — the natural
    shutdown for batch campaigns; ``max_shards`` bounds the host's
    lifetime by work instead. ``workdir`` holds the host's scratch
    (heartbeat files); a temp dir is created (and removed) when unset.
    """

    def __init__(
        self,
        base_url,
        name=None,
        workdir=None,
        shard_fn=None,
        shard_timeout_s=None,
        poll_interval_s=0.25,
        heartbeat_interval_s=1.0,
        idle_exit_s=None,
        max_shards=None,
        timeout_s=30.0,
        max_consecutive_errors=30,
        verbose=False,
    ):
        self.client = ServiceClient(base_url, timeout_s=timeout_s)
        self.name = name or default_host_name()
        self.workdir = None if workdir is None else Path(workdir)
        self.shard_fn = shard_fn or run_shard
        self.shard_timeout_s = shard_timeout_s
        self.poll_interval_s = poll_interval_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.idle_exit_s = idle_exit_s
        self.max_shards = max_shards
        self.max_consecutive_errors = max_consecutive_errors
        self.verbose = verbose
        self.completed = 0
        self.failed = 0
        self._stop = threading.Event()

    # -- lifecycle ----------------------------------------------------

    def stop(self):
        """Cooperative: the in-flight shard finishes, then the loop exits."""
        self._stop.set()

    def run(self):
        """The host's whole life; returns its counters when it exits.

        Transient service errors (a restarting hub, a network blip) are
        retried with the poll cadence; ``max_consecutive_errors`` in a
        row raise — a host that can never reach its service should die
        loudly, not spin forever.
        """
        self._stop.clear()
        own_workdir = self.workdir is None
        if own_workdir:
            self.workdir = Path(tempfile.mkdtemp(prefix="fase-host-"))
        else:
            self.workdir.mkdir(parents=True, exist_ok=True)
        beats = threading.Thread(
            target=self._beat_loop, name=f"{self.name}-hb", daemon=True
        )
        beats.start()
        idle_since = time.monotonic()
        errors = 0
        try:
            while not self._stop.is_set():
                if (
                    self.max_shards is not None
                    and self.completed + self.failed >= self.max_shards
                ):
                    break
                try:
                    claimed = self.client.claim(self.name)
                except ServiceError as exc:
                    errors += 1
                    if errors > self.max_consecutive_errors:
                        raise ServiceError(
                            f"host {self.name!r} gave up after "
                            f"{errors} consecutive service errors: {exc}"
                        ) from exc
                    self._stop.wait(self.poll_interval_s)
                    continue
                errors = 0
                if claimed is None:
                    if (
                        self.idle_exit_s is not None
                        and time.monotonic() - idle_since >= self.idle_exit_s
                    ):
                        break
                    self._stop.wait(self.poll_interval_s)
                    continue
                self._run_claim(claimed)
                idle_since = time.monotonic()
        finally:
            self._stop.set()
            beats.join(timeout=5.0)
            if own_workdir:
                shutil.rmtree(self.workdir, ignore_errors=True)
                self.workdir = None
        return {"host": self.name, "completed": self.completed, "failed": self.failed}

    def _beat_loop(self):
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                self.client.heartbeat(self.name)
            except ServiceError:
                pass  # liveness is advisory; the claim loop owns give-up

    # -- one claim ----------------------------------------------------

    def _localize(self, claimed):
        """Fill in this host's local plumbing on a wire-revived spec."""
        if self.shard_timeout_s is None:
            return claimed.spec
        name = journal_dirname(f"{claimed.job_id}:{claimed.spec.shard_id}")
        return replace(
            claimed.spec, heartbeat_path=str(self.workdir / f"{name}.shard.hb")
        )

    def _run_claim(self, claimed):
        spec = self._localize(claimed)
        started = time.monotonic()
        try:
            if self.shard_timeout_s is None:
                result = self.shard_fn(spec)
            else:
                result = self._run_watched(spec)
        except _ShardStalled:
            self._report_failure(
                claimed, SHARD_STALLED, _stall_detail(self.shard_timeout_s)
            )
        except BrokenProcessPool:
            self._report_failure(
                claimed, WORKER_DEATH, "worker process died running this shard"
            )
        except Exception as exc:  # noqa: BLE001 - every shard error is ledgered
            self._report_failure(claimed, SHARD_ERROR, str(exc))
        else:
            self._report_result(claimed, result, time.monotonic() - started)

    def _run_watched(self, spec):
        """One shard in a killable single-worker pool under the watchdog."""
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            future = pool.submit(self.shard_fn, spec)
            return _await_or_kill(future, spec, pool, self.shard_timeout_s)

    # -- reporting ----------------------------------------------------

    def _report_result(self, claimed, result, elapsed_s):
        ok = self._report(
            lambda: self.client.report_result(
                claimed.job_id,
                claimed.spec.shard_id,
                result,
                self.name,
                elapsed_s=elapsed_s,
            )
        )
        if ok:
            self.completed += 1
            self._say(
                f"{claimed.job_id} {claimed.spec.shard_id}: completed "
                f"in {elapsed_s:.2f}s"
            )

    def _report_failure(self, claimed, kind, detail):
        ok = self._report(
            lambda: self.client.report_failure(
                claimed.job_id, claimed.spec.shard_id, kind, detail, self.name
            )
        )
        if ok:
            self.failed += 1
            self._say(f"{claimed.job_id} {claimed.spec.shard_id}: {kind} ({detail})")

    def _report(self, send, attempts=3):
        """Deliver one report, with retries; ``False`` when undeliverable.

        A report the service never hears is not data loss: the claim
        goes silent, the reaper releases it, and the re-run is
        byte-identical (shard purity). The host just moves on.
        """
        for attempt in range(attempts):
            try:
                send()
                return True
            except ServiceError as exc:
                status = getattr(exc, "status", None)
                if status is not None and 400 <= status < 500:
                    # A 4xx is the service *rejecting* the report (the
                    # job is gone, the payload is malformed) — final,
                    # not retryable.
                    self._say(f"report rejected: {exc}")
                    return False
                if attempt + 1 < attempts:
                    self._stop.wait(self.poll_interval_s)
        self._say(f"report undeliverable after {attempts} attempts; moving on")
        return False

    def _say(self, message):
        if self.verbose:
            print(f"[{self.name}] {message}", flush=True)


def run_worker_host(base_url, **kwargs):
    """Run one :class:`WorkerHost` to completion; returns its counters."""
    return WorkerHost(base_url, **kwargs).run()
