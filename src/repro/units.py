"""Unit conversions and formatting helpers.

The spectrum-analyzer side of this library works in dBm (decibels relative to
one milliwatt), matching every figure in the paper. The synthesis side works
in linear power (milliwatts) because the FASE heuristic (Eq. 2) is a ratio of
*powers*, not of decibel values. This module is the single place where the
two representations meet.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import UnitsError

#: Smallest linear power we will convert to dB, to avoid log(0). Corresponds
#: to -400 dBm, far below any physically meaningful floor in this library.
_POWER_FLOOR_MILLIWATTS = 1e-40

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def dbm_to_milliwatts(dbm):
    """Convert dBm to linear power in milliwatts.

    Accepts scalars or numpy arrays and returns the same shape.
    """
    return np.power(10.0, np.asarray(dbm, dtype=float) / 10.0)


def milliwatts_to_dbm(milliwatts):
    """Convert linear power in milliwatts to dBm.

    Values at or below zero are clamped to a floor (-400 dBm) rather than
    producing ``-inf``, because averaged spectra can contain exact zeros in
    bins no emitter reaches.
    """
    power = np.asarray(milliwatts, dtype=float)
    if np.any(power < 0):
        raise UnitsError("power in milliwatts must be non-negative")
    clamped = np.maximum(power, _POWER_FLOOR_MILLIWATTS)
    return 10.0 * np.log10(clamped)


def db_ratio(numerator, denominator):
    """Express the power ratio ``numerator / denominator`` in decibels."""
    if denominator <= 0:
        raise UnitsError("denominator power must be positive")
    if numerator < 0:
        raise UnitsError("numerator power must be non-negative")
    return 10.0 * math.log10(max(numerator, _POWER_FLOOR_MILLIWATTS) / denominator)


def volts_to_dbm(volts_rms, impedance_ohms=50.0):
    """Convert an RMS voltage across an impedance to dBm.

    Spectrum analyzers are 50-ohm instruments; the antenna model produces
    voltages which the receiver converts to dBm through this function.
    """
    if impedance_ohms <= 0:
        raise UnitsError("impedance must be positive")
    v = np.asarray(volts_rms, dtype=float)
    power_mw = (v * v) / impedance_ohms * 1e3
    return milliwatts_to_dbm(power_mw)


def dbm_to_volts(dbm, impedance_ohms=50.0):
    """Convert dBm to the RMS voltage across an impedance."""
    if impedance_ohms <= 0:
        raise UnitsError("impedance must be positive")
    power_w = dbm_to_milliwatts(dbm) * 1e-3
    return np.sqrt(power_w * impedance_ohms)


def format_frequency(hertz):
    """Render a frequency with an appropriate SI prefix, e.g. ``315.0 kHz``.

    Used by reports so detected carriers read like the paper's prose.
    """
    hertz = float(hertz)
    magnitude = abs(hertz)
    if magnitude >= GIGA:
        return f"{hertz / GIGA:.4g} GHz"
    if magnitude >= MEGA:
        return f"{hertz / MEGA:.4g} MHz"
    if magnitude >= KILO:
        return f"{hertz / KILO:.4g} kHz"
    return f"{hertz:.4g} Hz"


def parse_frequency(text):
    """Parse a frequency string such as ``"43.3 kHz"`` or ``"1.0235MHz"``.

    The inverse of :func:`format_frequency` for round-tripping configuration
    files and reports.
    """
    stripped = text.strip()
    suffixes = (
        ("ghz", GIGA),
        ("mhz", MEGA),
        ("khz", KILO),
        ("hz", 1.0),
    )
    lowered = stripped.lower()
    for suffix, scale in suffixes:
        if lowered.endswith(suffix):
            number = stripped[: len(stripped) - len(suffix)].strip()
            try:
                return float(number) * scale
            except ValueError as exc:
                raise UnitsError(f"cannot parse frequency {text!r}") from exc
    try:
        return float(stripped)
    except ValueError as exc:
        raise UnitsError(f"cannot parse frequency {text!r}") from exc
