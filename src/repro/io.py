"""Persistence for campaign results: record once, analyze many times.

A real FASE lab records spectra over hours and re-analyzes them offline;
this module round-trips :class:`~repro.core.campaign.CampaignResult`
bundles through a single ``.npz`` file (numpy's zipped archive), keeping
the traces, the achieved falts, the activity metadata, and the campaign
configuration.
"""

from __future__ import annotations

import json

import numpy as np

from .core.campaign import CampaignMeasurement, CampaignResult
from .core.config import FaseConfig
from .errors import CampaignError
from .faults.screening import CaptureQuality
from .spectrum.grid import FrequencyGrid
from .spectrum.trace import SpectrumTrace
from .uarch.activity import AlternationActivity

#: Format marker for forward compatibility.
_FORMAT = "fase-campaign-v1"


def _config_to_dict(config):
    return {
        "span_low": config.span_low,
        "span_high": config.span_high,
        "fres": config.fres,
        "falt1": config.falt1,
        "f_delta": config.f_delta,
        "n_alternations": config.n_alternations,
        "n_averages": config.n_averages,
        "harmonics": list(config.harmonics),
        "name": config.name,
        "n_workers": config.n_workers,
        "max_capture_retries": config.max_capture_retries,
    }


def _config_from_dict(data):
    data = dict(data)
    data["harmonics"] = tuple(data["harmonics"])
    # Archives written before these fields existed.
    data.setdefault("n_workers", 1)
    data.setdefault("max_capture_retries", 2)
    return FaseConfig(**data)


def _activity_to_dict(activity):
    return {
        "falt": activity.falt,
        "levels_x": activity.levels_x,
        "levels_y": activity.levels_y,
        "duty_cycle": activity.duty_cycle,
        "jitter_fraction": activity.jitter_fraction,
        "label": activity.label,
    }


def _activity_from_dict(data):
    return AlternationActivity(**data)


def _restore_grid(grid_data, config, path):
    """Rebuild the capture grid, keeping it consistent with the config.

    Grid parameters pass through JSON floats and were historically
    reconstructed independently of the config, so a reloaded campaign's
    ``grid`` could fail ``==`` against ``config.grid()`` and downstream
    grid-keyed caches would miss. The config-derived grid is canonical:
    float round-trip noise (under half a bin of ``start`` drift, a ppm of
    ``resolution``) is repaired to it, while a materially different grid
    means the archive is inconsistent and is rejected.
    """
    stored = FrequencyGrid(**grid_data)
    expected = config.grid()
    if stored != expected:
        repairable = (
            stored.n_bins == expected.n_bins
            and abs(stored.start - expected.start) <= 0.5 * expected.resolution
            and abs(stored.resolution - expected.resolution) <= 1e-6 * expected.resolution
        )
        if not repairable:
            raise CampaignError(
                f"{path!r}: stored grid {stored!r} disagrees with the campaign "
                f"config's grid {expected!r}"
            )
    return expected


def save_campaign(result, path):
    """Write a campaign result to ``path`` (a ``.npz`` archive)."""
    if not result.measurements:
        raise CampaignError("refusing to save an empty campaign result")
    grid = result.grid
    metadata = {
        "format": _FORMAT,
        "machine_name": result.machine_name,
        "activity_label": result.activity_label,
        "config": _config_to_dict(result.config),
        "grid": {"start": grid.start, "stop": grid.stop, "resolution": grid.resolution},
        "falts": list(result.falts),
        "activities": [_activity_to_dict(m.activity) for m in result.measurements],
        "trace_labels": [m.trace.label for m in result.measurements],
        # Degraded-mode provenance: which captures the screen flagged and
        # why, so offline re-analysis excludes the same falt indices.
        "flagged": [bool(m.flagged) for m in result.measurements],
        "quality_reasons": [
            list(m.quality.reasons) if m.quality is not None else None
            for m in result.measurements
        ],
    }
    arrays = {
        f"trace_{i}": measurement.trace.power_mw
        for i, measurement in enumerate(result.measurements)
    }
    np.savez_compressed(path, metadata=json.dumps(metadata), **arrays)
    return path


def load_campaign(path):
    """Read a campaign result previously written by :func:`save_campaign`."""
    with np.load(path, allow_pickle=False) as archive:
        try:
            metadata = json.loads(str(archive["metadata"]))
        except KeyError as exc:
            raise CampaignError(f"{path!r} is not a FASE campaign archive") from exc
        if metadata.get("format") != _FORMAT:
            raise CampaignError(
                f"unsupported campaign format {metadata.get('format')!r}"
            )
        config = _config_from_dict(metadata["config"])
        grid = _restore_grid(metadata["grid"], config, path)
        result = CampaignResult(
            config=config,
            machine_name=metadata["machine_name"],
            activity_label=metadata["activity_label"],
        )
        n_measurements = len(metadata["falts"])
        flagged = metadata.get("flagged") or [False] * n_measurements
        reasons = metadata.get("quality_reasons") or [None] * n_measurements
        for i, (falt, activity_data, label) in enumerate(
            zip(metadata["falts"], metadata["activities"], metadata["trace_labels"])
        ):
            power = archive[f"trace_{i}"]
            trace = SpectrumTrace(grid, power, label=label)
            quality = None
            if reasons[i] is not None:
                quality = CaptureQuality(ok=not flagged[i], reasons=tuple(reasons[i]))
            result.measurements.append(
                CampaignMeasurement(
                    falt=float(falt),
                    activity=_activity_from_dict(activity_data),
                    trace=trace,
                    flagged=bool(flagged[i]),
                    quality=quality,
                )
            )
    return result.validate()
