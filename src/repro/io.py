"""Persistence for campaign results: record once, analyze many times.

A real FASE lab records spectra over hours and re-analyzes them offline;
this module round-trips :class:`~repro.core.campaign.CampaignResult`
bundles through a single ``.npz`` file (numpy's zipped archive), keeping
the traces, the achieved falts, the activity metadata, and the campaign
configuration.

Writes are crash-safe and deterministic: :func:`save_campaign` builds the
archive with fixed zip timestamps (identical campaigns produce identical
bytes — what the resume tests compare), writes it to a sibling temporary
file, fsyncs, and ``os.replace``\\ s it over the final name, so a kill
mid-write leaves either the old archive or the new one, never a
truncated hybrid. :func:`load_campaign` raises
:class:`~repro.errors.CampaignArchiveError` on a damaged archive and can
recover the campaign from its :class:`~repro.runner.CampaignJournal`
checkpoints instead.

Large archives have a zero-copy read path. ``save_campaign(...,
compress=False)`` stores the trace arrays uncompressed (``ZIP_STORED``),
which keeps the archive ``np.load``-compatible *and* lets
``load_campaign(..., lazy=True)`` hand each trace back as a read-only
``np.memmap`` over the archive bytes: opening a full-span campaign is
then O(metadata), and trace bytes are paged in only when a measurement's
``power_mw`` is actually touched (compressed archives fall back to
per-member decompress-on-first-touch — still lazy, not zero-copy).
"""

from __future__ import annotations

import io as _io
import json
import os
import zipfile
import zlib

import numpy as np

from .core.campaign import CampaignMeasurement, CampaignResult
from .core.config import FaseConfig
from .errors import CampaignArchiveError, CampaignError
from .faults.injectors import FaultEvent
from .faults.robustness import DetectionDelta, RobustnessReport
from .faults.screening import CaptureQuality
from .spectrum.grid import FrequencyGrid
from .spectrum.trace import SpectrumTrace
from .uarch.activity import AlternationActivity

#: Format marker for forward compatibility.
_FORMAT = "fase-campaign-v1"


def _config_to_dict(config):
    return {
        "span_low": config.span_low,
        "span_high": config.span_high,
        "fres": config.fres,
        "falt1": config.falt1,
        "f_delta": config.f_delta,
        "n_alternations": config.n_alternations,
        "n_averages": config.n_averages,
        "harmonics": list(config.harmonics),
        "name": config.name,
        "n_workers": config.n_workers,
        "max_capture_retries": config.max_capture_retries,
        "capture_timeout_s": config.capture_timeout_s,
        "retry_backoff_s": config.retry_backoff_s,
    }


def _config_from_dict(data):
    data = dict(data)
    data["harmonics"] = tuple(data["harmonics"])
    # Archives written before these fields existed.
    data.setdefault("n_workers", 1)
    data.setdefault("max_capture_retries", 2)
    data.setdefault("capture_timeout_s", None)
    data.setdefault("retry_backoff_s", 0.5)
    return FaseConfig(**data)


def _activity_to_dict(activity):
    return {
        "falt": activity.falt,
        "levels_x": activity.levels_x,
        "levels_y": activity.levels_y,
        "duty_cycle": activity.duty_cycle,
        "jitter_fraction": activity.jitter_fraction,
        "label": activity.label,
    }


def _activity_from_dict(data):
    return AlternationActivity(**data)


def _robustness_to_dict(robustness):
    """JSON form of a :class:`~repro.faults.RobustnessReport` (or ``None``).

    The ledger is part of the campaign's provenance — ``cmd_analyze``
    prints it "for archives of degraded runs" — so it must survive the
    archive round-trip, not just journal recovery. Dict keys go through
    JSON as strings and are restored to ints on load.
    """
    if robustness is None:
        return None
    delta = robustness.detection_delta
    return {
        "plan_description": robustness.plan_description,
        "events": [
            {"fault": e.fault, "index": e.index, "attempt": e.attempt, "detail": e.detail}
            for e in robustness.events
        ],
        "retries": {str(index): extra for index, extra in robustness.retries.items()},
        "excluded": {str(index): list(reasons) for index, reasons in robustness.excluded.items()},
        "dropped": list(robustness.dropped),
        "detection_delta": None
        if delta is None
        else {
            "n_naive": delta.n_naive,
            "n_degraded": delta.n_degraded,
            "gained": list(delta.gained),
            "lost": list(delta.lost),
        },
    }


def _robustness_from_dict(data):
    if data is None:
        return None
    delta_data = data.get("detection_delta")
    delta = None
    if delta_data is not None:
        delta = DetectionDelta(
            n_naive=int(delta_data["n_naive"]),
            n_degraded=int(delta_data["n_degraded"]),
            gained=tuple(delta_data["gained"]),
            lost=tuple(delta_data["lost"]),
        )
    return RobustnessReport(
        plan_description=data["plan_description"],
        events=[
            FaultEvent(
                fault=e["fault"], index=int(e["index"]), attempt=int(e["attempt"]),
                detail=e["detail"],
            )
            for e in data.get("events", [])
        ],
        retries={int(index): int(extra) for index, extra in (data.get("retries") or {}).items()},
        excluded={
            int(index): tuple(reasons)
            for index, reasons in (data.get("excluded") or {}).items()
        },
        dropped=tuple(int(index) for index in data.get("dropped", ())),
        detection_delta=delta,
    )


def _restore_grid(grid_data, config, path):
    """Rebuild the capture grid, keeping it consistent with the config.

    Grid parameters pass through JSON floats and were historically
    reconstructed independently of the config, so a reloaded campaign's
    ``grid`` could fail ``==`` against ``config.grid()`` and downstream
    grid-keyed caches would miss. The config-derived grid is canonical:
    float round-trip noise (under half a bin of ``start`` drift, a ppm of
    ``resolution``) is repaired to it, while a materially different grid
    means the archive is inconsistent and is rejected.
    """
    stored = FrequencyGrid(**grid_data)
    expected = config.grid()
    if stored != expected:
        repairable = (
            stored.n_bins == expected.n_bins
            and abs(stored.start - expected.start) <= 0.5 * expected.resolution
            and abs(stored.resolution - expected.resolution) <= 1e-6 * expected.resolution
        )
        if not repairable:
            raise CampaignError(
                f"{path!r}: stored grid {stored!r} disagrees with the campaign "
                f"config's grid {expected!r}"
            )
    return expected


def _fsync_directory(directory):
    """Flush a directory's metadata (a rename) to disk where supported."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Fixed zip member timestamp (the DOS epoch) so identical campaigns
#: produce identical archive bytes — resume correctness is asserted by
#: byte-comparing archives, which real timestamps would defeat.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def _write_npz_deterministic(handle, arrays, compress=True):
    """Write an ``np.load``-compatible archive with fixed metadata.

    ``compress=False`` stores members uncompressed (``ZIP_STORED``) so
    the array bytes sit contiguously in the file and can be memory-mapped
    by :func:`mmap_npz_member`; compression defeats mmap.
    """
    compression = zipfile.ZIP_DEFLATED if compress else zipfile.ZIP_STORED
    with zipfile.ZipFile(handle, "w", compression=compression, allowZip64=True) as zf:
        for name, value in arrays.items():
            buffer = _io.BytesIO()
            np.lib.format.write_array(buffer, np.asanyarray(value), allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = compression
            info.external_attr = 0o600 << 16
            zf.writestr(info, buffer.getvalue())


def save_campaign(result, path, compress=True):
    """Write a campaign result to ``path`` (a ``.npz`` archive).

    Returns the real on-disk path as a :class:`pathlib.Path`: like
    ``np.savez``, a missing ``.npz`` suffix is appended, so the caller's
    ``path`` is not always the file that exists afterwards — use the
    return value.

    The write is crash-safe (temporary sibling file, fsync,
    ``os.replace``, directory fsync) and deterministic (fixed zip
    timestamps): a kill mid-save leaves the previous archive intact, and
    two saves of the same campaign are byte-identical. A failed write
    never leaves the temporary sibling behind.

    ``compress=False`` writes the traces uncompressed so
    ``load_campaign(..., lazy=True)`` can memory-map them — the right
    trade for full-span campaigns whose archives are re-analyzed often.
    """
    from pathlib import Path

    if not result.measurements:
        raise CampaignError("refusing to save an empty campaign result")
    grid = result.grid
    metadata = {
        "format": _FORMAT,
        "machine_name": result.machine_name,
        "activity_label": result.activity_label,
        "config": _config_to_dict(result.config),
        "grid": {"start": grid.start, "stop": grid.stop, "resolution": grid.resolution},
        "falts": list(result.falts),
        "activities": [_activity_to_dict(m.activity) for m in result.measurements],
        "trace_labels": [m.trace.label for m in result.measurements],
        # Degraded-mode provenance: which captures the screen flagged and
        # why, so offline re-analysis excludes the same falt indices.
        "flagged": [bool(m.flagged) for m in result.measurements],
        "quality_reasons": [
            list(m.quality.reasons) if m.quality is not None else None
            for m in result.measurements
        ],
        "robustness": _robustness_to_dict(result.robustness),
    }
    arrays = {"metadata": json.dumps(metadata)}
    for i, measurement in enumerate(result.measurements):
        arrays[f"trace_{i}"] = measurement.trace.power_mw
    real_path = os.fspath(path)
    if not real_path.endswith(".npz"):
        real_path += ".npz"
    tmp_path = real_path + ".tmp"
    try:
        with open(tmp_path, "wb") as handle:
            _write_npz_deterministic(handle, arrays, compress=compress)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, real_path)
    finally:
        # A write that died mid-way (ENOSPC, a raising serializer) must
        # not leave the sibling behind; after a successful os.replace the
        # tmp name no longer exists and this is a no-op.
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
    _fsync_directory(os.path.dirname(real_path))
    return Path(real_path)


#: Failure modes of reading a damaged zip/npy stream.
_ARCHIVE_READ_ERRORS = (zipfile.BadZipFile, OSError, ValueError, EOFError, zlib.error)


def mmap_npz_member(path, name):
    """A read-only ``np.memmap`` over one uncompressed ``.npz`` member.

    Returns ``None`` when the member is absent, compressed, Fortran-
    ordered, or otherwise not mappable — callers fall back to an ordinary
    read. This is the zero-copy half of the archive data plane: a
    ``ZIP_STORED`` member's ``.npy`` payload sits contiguously in the
    file, so after parsing the local zip header and the npy header the
    array bytes can be mapped straight from the page cache, shared
    between every process that opens the same archive.
    """
    member = name + ".npy"
    try:
        with open(path, "rb") as handle:
            with zipfile.ZipFile(handle) as zf:
                try:
                    info = zf.getinfo(member)
                except KeyError:
                    return None
                if info.compress_type != zipfile.ZIP_STORED:
                    return None
                handle.seek(info.header_offset)
                local = handle.read(30)
                if len(local) < 30 or local[:4] != b"PK\x03\x04":
                    return None
                # The local header's name/extra lengths can differ from
                # the central directory's; trust the local copy.
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(info.header_offset + 30 + name_len + extra_len)
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
                elif version == (2, 0):
                    shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                offset = handle.tell()
    except _ARCHIVE_READ_ERRORS:
        return None
    try:
        return np.memmap(path, dtype=dtype, mode="r", offset=offset, shape=shape)
    except (OSError, ValueError):
        return None


class _ArchiveTraceLoader:
    """On-demand reader for one archive's trace members.

    Shared by every :class:`LazySpectrumTrace` of one lazy load;
    ``loads`` counts materializations (the laziness tests pin it at zero
    until a trace is touched).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.loads = 0

    def load(self, member):
        self.loads += 1
        mapped = mmap_npz_member(self.path, member)
        if mapped is not None:
            return mapped
        try:
            with np.load(self.path, allow_pickle=False) as archive:
                return np.asarray(archive[member], dtype=float)
        except KeyError as exc:
            raise CampaignArchiveError(
                f"{self.path!r} is missing array {member!r}; the archive is incomplete"
            ) from exc
        except _ARCHIVE_READ_ERRORS as exc:
            raise CampaignArchiveError(
                f"{self.path!r} has a damaged {member!r} member: {exc}"
            ) from exc


class LazySpectrumTrace(SpectrumTrace):
    """A :class:`~repro.spectrum.SpectrumTrace` whose power is read on demand.

    Construction stores only the grid, the label, and where the bytes
    live; the first ``power_mw`` access materializes them (an
    ``np.memmap`` view for uncompressed archives, a decompressed array
    otherwise) and validates the shape. Everything downstream — scoring,
    detection, re-saving — goes through ``power_mw``, so lazy campaigns
    drop into every existing pipeline unchanged.
    """

    def __init__(self, grid, loader, member, label=""):
        # Deliberately not calling super().__init__: its eager power
        # validation is exactly what laziness defers.
        self.grid = grid
        self.label = label
        self._loader = loader
        self._member = member
        self._power = None

    @property
    def materialized(self):
        """Whether the trace bytes have been read yet."""
        return self._power is not None

    @property
    def power_mw(self):
        if self._power is None:
            power = self._loader.load(self._member)
            if power.shape != (self.grid.n_bins,):
                raise CampaignArchiveError(
                    f"{self._loader.path!r}: member {self._member!r} has shape "
                    f"{power.shape}, expected ({self.grid.n_bins},)"
                )
            self._power = power
        return self._power


def load_campaign(path, journal=None, lazy=False):
    """Read a campaign result previously written by :func:`save_campaign`.

    A truncated, corrupted, or incomplete archive raises
    :class:`~repro.errors.CampaignArchiveError`. When ``journal`` is
    given — a campaign journal directory (or
    :class:`~repro.runner.CampaignJournal`) written by the durable
    runner — such damage is repaired instead: the campaign is rebuilt
    from the journal's checkpointed captures.

    ``lazy=True`` returns measurements whose traces are
    :class:`LazySpectrumTrace` views: metadata and member presence are
    validated up front (so the journal fallback still engages on a
    truncated archive), but trace bytes are not read until a
    measurement's ``power_mw`` is touched — memory-mapped when the
    archive was saved with ``compress=False``. Damage *inside* a trace
    member of a lazy load surfaces at first touch, after this call
    returned.
    """
    try:
        return _load_archive(path, lazy=lazy)
    except CampaignArchiveError:
        if journal is None:
            raise
        from .runner import recover_campaign

        return recover_campaign(getattr(journal, "directory", journal))


def _load_archive(path, lazy=False):
    try:
        archive = np.load(path, allow_pickle=False)
    except _ARCHIVE_READ_ERRORS as exc:
        raise CampaignArchiveError(
            f"{str(path)!r} is unreadable as a campaign archive: {exc}"
        ) from exc
    with archive:
        try:
            metadata = json.loads(str(archive["metadata"]))
        except KeyError as exc:
            raise CampaignArchiveError(
                f"{str(path)!r} is not a FASE campaign archive (no metadata member)"
            ) from exc
        except _ARCHIVE_READ_ERRORS as exc:
            raise CampaignArchiveError(
                f"{str(path)!r} has a damaged metadata member: {exc}"
            ) from exc
        if metadata.get("format") != _FORMAT:
            # An archive torn badly enough to mangle its format marker is
            # *damage*, not a version skew: raise the archive error so
            # load_campaign's journal-recovery fallback engages.
            raise CampaignArchiveError(
                f"{str(path)!r} does not carry the campaign format marker "
                f"(found {metadata.get('format')!r}, expected {_FORMAT!r}); "
                "the archive is damaged or not a FASE campaign"
            )
        config = _config_from_dict(metadata["config"])
        grid = _restore_grid(metadata["grid"], config, path)
        result = CampaignResult(
            config=config,
            machine_name=metadata["machine_name"],
            activity_label=metadata["activity_label"],
        )
        n_measurements = len(metadata["falts"])
        flagged = metadata.get("flagged") or [False] * n_measurements
        reasons = metadata.get("quality_reasons") or [None] * n_measurements
        # Hand-edited or torn metadata can leave the per-capture lists
        # disagreeing in length; zip would silently drop captures and the
        # flag lookups would raise a raw IndexError mid-load.
        lengths = {
            "falts": n_measurements,
            "activities": len(metadata["activities"]),
            "trace_labels": len(metadata["trace_labels"]),
            "flagged": len(flagged),
            "quality_reasons": len(reasons),
        }
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{name}={count}" for name, count in lengths.items())
            raise CampaignArchiveError(
                f"{str(path)!r} has inconsistent metadata: per-capture lists "
                f"disagree in length ({detail})"
            )
        result.robustness = _robustness_from_dict(metadata.get("robustness"))
        members = set(archive.files)
        loader = _ArchiveTraceLoader(path) if lazy else None
        for i, (falt, activity_data, label) in enumerate(
            zip(metadata["falts"], metadata["activities"], metadata["trace_labels"])
        ):
            if f"trace_{i}" not in members:
                # Presence is checked eagerly even for lazy loads (the zip
                # central directory is already in memory), so a truncated
                # archive fails here — inside the journal fallback's reach
                # — not at first touch.
                raise CampaignArchiveError(
                    f"{str(path)!r} is missing array 'trace_{i}' (capture {i} of "
                    f"{n_measurements}); the archive is incomplete"
                )
            if lazy:
                trace = LazySpectrumTrace(grid, loader, f"trace_{i}", label=label)
            else:
                try:
                    power = archive[f"trace_{i}"]
                except _ARCHIVE_READ_ERRORS as exc:
                    raise CampaignArchiveError(
                        f"{str(path)!r} has a damaged 'trace_{i}' member (capture {i} of "
                        f"{n_measurements}): {exc}"
                    ) from exc
                trace = SpectrumTrace(grid, power, label=label)
            quality = None
            if reasons[i] is not None:
                quality = CaptureQuality(ok=not flagged[i], reasons=tuple(reasons[i]))
            result.measurements.append(
                CampaignMeasurement(
                    falt=float(falt),
                    activity=_activity_from_dict(activity_data),
                    trace=trace,
                    flagged=bool(flagged[i]),
                    quality=quality,
                )
            )
    return result.validate()
