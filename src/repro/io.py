"""Persistence for campaign results: record once, analyze many times.

A real FASE lab records spectra over hours and re-analyzes them offline;
this module round-trips :class:`~repro.core.campaign.CampaignResult`
bundles through a single ``.npz`` file (numpy's zipped archive), keeping
the traces, the achieved falts, the activity metadata, and the campaign
configuration.

Writes are crash-safe and deterministic: :func:`save_campaign` builds the
archive with fixed zip timestamps (identical campaigns produce identical
bytes — what the resume tests compare), writes it to a sibling temporary
file, fsyncs, and ``os.replace``\\ s it over the final name, so a kill
mid-write leaves either the old archive or the new one, never a
truncated hybrid. :func:`load_campaign` raises
:class:`~repro.errors.CampaignArchiveError` on a damaged archive and can
recover the campaign from its :class:`~repro.runner.CampaignJournal`
checkpoints instead.
"""

from __future__ import annotations

import io as _io
import json
import os
import zipfile
import zlib

import numpy as np

from .core.campaign import CampaignMeasurement, CampaignResult
from .core.config import FaseConfig
from .errors import CampaignArchiveError, CampaignError
from .faults.injectors import FaultEvent
from .faults.robustness import DetectionDelta, RobustnessReport
from .faults.screening import CaptureQuality
from .spectrum.grid import FrequencyGrid
from .spectrum.trace import SpectrumTrace
from .uarch.activity import AlternationActivity

#: Format marker for forward compatibility.
_FORMAT = "fase-campaign-v1"


def _config_to_dict(config):
    return {
        "span_low": config.span_low,
        "span_high": config.span_high,
        "fres": config.fres,
        "falt1": config.falt1,
        "f_delta": config.f_delta,
        "n_alternations": config.n_alternations,
        "n_averages": config.n_averages,
        "harmonics": list(config.harmonics),
        "name": config.name,
        "n_workers": config.n_workers,
        "max_capture_retries": config.max_capture_retries,
        "capture_timeout_s": config.capture_timeout_s,
        "retry_backoff_s": config.retry_backoff_s,
    }


def _config_from_dict(data):
    data = dict(data)
    data["harmonics"] = tuple(data["harmonics"])
    # Archives written before these fields existed.
    data.setdefault("n_workers", 1)
    data.setdefault("max_capture_retries", 2)
    data.setdefault("capture_timeout_s", None)
    data.setdefault("retry_backoff_s", 0.5)
    return FaseConfig(**data)


def _activity_to_dict(activity):
    return {
        "falt": activity.falt,
        "levels_x": activity.levels_x,
        "levels_y": activity.levels_y,
        "duty_cycle": activity.duty_cycle,
        "jitter_fraction": activity.jitter_fraction,
        "label": activity.label,
    }


def _activity_from_dict(data):
    return AlternationActivity(**data)


def _robustness_to_dict(robustness):
    """JSON form of a :class:`~repro.faults.RobustnessReport` (or ``None``).

    The ledger is part of the campaign's provenance — ``cmd_analyze``
    prints it "for archives of degraded runs" — so it must survive the
    archive round-trip, not just journal recovery. Dict keys go through
    JSON as strings and are restored to ints on load.
    """
    if robustness is None:
        return None
    delta = robustness.detection_delta
    return {
        "plan_description": robustness.plan_description,
        "events": [
            {"fault": e.fault, "index": e.index, "attempt": e.attempt, "detail": e.detail}
            for e in robustness.events
        ],
        "retries": {str(index): extra for index, extra in robustness.retries.items()},
        "excluded": {str(index): list(reasons) for index, reasons in robustness.excluded.items()},
        "dropped": list(robustness.dropped),
        "detection_delta": None
        if delta is None
        else {
            "n_naive": delta.n_naive,
            "n_degraded": delta.n_degraded,
            "gained": list(delta.gained),
            "lost": list(delta.lost),
        },
    }


def _robustness_from_dict(data):
    if data is None:
        return None
    delta_data = data.get("detection_delta")
    delta = None
    if delta_data is not None:
        delta = DetectionDelta(
            n_naive=int(delta_data["n_naive"]),
            n_degraded=int(delta_data["n_degraded"]),
            gained=tuple(delta_data["gained"]),
            lost=tuple(delta_data["lost"]),
        )
    return RobustnessReport(
        plan_description=data["plan_description"],
        events=[
            FaultEvent(
                fault=e["fault"], index=int(e["index"]), attempt=int(e["attempt"]),
                detail=e["detail"],
            )
            for e in data.get("events", [])
        ],
        retries={int(index): int(extra) for index, extra in (data.get("retries") or {}).items()},
        excluded={
            int(index): tuple(reasons)
            for index, reasons in (data.get("excluded") or {}).items()
        },
        dropped=tuple(int(index) for index in data.get("dropped", ())),
        detection_delta=delta,
    )


def _restore_grid(grid_data, config, path):
    """Rebuild the capture grid, keeping it consistent with the config.

    Grid parameters pass through JSON floats and were historically
    reconstructed independently of the config, so a reloaded campaign's
    ``grid`` could fail ``==`` against ``config.grid()`` and downstream
    grid-keyed caches would miss. The config-derived grid is canonical:
    float round-trip noise (under half a bin of ``start`` drift, a ppm of
    ``resolution``) is repaired to it, while a materially different grid
    means the archive is inconsistent and is rejected.
    """
    stored = FrequencyGrid(**grid_data)
    expected = config.grid()
    if stored != expected:
        repairable = (
            stored.n_bins == expected.n_bins
            and abs(stored.start - expected.start) <= 0.5 * expected.resolution
            and abs(stored.resolution - expected.resolution) <= 1e-6 * expected.resolution
        )
        if not repairable:
            raise CampaignError(
                f"{path!r}: stored grid {stored!r} disagrees with the campaign "
                f"config's grid {expected!r}"
            )
    return expected


def _fsync_directory(directory):
    """Flush a directory's metadata (a rename) to disk where supported."""
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Fixed zip member timestamp (the DOS epoch) so identical campaigns
#: produce identical archive bytes — resume correctness is asserted by
#: byte-comparing archives, which real timestamps would defeat.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def _write_npz_deterministic(handle, arrays):
    """Write an ``np.load``-compatible compressed archive with fixed metadata."""
    with zipfile.ZipFile(
        handle, "w", compression=zipfile.ZIP_DEFLATED, allowZip64=True
    ) as zf:
        for name, value in arrays.items():
            buffer = _io.BytesIO()
            np.lib.format.write_array(buffer, np.asanyarray(value), allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=_ZIP_EPOCH)
            info.compress_type = zipfile.ZIP_DEFLATED
            info.external_attr = 0o600 << 16
            zf.writestr(info, buffer.getvalue())


def save_campaign(result, path):
    """Write a campaign result to ``path`` (a ``.npz`` archive).

    Returns the real on-disk path as a :class:`pathlib.Path`: like
    ``np.savez``, a missing ``.npz`` suffix is appended, so the caller's
    ``path`` is not always the file that exists afterwards — use the
    return value.

    The write is crash-safe (temporary sibling file, fsync,
    ``os.replace``, directory fsync) and deterministic (fixed zip
    timestamps): a kill mid-save leaves the previous archive intact, and
    two saves of the same campaign are byte-identical.
    """
    from pathlib import Path

    if not result.measurements:
        raise CampaignError("refusing to save an empty campaign result")
    grid = result.grid
    metadata = {
        "format": _FORMAT,
        "machine_name": result.machine_name,
        "activity_label": result.activity_label,
        "config": _config_to_dict(result.config),
        "grid": {"start": grid.start, "stop": grid.stop, "resolution": grid.resolution},
        "falts": list(result.falts),
        "activities": [_activity_to_dict(m.activity) for m in result.measurements],
        "trace_labels": [m.trace.label for m in result.measurements],
        # Degraded-mode provenance: which captures the screen flagged and
        # why, so offline re-analysis excludes the same falt indices.
        "flagged": [bool(m.flagged) for m in result.measurements],
        "quality_reasons": [
            list(m.quality.reasons) if m.quality is not None else None
            for m in result.measurements
        ],
        "robustness": _robustness_to_dict(result.robustness),
    }
    arrays = {"metadata": json.dumps(metadata)}
    for i, measurement in enumerate(result.measurements):
        arrays[f"trace_{i}"] = measurement.trace.power_mw
    real_path = os.fspath(path)
    if not real_path.endswith(".npz"):
        real_path += ".npz"
    tmp_path = real_path + ".tmp"
    with open(tmp_path, "wb") as handle:
        _write_npz_deterministic(handle, arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, real_path)
    _fsync_directory(os.path.dirname(real_path))
    return Path(real_path)


#: Failure modes of reading a damaged zip/npy stream.
_ARCHIVE_READ_ERRORS = (zipfile.BadZipFile, OSError, ValueError, EOFError, zlib.error)


def load_campaign(path, journal=None):
    """Read a campaign result previously written by :func:`save_campaign`.

    A truncated, corrupted, or incomplete archive raises
    :class:`~repro.errors.CampaignArchiveError`. When ``journal`` is
    given — a campaign journal directory (or
    :class:`~repro.runner.CampaignJournal`) written by the durable
    runner — such damage is repaired instead: the campaign is rebuilt
    from the journal's checkpointed captures.
    """
    try:
        return _load_archive(path)
    except CampaignArchiveError:
        if journal is None:
            raise
        from .runner import recover_campaign

        return recover_campaign(getattr(journal, "directory", journal))


def _load_archive(path):
    try:
        archive = np.load(path, allow_pickle=False)
    except _ARCHIVE_READ_ERRORS as exc:
        raise CampaignArchiveError(
            f"{str(path)!r} is unreadable as a campaign archive: {exc}"
        ) from exc
    with archive:
        try:
            metadata = json.loads(str(archive["metadata"]))
        except KeyError as exc:
            raise CampaignArchiveError(
                f"{str(path)!r} is not a FASE campaign archive (no metadata member)"
            ) from exc
        except _ARCHIVE_READ_ERRORS as exc:
            raise CampaignArchiveError(
                f"{str(path)!r} has a damaged metadata member: {exc}"
            ) from exc
        if metadata.get("format") != _FORMAT:
            raise CampaignError(
                f"unsupported campaign format {metadata.get('format')!r}"
            )
        config = _config_from_dict(metadata["config"])
        grid = _restore_grid(metadata["grid"], config, path)
        result = CampaignResult(
            config=config,
            machine_name=metadata["machine_name"],
            activity_label=metadata["activity_label"],
        )
        n_measurements = len(metadata["falts"])
        flagged = metadata.get("flagged") or [False] * n_measurements
        reasons = metadata.get("quality_reasons") or [None] * n_measurements
        # Hand-edited or torn metadata can leave the per-capture lists
        # disagreeing in length; zip would silently drop captures and the
        # flag lookups would raise a raw IndexError mid-load.
        lengths = {
            "falts": n_measurements,
            "activities": len(metadata["activities"]),
            "trace_labels": len(metadata["trace_labels"]),
            "flagged": len(flagged),
            "quality_reasons": len(reasons),
        }
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{name}={count}" for name, count in lengths.items())
            raise CampaignArchiveError(
                f"{str(path)!r} has inconsistent metadata: per-capture lists "
                f"disagree in length ({detail})"
            )
        result.robustness = _robustness_from_dict(metadata.get("robustness"))
        for i, (falt, activity_data, label) in enumerate(
            zip(metadata["falts"], metadata["activities"], metadata["trace_labels"])
        ):
            try:
                power = archive[f"trace_{i}"]
            except KeyError as exc:
                raise CampaignArchiveError(
                    f"{str(path)!r} is missing array 'trace_{i}' (capture {i} of "
                    f"{n_measurements}); the archive is incomplete"
                ) from exc
            except _ARCHIVE_READ_ERRORS as exc:
                raise CampaignArchiveError(
                    f"{str(path)!r} has a damaged 'trace_{i}' member (capture {i} of "
                    f"{n_measurements}): {exc}"
                ) from exc
            trace = SpectrumTrace(grid, power, label=label)
            quality = None
            if reasons[i] is not None:
                quality = CaptureQuality(ok=not flagged[i], reasons=tuple(reasons[i]))
            result.measurements.append(
                CampaignMeasurement(
                    falt=float(falt),
                    activity=_activity_from_dict(activity_data),
                    trace=trace,
                    flagged=bool(flagged[i]),
                    quality=quality,
                )
            )
    return result.validate()
