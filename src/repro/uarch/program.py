"""Program-level workloads: phase sequences beyond the X/Y loop.

The Figure 6 micro-benchmark alternates two homogeneous bursts; real
victims run *sequences* of phases whose per-domain activity varies with
secret data (the square-and-multiply pattern of binary exponentiation
being the classic example, used by the at-a-distance attack demo). This
module models a program as a list of (micro-op, iteration count) phases
and renders it into per-domain activity waveforms through the same timing
model the micro-benchmark uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SystemModelError
from ..rng import ensure_rng
from .isa import MicroOp, activity_levels
from .timing import LatencyModel


@dataclass(frozen=True)
class ProgramPhase:
    """One homogeneous burst: ``iterations`` repetitions of ``op``."""

    op: MicroOp
    iterations: int

    def __post_init__(self):
        if not isinstance(self.op, MicroOp):
            raise SystemModelError(f"phase op must be a MicroOp, got {self.op!r}")
        if self.iterations < 1:
            raise SystemModelError("phase iterations must be >= 1")


class Program:
    """A sequence of phases, optionally repeated."""

    def __init__(self, phases, repeat=1):
        phases = list(phases)
        if not phases:
            raise SystemModelError("a program needs at least one phase")
        if repeat < 1:
            raise SystemModelError("repeat must be >= 1")
        self.phases = phases
        self.repeat = int(repeat)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def alternation(cls, op_x, count_x, op_y, count_y, repeat=1):
        """The Figure 6 loop as a two-phase program."""
        return cls([ProgramPhase(op_x, count_x), ProgramPhase(op_y, count_y)], repeat=repeat)

    @classmethod
    def square_and_multiply(cls, bits, square_iterations=2000, multiply_iterations=2000):
        """Binary exponentiation over ``bits``: every bit squares (MUL
        burst); a set bit additionally multiplies (a second MUL burst).

        The secret-dependent *length* difference between 0-phases and
        1-phases is the leak the attack demo exploits.
        """
        phases = []
        for bit in bits:
            phases.append(ProgramPhase(MicroOp.MUL, square_iterations))
            if int(bit):
                phases.append(ProgramPhase(MicroOp.MUL, multiply_iterations))
            # modular reduction touches memory
            phases.append(ProgramPhase(MicroOp.LDL2, square_iterations // 4))
        return cls(phases)

    # ------------------------------------------------------------------

    def expanded_phases(self):
        """The phase list with the repeat count unrolled."""
        return self.phases * self.repeat

    def total_iterations(self):
        return self.repeat * sum(phase.iterations for phase in self.phases)


@dataclass(frozen=True)
class ProgramTrace:
    """Simulated execution: per-phase durations (seconds)."""

    phases: tuple
    durations: tuple

    @property
    def total_seconds(self):
        return float(sum(self.durations))

    def phase_boundaries(self):
        """Cumulative end time of each phase."""
        return np.cumsum(self.durations)


class ProgramSimulator:
    """Runs programs through the latency model into activity waveforms."""

    def __init__(self, latency_model=None):
        self.latency_model = latency_model or LatencyModel()

    def trace(self, program, rng=None):
        """Sample one execution of the program."""
        rng = ensure_rng(rng)
        phases = tuple(program.expanded_phases())
        durations = tuple(
            float(
                self.latency_model.burst_durations(phase.op, phase.iterations, 1, rng=rng)[0]
            )
            for phase in phases
        )
        return ProgramTrace(phases=phases, durations=durations)

    def activity_waveform(self, program, domain, sample_rate, rng=None):
        """Per-sample activity level of one domain over one execution.

        Returns ``(levels, trace)``; phase boundaries are placed by
        rounding absolute times (no per-phase quantization drift).
        """
        if sample_rate <= 0:
            raise SystemModelError("sample rate must be positive")
        trace = self.trace(program, rng=rng)
        n_samples = int(round(trace.total_seconds * sample_rate))
        if n_samples < 1:
            raise SystemModelError("program too short for the sample rate")
        levels = np.empty(n_samples, dtype=float)
        t = 0.0
        filled = 0
        for phase, duration in zip(trace.phases, trace.durations):
            end = min(int(round((t + duration) * sample_rate)), n_samples)
            if end > filled:
                levels[filled:end] = activity_levels(phase.op)[domain]
                filled = end
            t += duration
        if filled < n_samples:
            levels[filled:] = levels[filled - 1] if filled else 0.0
        return levels, trace

    def mean_level(self, program, domain):
        """Time-averaged activity of a domain (analytic, no sampling)."""
        total_time = 0.0
        weighted = 0.0
        for phase in program.expanded_phases():
            duration = self.latency_model.burst_duration_mean(phase.op, phase.iterations)
            total_time += duration
            weighted += duration * activity_levels(phase.op)[domain]
        return weighted / total_time


class ProgramActivity:
    """Adapter: a looping program as an activity the emitters can render.

    Exposes the same surface the emitters and the time-domain scene use —
    ``sampled_level`` for waveform synthesis, ``level_x``/``level_y`` and
    friends (as the program's time-averaged levels) for the analytic
    renderer, where a non-periodic program contributes its mean emission
    but no alternation side-bands.
    """

    def __init__(self, program, simulator=None, label="program"):
        self.program = program
        self.simulator = simulator or ProgramSimulator()
        self.label = label
        # nominal repetition rate of the whole program, for components
        # that need *a* falt (no side-bands are synthesized from it)
        trace_seconds = sum(
            self.simulator.latency_model.burst_duration_mean(p.op, p.iterations)
            for p in program.expanded_phases()
        )
        self.falt = 1.0 / trace_seconds
        self.duty_cycle = 0.5
        self.jitter_fraction = 0.0

    def sampled_level(self, domain, duration, sample_rate, rng=None):
        """Loop the program until ``duration`` is covered."""
        rng = ensure_rng(rng)
        n_samples = int(round(duration * sample_rate))
        chunks = []
        total = 0
        while total < n_samples:
            levels, _ = self.simulator.activity_waveform(
                self.program, domain, sample_rate, rng=rng
            )
            chunks.append(levels)
            total += len(levels)
        return np.concatenate(chunks)[:n_samples]

    def _mean(self, domain):
        return self.simulator.mean_level(self.program, domain)

    def level_x(self, domain):
        return self._mean(domain)

    def level_y(self, domain):
        return self._mean(domain)

    def mean_level(self, domain):
        return self._mean(domain)

    def swing(self, domain):
        return 0.0

    def is_modulating(self, domain, threshold=1e-9):
        return False
