"""Alternation activity: the interface between software and emitters.

An :class:`AlternationActivity` summarizes what the running micro-benchmark
does to the system: per-domain activity levels during the X and Y halves,
the achieved alternation frequency, duty cycle, and timing jitter. Emitters
read these to compute their amplitude during each half and hence their
side-band structure. A constant workload (e.g. Figure 14's 0 % / 100 %
memory-activity traces) is the degenerate case with equal X and Y levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SystemModelError
from ..rng import ensure_rng


@dataclass(frozen=True)
class AlternationActivity:
    """Per-domain X/Y activity levels alternating at ``falt``.

    ``levels_x`` / ``levels_y`` map domain name -> level in [0, 1]; domains
    absent from the maps are treated as level 0. ``jitter_fraction`` is the
    RMS alternation-period jitter as a fraction of the period.
    """

    falt: float
    levels_x: dict
    levels_y: dict
    duty_cycle: float = 0.5
    jitter_fraction: float = 0.0
    label: str = ""

    def __post_init__(self):
        if self.falt <= 0:
            raise SystemModelError("alternation frequency must be positive")
        if not 0.0 < self.duty_cycle < 1.0:
            raise SystemModelError("duty cycle must be in (0, 1)")
        if self.jitter_fraction < 0:
            raise SystemModelError("jitter fraction must be non-negative")
        for levels in (self.levels_x, self.levels_y):
            for domain, level in levels.items():
                if not 0.0 <= level <= 1.0:
                    raise SystemModelError(
                        f"activity level for {domain!r} must be in [0, 1], got {level}"
                    )

    @classmethod
    def constant(cls, levels, falt=1e3, label=""):
        """A steady workload: both halves at the same levels.

        ``falt`` is irrelevant (no level difference, hence no side-bands)
        but must be positive; the default keeps downstream math happy.
        """
        return cls(
            falt=falt,
            levels_x=dict(levels),
            levels_y=dict(levels),
            duty_cycle=0.5,
            jitter_fraction=0.0,
            label=label,
        )

    def level_x(self, domain):
        return float(self.levels_x.get(domain, 0.0))

    def level_y(self, domain):
        return float(self.levels_y.get(domain, 0.0))

    def mean_level(self, domain):
        """Time-averaged level of a domain over the alternation."""
        return (
            self.level_x(domain) * self.duty_cycle
            + self.level_y(domain) * (1.0 - self.duty_cycle)
        )

    def swing(self, domain):
        """X-minus-Y level difference: the modulation drive of a domain."""
        return self.level_x(domain) - self.level_y(domain)

    def is_modulating(self, domain, threshold=1e-9):
        return abs(self.swing(domain)) > threshold

    def with_falt(self, falt):
        """The same activity at a different alternation frequency."""
        return AlternationActivity(
            falt=falt,
            levels_x=dict(self.levels_x),
            levels_y=dict(self.levels_y),
            duty_cycle=self.duty_cycle,
            jitter_fraction=self.jitter_fraction,
            label=self.label,
        )

    def sampled_level(self, domain, duration, sample_rate, rng=None):
        """A sampled waveform of this domain's level over time.

        Used by the time-domain synthesis path; alternation periods are
        jittered like :func:`repro.signals.waveform.synthesize_alternation_envelope`.
        """
        from ..signals.waveform import synthesize_alternation_envelope

        rng = ensure_rng(rng)
        return synthesize_alternation_envelope(
            duration,
            sample_rate,
            self.falt,
            self.level_x(domain),
            self.level_y(domain),
            duty_cycle=self.duty_cycle,
            jitter_fraction=self.jitter_fraction,
            rng=rng,
        )

    def describe(self):
        """One-line summary for logs and reports."""
        moving = sorted(
            domain
            for domain in set(self.levels_x) | set(self.levels_y)
            if self.is_modulating(domain)
        )
        label = self.label or "activity"
        return (
            f"{label}: falt={self.falt:.4g} Hz, duty={self.duty_cycle:.3f}, "
            f"jitter={self.jitter_fraction:.4f}, modulating domains: "
            f"{', '.join(moving) if moving else 'none'}"
        )
