"""Micro-architectural substrate: caches, timing, and the alternation loop.

Implements the software half of the FASE methodology (Section 2.2): the
micro-benchmark of Figure 6, a cache-hierarchy timing model that gives each
X/Y instruction a realistic latency (with the contention-induced mixture of
"several commonly-occurring execution times" of Section 2.1), and the
calibration step that chooses loop counts so the alternation lands at a
target frequency falt with a 50 % duty cycle.
"""

from .isa import MicroOp, OP_SPECS, activity_levels
from .cache import CacheLevel, CacheHierarchy, default_hierarchy
from .timing import LatencyModel, JitterMixture
from .activity import AlternationActivity
from .microbench import AlternationMicrobenchmark, pointer_mask_for_working_set
from .program import Program, ProgramPhase, ProgramSimulator, ProgramTrace

__all__ = [
    "MicroOp",
    "OP_SPECS",
    "activity_levels",
    "CacheLevel",
    "CacheHierarchy",
    "default_hierarchy",
    "LatencyModel",
    "JitterMixture",
    "AlternationActivity",
    "AlternationMicrobenchmark",
    "pointer_mask_for_working_set",
    "Program",
    "ProgramPhase",
    "ProgramSimulator",
    "ProgramTrace",
]
