"""The X/Y alternation micro-benchmark of Figure 6.

The pseudo-code:

    while(true){
      for(i=0;i<inst_x_count;i++){ ptr1=(ptr1&~mask1)|((ptr1+offset)&mask1);
                                   value=*ptr1; }      // activity X
      for(i=0;i<inst_y_count;i++){ ptr2=(ptr2&~mask2)|((ptr2+offset)&mask2);
                                   *ptr2=value; }      // activity Y
    }

The outer loop alternates X and Y; one outer iteration takes ``Talt`` and
the alternation frequency is ``falt = 1/Talt``. The paper adjusts
``inst_x_count`` and ``inst_y_count`` "so that activity X and activity Y
are each done for half of the alternation period (50 % duty cycle)" — that
adjustment is :meth:`AlternationMicrobenchmark.calibrated`.
"""

from __future__ import annotations

import numpy as np

from ..errors import CalibrationError, SystemModelError
from ..rng import ensure_rng
from .activity import AlternationActivity
from .cache import CacheHierarchy
from .isa import MicroOp, activity_levels
from .timing import LatencyModel


def pointer_mask_for_working_set(working_set_bytes):
    """The pointer mask that walks a working set of at least this size.

    Masks are ``2^k - 1`` so the masked pointer arithmetic of Figure 6 wraps
    within a power-of-two buffer.
    """
    if working_set_bytes < 1:
        raise SystemModelError("working set size must be >= 1 byte")
    size = 1
    while size < working_set_bytes:
        size <<= 1
    return size - 1


class AlternationMicrobenchmark:
    """A calibrated X/Y alternation workload.

    Build directly from two micro-ops and loop counts, via
    :meth:`calibrated` to hit a target ``falt``, or via :meth:`from_masks`
    to mirror the paper's mask-only configuration (the same code walks L1,
    L2, or DRAM purely depending on the pointer mask).
    """

    def __init__(self, op_x, op_y, inst_x_count, inst_y_count, latency_model=None):
        if not isinstance(op_x, MicroOp) or not isinstance(op_y, MicroOp):
            raise SystemModelError("op_x and op_y must be MicroOp values")
        if inst_x_count < 1 or inst_y_count < 1:
            raise SystemModelError("instruction counts must be >= 1")
        self.op_x = op_x
        self.op_y = op_y
        self.inst_x_count = int(inst_x_count)
        self.inst_y_count = int(inst_y_count)
        self.latency_model = latency_model or LatencyModel()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_masks(cls, mask_x, mask_y, hierarchy=None, latency_model=None, **kwargs):
        """Configure by pointer masks, deriving the op from the hierarchy.

        This is the paper's configuration surface: "They differ only in the
        mask values in Figure 6."
        """
        if hierarchy is None:
            from .cache import default_hierarchy

            hierarchy = default_hierarchy()
        if not isinstance(hierarchy, CacheHierarchy):
            raise SystemModelError("hierarchy must be a CacheHierarchy")
        op_x = hierarchy.op_for_working_set(mask_x + 1)
        op_y = hierarchy.op_for_working_set(mask_y + 1)
        counts = {"inst_x_count": 1, "inst_y_count": 1}
        counts.update(kwargs)
        return cls(op_x, op_y, latency_model=latency_model, **counts)

    @classmethod
    def calibrated(cls, op_x, op_y, falt, duty_cycle=0.5, latency_model=None, tolerance=0.05):
        """Choose loop counts so the alternation hits ``falt`` at ``duty_cycle``.

        The X burst must take ``duty_cycle / falt`` seconds and the Y burst
        the remainder. Counts are integers, so perfect calibration is not
        always possible at high falt; a :class:`CalibrationError` is raised
        when the achieved frequency misses by more than ``tolerance``
        (fractional).
        """
        latency_model = latency_model or LatencyModel()
        if falt <= 0:
            raise CalibrationError("target falt must be positive")
        if not 0.0 < duty_cycle < 1.0:
            raise CalibrationError("duty cycle must be in (0, 1)")
        period = 1.0 / falt
        jitter_mean_s = latency_model.jitter.mean() / latency_model.cpu_frequency

        def count_for(op, target_seconds):
            cycles_per_iter = latency_model.op_latency_cycles(op)
            target_cycles = (target_seconds - jitter_mean_s) * latency_model.cpu_frequency
            count = int(round(target_cycles / cycles_per_iter))
            return max(count, 1)

        # Choose the X count from the duty-cycle target, then let the Y
        # count absorb the X burst's quantization error so the *period*
        # (hence falt) stays accurate — at high falt an LLC-miss burst is
        # only a handful of iterations, and the paper tolerates an
        # imperfect duty cycle ("may not have a perfect 50% duty cycle")
        # but the heuristic needs falt itself on target.
        inst_x = count_for(op_x, period * duty_cycle)
        x_burst = latency_model.burst_duration_mean(op_x, inst_x)
        inst_y = count_for(op_y, period - x_burst)
        bench = cls(op_x, op_y, inst_x, inst_y, latency_model=latency_model)
        achieved = bench.achieved_falt()
        if abs(achieved - falt) / falt > tolerance:
            raise CalibrationError(
                f"calibration missed: target {falt:.6g} Hz, achieved {achieved:.6g} Hz "
                f"(counts {bench.inst_x_count}/{bench.inst_y_count}); falt too high for "
                f"these op latencies"
            )
        return bench

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def mean_burst_durations(self):
        """(mean X seconds, mean Y seconds) for the calibrated counts."""
        return (
            self.latency_model.burst_duration_mean(self.op_x, self.inst_x_count),
            self.latency_model.burst_duration_mean(self.op_y, self.inst_y_count),
        )

    def achieved_falt(self):
        """The actual alternation frequency given integer loop counts."""
        x_s, y_s = self.mean_burst_durations()
        return 1.0 / (x_s + y_s)

    def achieved_duty_cycle(self):
        """Fraction of the period spent in the X activity."""
        x_s, y_s = self.mean_burst_durations()
        return x_s / (x_s + y_s)

    def period_jitter_fraction(self):
        """Analytic RMS period jitter as a fraction of the period."""
        std = float(
            np.hypot(
                self.latency_model.burst_duration_std(self.op_x, self.inst_x_count),
                self.latency_model.burst_duration_std(self.op_y, self.inst_y_count),
            )
        )
        return std * self.achieved_falt()

    def simulate_periods(self, n_periods, rng=None):
        """Sample ``n_periods`` alternation periods (seconds) with jitter.

        The histogram of these durations exhibits the "several
        commonly-occurring execution times" of Section 2.1 (the contention
        mixture's discrete delays).
        """
        rng = ensure_rng(rng)
        x = self.latency_model.burst_durations(self.op_x, self.inst_x_count, n_periods, rng)
        y = self.latency_model.burst_durations(self.op_y, self.inst_y_count, n_periods, rng)
        return x + y

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------

    def activity(self, label=None):
        """The :class:`AlternationActivity` this benchmark produces."""
        if label is None:
            label = f"{self.op_x.value}/{self.op_y.value}"
        return AlternationActivity(
            falt=self.achieved_falt(),
            levels_x=activity_levels(self.op_x),
            levels_y=activity_levels(self.op_y),
            duty_cycle=self.achieved_duty_cycle(),
            jitter_fraction=self.period_jitter_fraction(),
            label=label,
        )

    def __repr__(self):
        return (
            f"AlternationMicrobenchmark({self.op_x.value}x{self.inst_x_count} / "
            f"{self.op_y.value}x{self.inst_y_count}, falt={self.achieved_falt():.4g} Hz)"
        )
