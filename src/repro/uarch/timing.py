"""Instruction timing with contention jitter.

Section 2.1 observes that repetitions of a loop do not all take the same
time: "there are often several commonly-occurring execution times among the
repetitions", e.g. from resource contention with other threads in SMT or
multi-processor systems. We model a loop half-period's duration as

    nominal + (mixture of discrete contention delays) + Gaussian noise

where the mixture produces the secondary "bumps" of Figure 2 and the
Gaussian the overall side-band broadening.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SystemModelError
from ..rng import ensure_rng
from .isa import OP_SPECS, MicroOp


@dataclass(frozen=True)
class JitterMixture:
    """A discrete mixture of extra delays (in cycles) with probabilities.

    ``delays`` and ``probabilities`` must have equal length; probabilities
    must sum to <= 1, the remainder being "no extra delay".
    """

    delays: tuple = (180.0, 420.0)
    probabilities: tuple = (0.02, 0.006)

    def __post_init__(self):
        if len(self.delays) != len(self.probabilities):
            raise SystemModelError("delays and probabilities must align")
        if any(p < 0 for p in self.probabilities) or sum(self.probabilities) > 1.0:
            raise SystemModelError("probabilities must be non-negative and sum to <= 1")
        if any(d < 0 for d in self.delays):
            raise SystemModelError("delays must be non-negative")

    def sample(self, rng, size):
        """Sample extra delays (cycles) for ``size`` loop bursts."""
        rng = ensure_rng(rng)
        outcomes = np.zeros(size, dtype=float)
        u = rng.random(size)
        cumulative = 0.0
        for delay, probability in zip(self.delays, self.probabilities):
            mask = (u >= cumulative) & (u < cumulative + probability)
            outcomes[mask] = delay
            cumulative += probability
        return outcomes

    def mean(self):
        return float(sum(d * p for d, p in zip(self.delays, self.probabilities)))

    def variance(self):
        mean = self.mean()
        second = sum(d * d * p for d, p in zip(self.delays, self.probabilities))
        return float(second - mean * mean)


@dataclass
class LatencyModel:
    """Converts micro-op bursts into wall-clock durations.

    ``cpu_frequency`` is the core clock; ``gaussian_sigma_cycles`` is the
    per-burst Gaussian timing noise; ``jitter`` the contention mixture.
    A "burst" is one inner loop of the micro-benchmark (``inst_count``
    iterations of one op).
    """

    cpu_frequency: float = 3.4e9
    gaussian_sigma_fraction: float = 0.0015
    jitter: JitterMixture = field(default_factory=JitterMixture)

    def __post_init__(self):
        if self.cpu_frequency <= 0:
            raise SystemModelError("cpu frequency must be positive")
        if self.gaussian_sigma_fraction < 0:
            raise SystemModelError("gaussian sigma fraction must be non-negative")

    def op_latency_cycles(self, op):
        """Nominal per-iteration cycles of a loop body around ``op``."""
        if not isinstance(op, MicroOp):
            raise SystemModelError(f"expected a MicroOp, got {op!r}")
        return OP_SPECS[op].base_latency_cycles

    def burst_duration_mean(self, op, inst_count):
        """Mean duration (seconds) of ``inst_count`` iterations of ``op``."""
        if inst_count < 1:
            raise SystemModelError("inst_count must be >= 1")
        cycles = self.op_latency_cycles(op) * inst_count + self.jitter.mean()
        return cycles / self.cpu_frequency

    def burst_durations(self, op, inst_count, n_bursts, rng=None):
        """Sample ``n_bursts`` burst durations (seconds) with jitter."""
        if n_bursts < 1:
            raise SystemModelError("n_bursts must be >= 1")
        rng = ensure_rng(rng)
        nominal = self.op_latency_cycles(op) * inst_count
        extra = self.jitter.sample(rng, n_bursts)
        gaussian = self.gaussian_sigma_fraction * nominal * rng.standard_normal(n_bursts)
        cycles = np.maximum(nominal + extra + gaussian, 1.0)
        return cycles / self.cpu_frequency

    def burst_duration_std(self, op, inst_count):
        """Analytic standard deviation (seconds) of a burst duration."""
        nominal = self.op_latency_cycles(op) * inst_count
        variance_cycles = (
            self.jitter.variance() + (self.gaussian_sigma_fraction * nominal) ** 2
        )
        return float(np.sqrt(variance_cycles)) / self.cpu_frequency
