"""Micro-op kinds used as X/Y activities, and their per-domain activity.

The paper's activities: "integer multiplication, division, addition,
subtraction, as well as load and store to all levels of the cache
hierarchy" (Section 3). Each op carries a vector of activity levels over
the system's power/activity domains; the *difference* between the X op's
and the Y op's vector is what amplitude-modulates each emitter.

The level values encode the paper's observed behaviour:

* LDM (LLC-miss load) and LDL1 draw the *same* core power — the core is
  mostly stalled during an LLC miss — which is why LDM/LDL1 does not
  modulate the core regulator in Figure 11 while lighting up everything on
  the memory path.
* LDL2 draws more core-domain power than LDL1 (the L2 and its wires live
  on the core supply), so LDL2/LDL1 modulates only the core regulator
  (Figure 13).
* Memory-side levels of all on-chip ops are identical, so on-chip pairs
  leave the memory regulator, refresh, and DRAM clock unmodulated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SystemModelError
from ..system.domains import (
    CORE,
    L2_CACHE,
    MEMORY_INTERFACE,
    DRAM_POWER,
    DRAM_BUS,
    MEMORY_UTILIZATION,
)


class MicroOp(enum.Enum):
    """The X/Y instruction kinds of Figure 6 and Section 3."""

    LDL1 = "LDL1"  # load hitting L1
    LDL2 = "LDL2"  # load hitting L2 (L1 miss)
    LDM = "LDM"  # load missing the LLC (DRAM read)
    STM = "STM"  # store causing LLC write-back traffic (DRAM write)
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"
    NOP = "NOP"


@dataclass(frozen=True)
class MicroOpSpec:
    """Static properties of one micro-op kind.

    ``base_latency_cycles`` is the nominal per-iteration cost of one loop
    body built around this op (address update + the op itself, Figure 6);
    ``is_memory`` marks ops that travel to DRAM.
    """

    op: MicroOp
    base_latency_cycles: float
    is_memory: bool
    levels: dict


def _levels(core, l2=0.0, mem_if=0.0, dram_power=0.0, dram_bus=0.0, mem_util=0.0):
    return {
        CORE: core,
        L2_CACHE: l2,
        MEMORY_INTERFACE: mem_if,
        DRAM_POWER: dram_power,
        DRAM_BUS: dram_bus,
        MEMORY_UTILIZATION: mem_util,
    }


#: Memory-side activity shared by every on-chip op: background traffic only.
_ONCHIP_MEMORY_SIDE = dict(mem_if=0.02, dram_power=0.05, dram_bus=0.0, mem_util=0.0)

OP_SPECS = {
    MicroOp.LDL1: MicroOpSpec(
        MicroOp.LDL1, 5.0, False, _levels(core=0.50, l2=0.05, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.LDL2: MicroOpSpec(
        MicroOp.LDL2, 13.0, False, _levels(core=0.82, l2=0.70, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.LDM: MicroOpSpec(
        MicroOp.LDM,
        210.0,
        True,
        _levels(core=0.50, l2=0.30, mem_if=0.80, dram_power=0.85, dram_bus=0.90, mem_util=0.90),
    ),
    MicroOp.STM: MicroOpSpec(
        MicroOp.STM,
        190.0,
        True,
        _levels(core=0.50, l2=0.34, mem_if=0.76, dram_power=0.82, dram_bus=0.86, mem_util=0.86),
    ),
    MicroOp.ADD: MicroOpSpec(
        MicroOp.ADD, 4.0, False, _levels(core=0.58, l2=0.02, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.SUB: MicroOpSpec(
        MicroOp.SUB, 4.0, False, _levels(core=0.58, l2=0.02, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.MUL: MicroOpSpec(
        MicroOp.MUL, 6.0, False, _levels(core=0.68, l2=0.02, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.DIV: MicroOpSpec(
        MicroOp.DIV, 24.0, False, _levels(core=0.88, l2=0.02, **_ONCHIP_MEMORY_SIDE)
    ),
    MicroOp.NOP: MicroOpSpec(
        MicroOp.NOP, 1.0, False, _levels(core=0.32, l2=0.0, **_ONCHIP_MEMORY_SIDE)
    ),
}


def activity_levels(op):
    """Per-domain activity levels (0..1) while the loop runs op ``op``."""
    if not isinstance(op, MicroOp):
        raise SystemModelError(f"expected a MicroOp, got {op!r}")
    return dict(OP_SPECS[op].levels)
