"""Cache hierarchy model: sizes, latencies, and mask-to-level mapping.

The micro-benchmark of Figure 6 steers its loads to a cache level purely by
the pointer mask: ``ptr = (ptr & ~mask) | ((ptr + offset) & mask)`` walks a
working set of ``mask + 1`` bytes. The paper stresses this is
methodologically important because "the exact same micro-benchmark code"
is used for LDM, LDL2, and LDL1 — only the masks differ. The hierarchy
model answers the question "which level does a working set of N bytes hit
in?" and supplies access latencies for the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SystemModelError
from .isa import MicroOp


@dataclass(frozen=True)
class CacheLevel:
    """One cache level: capacity in bytes and load-to-use latency in cycles."""

    name: str
    capacity_bytes: int
    latency_cycles: float

    def __post_init__(self):
        if self.capacity_bytes <= 0:
            raise SystemModelError(f"cache {self.name}: capacity must be positive")
        if self.latency_cycles <= 0:
            raise SystemModelError(f"cache {self.name}: latency must be positive")


class CacheHierarchy:
    """An ordered hierarchy of cache levels backed by DRAM.

    ``levels`` must be ordered smallest/fastest first; ``dram_latency_cycles``
    is the full LLC-miss cost including the memory controller round trip.
    """

    def __init__(self, levels, dram_latency_cycles=210.0):
        levels = list(levels)
        if not levels:
            raise SystemModelError("hierarchy needs at least one cache level")
        for smaller, larger in zip(levels, levels[1:]):
            if smaller.capacity_bytes >= larger.capacity_bytes:
                raise SystemModelError(
                    "cache levels must be ordered by strictly increasing capacity"
                )
            if smaller.latency_cycles >= larger.latency_cycles:
                raise SystemModelError(
                    "cache levels must be ordered by strictly increasing latency"
                )
        if dram_latency_cycles <= levels[-1].latency_cycles:
            raise SystemModelError("DRAM latency must exceed the last cache level's")
        self.levels = levels
        self.dram_latency_cycles = float(dram_latency_cycles)

    def level_for_working_set(self, working_set_bytes):
        """Name of the level a working set of this size hits in steady state.

        Returns ``"DRAM"`` when the set overflows the last-level cache. A
        working set "fits" when it is at most half the capacity (leaving
        room for the rest of the loop's footprint), matching how the
        paper's masks are chosen well inside / well outside each level.
        """
        if working_set_bytes <= 0:
            raise SystemModelError("working set size must be positive")
        for level in self.levels:
            if working_set_bytes <= level.capacity_bytes // 2:
                return level.name
        return "DRAM"

    def latency_for_level(self, name):
        """Load latency (cycles) of a named level, or of DRAM."""
        if name == "DRAM":
            return self.dram_latency_cycles
        for level in self.levels:
            if level.name == name:
                return level.latency_cycles
        raise SystemModelError(f"unknown cache level {name!r}")

    def op_for_working_set(self, working_set_bytes):
        """Which load micro-op a pointer-chase over this working set becomes."""
        name = self.level_for_working_set(working_set_bytes)
        mapping = {"L1": MicroOp.LDL1, "L2": MicroOp.LDL2, "DRAM": MicroOp.LDM}
        if name in mapping:
            return mapping[name]
        # Larger on-chip levels (L3/LLC) still behave like an on-chip load;
        # classify them as L2-like for modulation purposes.
        return MicroOp.LDL2


def default_hierarchy():
    """A desktop-class hierarchy (32 KiB L1, 256 KiB L2, 8 MiB LLC)."""
    return CacheHierarchy(
        levels=[
            CacheLevel("L1", 32 * 1024, 5.0),
            CacheLevel("L2", 256 * 1024, 13.0),
            CacheLevel("LLC", 8 * 1024 * 1024, 42.0),
        ],
        dram_latency_cycles=210.0,
    )
