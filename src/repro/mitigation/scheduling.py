"""Modulation weakening by access scheduling (Section 1's second knob).

"Modulation-weakening efforts might involve careful scheduling of memory
accesses to avoid their interaction with refresh activity."

Mechanism: the refresh engine's periodicity erodes because demand accesses
*delay* refresh commands. A memory controller that paces accesses around
refresh slots (reserving the refresh window, smoothing bursts) decouples
the refresh timing from the demand pattern: the coherence the refresh
carrier loses under load — and, critically, the *difference* in coherence
between the X and Y halves of an alternation — shrinks by the pacing
factor. The carrier stays (energy still emitted, unlike randomization) but
its activity modulation fades.
"""

from __future__ import annotations

from ..errors import SystemModelError
from ..system.refresh import MemoryRefreshEmitter


class AccessPacedRefreshEmitter(MemoryRefreshEmitter):
    """Refresh whose interaction with demand accesses is reduced by pacing.

    ``pacing`` in [0, 1]: 0 is the stock controller (accesses freely delay
    refreshes); 1 fully isolates refresh slots from demand traffic. The
    effective utilization seen by the refresh scheduler is scaled by
    ``(1 - pacing)``.
    """

    def __init__(self, *args, pacing=0.9, **kwargs):
        if not 0.0 <= pacing <= 1.0:
            raise SystemModelError("pacing must be in [0, 1]")
        self.pacing = float(pacing)
        super().__init__(*args, **kwargs)

    def coherence(self, utilization):
        return super().coherence(utilization * (1.0 - self.pacing))
