"""Mitigations the paper proposes, implemented and evaluated.

Section 1/4.2 sketches "surgical" mitigations once FASE has found a leak:

* **Refresh randomization** — "randomizing the issue of memory refresh
  commands would be compatible with existing DRAM standards and would
  greatly reduce the modulation of refresh activity";
* **Modulation weakening** — "careful scheduling of memory accesses to
  avoid their interaction with refresh activity";
* **Regulator frequency dithering** — the spread-spectrum treatment already
  applied to clocks for EMC, applied to a switching regulator's carrier.

Each mitigation is a drop-in emitter (or emitter wrapper) plus an
evaluation harness that quantifies, before vs after: the carrier's peak
spectral line, its modulation depth, and whether FASE still detects it.
"""

from .refresh_randomization import RandomizedRefreshEmitter
from .regulator_dithering import DitheredRegulator
from .scheduling import AccessPacedRefreshEmitter
from .evaluate import MitigationOutcome, evaluate_mitigation, replace_emitter

__all__ = [
    "RandomizedRefreshEmitter",
    "DitheredRegulator",
    "AccessPacedRefreshEmitter",
    "MitigationOutcome",
    "evaluate_mitigation",
    "replace_emitter",
]
