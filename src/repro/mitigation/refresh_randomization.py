"""Refresh-interval randomization (the paper's proposed fix, Section 4.2).

"Randomizing the issue of memory refresh commands would be compatible with
existing DRAM standards and would greatly reduce the modulation of refresh
activity."

Mechanism: if each refresh command is issued at a random offset within its
tREFI window (keeping the *average* rate at the standard's 7.8 us), the
pulse train loses cycle-to-cycle phase coherence. With a fractional timing
randomization ``r`` (uniform offset of ± r/2 of the period), harmonic ``n``
keeps only the coherent fraction

    sinc(n * r)          (the characteristic function of the uniform jitter)

of its amplitude; the rest is spread as broadband noise. Full-window
randomization (r = 1) eliminates the fundamental entirely and every
harmonic's coherent line with it — and because the *modulation* rides on
those coherent lines, FASE's side-bands vanish too.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..signals.lineshape import GaussianLine
from ..signals.pulse import pulse_harmonic_amplitude
from ..system.refresh import MemoryRefreshEmitter


class RandomizedRefreshEmitter(MemoryRefreshEmitter):
    """Memory refresh with randomized issue times.

    ``randomization`` in [0, 1]: the fraction of the refresh period over
    which each command's issue time is uniformly randomized. 0 is the
    stock deterministic scheduler; 1 randomizes over the whole window.
    """

    def __init__(self, *args, randomization=1.0, **kwargs):
        if not 0.0 <= randomization <= 1.0:
            raise SystemModelError("randomization must be in [0, 1]")
        self.randomization = float(randomization)
        super().__init__(*args, **kwargs)

    def coherence_retention(self, order):
        """Coherent amplitude fraction of harmonic ``order`` after
        randomization: |sinc(n r)|."""
        return float(np.abs(np.sinc(order * self.randomization)))

    def envelope(self, order, level):
        return super().envelope(order, level) * self.coherence_retention(order)

    def amplitude_unit(self):
        """Calibrate against the *unmitigated* refresh drive.

        ``fundamental_dbm`` describes the physical pulse energy, which the
        randomization redistributes but does not change; anchoring to the
        mitigated (possibly zero) envelope would blow the unit up.
        """
        reference = (
            super(RandomizedRefreshEmitter, self).envelope(self.n_ranks, self.reference_level())
        )
        if reference <= 0:
            raise SystemModelError("refresh reference envelope must be positive")
        from ..units import dbm_to_milliwatts

        return float(np.sqrt(dbm_to_milliwatts(self.fundamental_dbm))) / reference

    def render(self, grid, activity):
        """Coherent (attenuated) lines plus the randomization pedestal.

        The energy removed from the coherent lines reappears as a broad
        pedestal (like the activity-induced dispersal, but static). The
        pedestal is activity-independent to first order, so it carries no
        side-bands — the energy is still emitted but no longer leaks the
        activity pattern.
        """
        power = super().render(grid, activity)
        if self.randomization <= 0:
            return power
        unit = self.amplitude_unit()
        pedestal = GaussianLine(self.dispersal_width)
        for order in range(1, self.max_harmonics + 1):
            center = self.oscillator.harmonic_frequency(order)
            if center - pedestal.halfwidth > grid.stop:
                break
            full = (
                unit
                * pulse_harmonic_amplitude(order, self.duty_cycle)
                * self.rank_stagger_factor(order)
            )
            retention = self.coherence_retention(order)
            lost_power = full * full * (1.0 - retention * retention)
            if lost_power <= 0:
                continue
            power += pedestal.render(grid.frequencies, center, lost_power)
        return power

    def is_modulated_by(self, activity, threshold=1e-9):
        """Full randomization leaves no coherent carrier to modulate."""
        if self.coherence_retention(1) <= threshold:
            return False
        return super().is_modulated_by(activity, threshold)
