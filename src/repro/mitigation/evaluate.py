"""Mitigation evaluation harness.

FASE's fourth advantage (Section 6): it "quantifies how strongly carrier
signals are modulated, which is useful ... for evaluating the effectiveness
of mitigation efforts." This harness runs the same campaign against a
machine before and after swapping one emitter for its mitigated variant and
reports, at a carrier of interest:

* the carrier's peak spectral line (dBm) before/after,
* the first side-band's level before/after (the leak itself),
* whether FASE still detects the carrier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.campaign import MeasurementCampaign
from ..core.detect import CarrierDetector
from ..errors import SystemModelError
from ..rng import ensure_rng
from ..system.machine import SystemModel
from ..uarch.isa import MicroOp
from ..units import milliwatts_to_dbm


def replace_emitter(machine, name, replacement):
    """A new :class:`SystemModel` with one emitter swapped out."""
    if replacement.name != name:
        # keep the report readable: the mitigated emitter answers to the
        # same name as the component it replaces
        replacement.name = name
    emitters = [
        replacement if emitter.name == name else emitter for emitter in machine.emitters
    ]
    if not any(emitter is replacement for emitter in emitters):
        raise SystemModelError(f"no emitter named {name!r} to replace")
    return SystemModel(
        machine.name, emitters, environment=machine.environment, receiver=machine.receiver
    )


@dataclass(frozen=True)
class MitigationOutcome:
    """Before/after numbers for one carrier under one mitigation."""

    carrier_frequency: float
    carrier_dbm_before: float
    carrier_dbm_after: float
    sideband_dbm_before: float
    sideband_dbm_after: float
    detected_before: bool
    detected_after: bool

    @property
    def carrier_reduction_db(self):
        return self.carrier_dbm_before - self.carrier_dbm_after

    @property
    def sideband_reduction_db(self):
        """Reduction of the leak itself (the modulated side-band)."""
        return self.sideband_dbm_before - self.sideband_dbm_after

    def describe(self):
        return (
            f"carrier {self.carrier_frequency / 1e3:.1f} kHz: "
            f"line {self.carrier_dbm_before:.1f} -> {self.carrier_dbm_after:.1f} dBm, "
            f"side-band {self.sideband_dbm_before:.1f} -> {self.sideband_dbm_after:.1f} dBm, "
            f"FASE detects: {self.detected_before} -> {self.detected_after}"
        )


def _window_peak_dbm(trace, frequency, halfwidth_bins=5):
    grid = trace.grid
    index = grid.index_of(frequency)
    lo = max(index - halfwidth_bins, 0)
    hi = min(index + halfwidth_bins + 1, grid.n_bins)
    return float(milliwatts_to_dbm(trace.power_mw[lo:hi].max()))


def evaluate_mitigation(
    machine_before,
    machine_after,
    carrier_frequency,
    config,
    op_x=MicroOp.LDM,
    op_y=MicroOp.LDL1,
    detector=None,
    rng=None,
    tolerance=2e3,
):
    """Run the same campaign on both machines and compare at one carrier."""
    rng = ensure_rng(rng)
    detector = detector or CarrierDetector()
    outcome = {}
    for key, machine in (("before", machine_before), ("after", machine_after)):
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(rng.integers(1 << 31)))
        result = campaign.run(op_x, op_y, label=f"{op_x.value}/{op_y.value}")
        trace = result.measurements[0].trace
        falt = result.measurements[0].falt
        detections = detector.detect(result)
        outcome[key] = {
            "carrier": _window_peak_dbm(trace, carrier_frequency),
            "sideband": _window_peak_dbm(trace, carrier_frequency + falt),
            "detected": any(
                abs(d.frequency - carrier_frequency) < tolerance for d in detections
            ),
        }
    return MitigationOutcome(
        carrier_frequency=float(carrier_frequency),
        carrier_dbm_before=outcome["before"]["carrier"],
        carrier_dbm_after=outcome["after"]["carrier"],
        sideband_dbm_before=outcome["before"]["sideband"],
        sideband_dbm_after=outcome["after"]["sideband"],
        detected_before=outcome["before"]["detected"],
        detected_after=outcome["after"]["detected"],
    )
