"""Switching-frequency dithering for voltage regulators.

Section 4.3 notes that EMI compliance already pushes clock designers to
spread-spectrum techniques; the same dithering applied to a switching
regulator spreads its carrier energy over a band, lowering the peak
spectral line by the spreading ratio. The paper is careful to warn this is
only an *averaged-sense* mitigation — "attackers can still track the
carrier and use the full power of the signal after demodulation" — and the
evaluation harness reports both the per-bin attenuation and the unchanged
total power so that caveat is visible in the numbers.
"""

from __future__ import annotations

from ..errors import SystemModelError
from ..signals.lineshape import SpreadSpectrumLine
from ..system.regulator import SwitchingRegulator


class DitheredRegulator(SwitchingRegulator):
    """A switching regulator whose frequency is swept over ``dither_width``.

    The Gaussian RC line of each harmonic is replaced by a spread pedestal
    ``order * dither_width`` wide (the sweep scales with the harmonic,
    exactly like a spread-spectrum clock). Total emitted power and the
    PWM-to-AM modulation mechanism are unchanged — only the energy's
    concentration drops.
    """

    def __init__(self, *args, dither_width=20e3, **kwargs):
        if dither_width <= 0:
            raise SystemModelError("dither width must be positive")
        self.dither_width = float(dither_width)
        super().__init__(*args, **kwargs)

    def lineshape(self, order):
        """Spread pedestal in place of the RC Gaussian at every harmonic."""
        return SpreadSpectrumLine(
            self.dither_width * order,
            edge_sigma=max(self.oscillator.sigma * order, self.dither_width / 100.0),
            profile="triangular",
        )
