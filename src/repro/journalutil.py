"""Shared append-only journal primitives.

Three subsystems persist state as checksummed JSON-lines logs: the
campaign journal (:mod:`repro.runner.journal`), the survey manifest
(:mod:`repro.survey.manifest`), and the service job store
(:mod:`repro.service.queue`). They share one durability discipline —
this module is that discipline, extracted so the layers cannot drift:

* **atomic header writes** (:func:`atomic_write`, re-exported from the
  runner): tmp sibling + fsync + rename + directory fsync, so a kill at
  any point leaves either the old bytes or the new bytes, never a torn
  file under a valid name;
* **checksummed lines** (:func:`checksum_record`, :func:`encode_line`,
  :func:`decode_line`): each appended line carries a SHA-256 over its
  payload, so the loader can tell a fully durable record from the
  fragment a kill-mid-write leaves behind;
* **fsync'd appends** (:func:`append_line`): one complete line per
  record, flushed and fsync'd before the append returns — the record is
  either durable or it never happened;
* **torn-tail sealing** (:func:`ensure_line_boundary`): a log killed
  mid-write ends without a newline; appending straight onto that
  fragment would weld the fresh record to the garbage and lose both.
  Writing one ``\\n`` first turns the fragment into its own
  (checksum-failing) line, which loaders skip as damage;
* **damage-tolerant iteration** (:func:`iter_journal`): yields each
  line's decoded record (or ``None`` for damage) plus whether it is the
  final line, so callers can distinguish a torn tail (a kill — expected)
  from interior corruption.

Appends are deliberately *not* atomic — that is the point of an
append-only log. The contract is that loaders tolerate damage instead.
"""

from __future__ import annotations

import hashlib
import json
import os

# The one atomic-write primitive every journal layer shares; defined in
# the runner (the first durable layer) and re-exported here so new
# layers depend on this module alone.
from .runner.journal import atomic_write

__all__ = [
    "atomic_write",
    "checksum_record",
    "encode_line",
    "decode_line",
    "ensure_line_boundary",
    "append_line",
    "iter_journal",
    "read_complete_lines",
]


def checksum_record(record):
    """SHA-256 hex digest of a record's canonical (sorted-keys) JSON."""
    return hashlib.sha256(json.dumps(record, sort_keys=True).encode("utf-8")).hexdigest()


def encode_line(record):
    """One journal line: the record enveloped with its own checksum."""
    return json.dumps({"record": record, "sha256": checksum_record(record)}, sort_keys=True)


def decode_line(line):
    """The record a line carries, or ``None`` if the line is damaged.

    ``line`` may be ``bytes`` or ``str``. Damage — a torn tail, a flipped
    byte, a checksum mismatch — never raises: the caller treats ``None``
    as "this record never became durable" and moves on.
    """
    try:
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        envelope = json.loads(line)
        record = envelope["record"]
        if envelope["sha256"] != checksum_record(record):
            return None
        return record
    except (UnicodeDecodeError, ValueError, KeyError, TypeError):
        return None


def ensure_line_boundary(path):
    """Seal a torn tail so the next append starts on a fresh line.

    Returns ``True`` when a seal was written (the previous run was killed
    mid-append), ``False`` when the log already ends cleanly or does not
    exist. Raises ``OSError`` on an unwritable log — callers own the
    degradation policy.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return False
            handle.seek(size - 1)
            last = handle.read(1)
    except FileNotFoundError:
        return False
    if last == b"\n":
        return False
    with open(path, "ab") as handle:
        handle.write(b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    return True


def append_line(path, record):
    """Append one checksummed record line, flushed and fsync'd.

    When this returns, the record is durable. Raises ``OSError`` on
    failure (``ENOSPC``, a yanked volume) — whether that degrades the
    journal or fails the operation is the caller's policy, not this
    layer's.
    """
    line = encode_line(record)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_complete_lines(path, offset=0):
    """Raw complete lines from a byte offset: ``(lines, next_offset)``.

    The incremental read primitive behind live log tailing. Only
    newline-*terminated* lines are returned — a torn tail (an append
    caught mid-write) stays invisible until its newline lands, and
    ``next_offset`` never advances past it, so the fragment is re-read
    whole on the next call. Lines are raw ``bytes`` without their
    newline, in file order, empty lines included (offset arithmetic is
    exact: ``next_offset == offset + sum(len(line) + 1)``). A missing
    file or an offset at/past the last newline yields ``([], offset)``
    — callers poll, they do not error.
    """
    offset = max(0, int(offset))
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except FileNotFoundError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    return data[:end].split(b"\n"), offset + end + 1


def iter_journal(path):
    """Yield ``(record_or_none, is_last_line)`` for every non-blank line.

    ``record_or_none`` is ``None`` for a damaged line; a damaged *final*
    line is the kill-mid-write signature (a torn tail), damage anywhere
    else is corruption. Raises ``OSError`` when the log itself cannot be
    read — that is an environment failure, not damage to tolerate.
    """
    with open(path, "rb") as handle:
        raw_lines = handle.read().split(b"\n")
    lines = [line for line in raw_lines if line.strip()]
    for position, line in enumerate(lines):
        yield decode_line(line), position == len(lines) - 1
