"""Oscillator models: what generates a periodic carrier and how stable it is.

An :class:`Oscillator` couples a nominal frequency with a line shape and with
per-harmonic behaviour. Harmonic ``m`` of an oscillator inherits ``m`` times
the fractional instability of the fundamental, so RC-oscillator harmonics get
progressively wider — visible in the paper's Figure 11 where higher regulator
harmonics are broader.
"""

from __future__ import annotations

from ..errors import UnitsError
from .lineshape import DeltaLine, GaussianLine, SpreadSpectrumLine


class Oscillator:
    """Base oscillator: nominal frequency plus a line shape per harmonic."""

    def __init__(self, frequency):
        if frequency <= 0:
            raise UnitsError("oscillator frequency must be positive")
        self.frequency = float(frequency)

    def harmonic_frequency(self, order):
        """Center frequency of harmonic ``order`` (1 = fundamental)."""
        if order < 1:
            raise UnitsError("harmonic order must be >= 1")
        return self.frequency * order

    def lineshape(self, order):
        """Line shape of harmonic ``order``."""
        raise NotImplementedError


class CrystalOscillator(Oscillator):
    """Crystal-derived timing: effectively ideal lines at every harmonic.

    Used for memory-refresh timing and memory-controller clocks, which the
    paper identifies as "crystal-derived" from their stability.
    """

    def lineshape(self, order):
        if order < 1:
            raise UnitsError("harmonic order must be >= 1")
        return DeltaLine()


class RCOscillator(Oscillator):
    """RC relaxation oscillator with Gaussian phase-noise line shape.

    ``fractional_sigma`` is the RMS fractional frequency deviation; the
    fundamental's linewidth is ``fractional_sigma * frequency`` and harmonic
    ``m`` is ``m`` times wider. Switching voltage regulators "often use RC
    oscillators" (Section 4.1) which is why their carriers look Gaussian.
    """

    def __init__(self, frequency, fractional_sigma=2e-3):
        super().__init__(frequency)
        if fractional_sigma <= 0:
            raise UnitsError("fractional sigma must be positive")
        self.fractional_sigma = float(fractional_sigma)

    @property
    def sigma(self):
        """Absolute linewidth (Hz, one-sigma) of the fundamental."""
        return self.fractional_sigma * self.frequency

    def lineshape(self, order):
        if order < 1:
            raise UnitsError("harmonic order must be >= 1")
        return GaussianLine(self.sigma * order)


class SpreadSpectrumClock(Oscillator):
    """A clock swept across a band for EMI compliance (Section 4.3).

    ``frequency`` is the top of the sweep (e.g. 333 MHz) and ``sweep_width``
    how far it is swept down (e.g. 1 MHz → 332..333 MHz), matching the
    paper's example. ``sweep_period`` (e.g. 100 microseconds) is carried for
    the time-domain synthesis path. The long-term line shape is the dwell
    density across the band, centered halfway down the sweep.
    """

    def __init__(self, frequency, sweep_width, sweep_period=100e-6, profile="sinusoidal"):
        super().__init__(frequency)
        if sweep_width <= 0 or sweep_width >= frequency:
            raise UnitsError("sweep width must be positive and below the clock frequency")
        if sweep_period <= 0:
            raise UnitsError("sweep period must be positive")
        self.sweep_width = float(sweep_width)
        self.sweep_period = float(sweep_period)
        self.profile = profile

    def harmonic_frequency(self, order):
        """Harmonics are centered on the middle of the swept band."""
        if order < 1:
            raise UnitsError("harmonic order must be >= 1")
        return (self.frequency - self.sweep_width / 2.0) * order

    def band_edges(self, order=1):
        """(low, high) frequency of the swept band at a harmonic."""
        low = (self.frequency - self.sweep_width) * order
        high = self.frequency * order
        return low, high

    def lineshape(self, order):
        if order < 1:
            raise UnitsError("harmonic order must be >= 1")
        return SpreadSpectrumLine(self.sweep_width * order, profile=self.profile)
