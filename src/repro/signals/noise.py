"""Noise processes that clutter realistic spectra (Figure 5).

The paper stresses that visual carrier hunting fails because real spectra
contain a thermal floor, 1/f-ish low-frequency rise, and "gently rolling
hills and valleys" from randomly timed switching activity. These models
produce the *mean* noise power spectral density; the spectrum analyzer adds
the per-capture estimation fluctuations.

All densities are in milliwatts per Hz so a trace integrates to milliwatts.
"""

from __future__ import annotations

import numpy as np

from ..errors import UnitsError
from ..rng import ensure_rng
from ..units import dbm_to_milliwatts


class NoiseModel:
    """Base class: mean noise power density over a frequency grid."""

    def mean_density(self, frequencies):
        """Mean PSD (mW/Hz) at each frequency of the grid."""
        raise NotImplementedError


class ThermalNoise(NoiseModel):
    """Flat receiver noise floor.

    ``floor_dbm_per_hz`` defaults to a realistic receiver-referred density:
    thermal noise at room temperature is -174 dBm/Hz and a measurement chain
    adds a noise figure, so -165 dBm/Hz is typical for the paper's setup.
    """

    def __init__(self, floor_dbm_per_hz=-165.0):
        self.floor_dbm_per_hz = float(floor_dbm_per_hz)

    def mean_density(self, frequencies):
        density = dbm_to_milliwatts(self.floor_dbm_per_hz)
        return np.full(len(frequencies), density, dtype=float)


class PinkNoise(NoiseModel):
    """1/f^alpha rise toward low frequencies.

    ``knee`` is the frequency at which the pink component equals
    ``level_dbm_per_hz``; below it the density keeps rising as 1/f^alpha
    (clamped at 10 Hz to stay finite near DC).
    """

    def __init__(self, level_dbm_per_hz=-150.0, knee=100e3, alpha=1.0):
        if knee <= 0:
            raise UnitsError("knee frequency must be positive")
        if alpha <= 0:
            raise UnitsError("alpha must be positive")
        self.level_dbm_per_hz = float(level_dbm_per_hz)
        self.knee = float(knee)
        self.alpha = float(alpha)

    def mean_density(self, frequencies):
        level = dbm_to_milliwatts(self.level_dbm_per_hz)
        f = np.maximum(np.asarray(frequencies, dtype=float), 10.0)
        return level * (self.knee / f) ** self.alpha


class BroadbandHills(NoiseModel):
    """Randomly placed broad humps: the "rolling hills" of Figure 5.

    Draws ``n_hills`` Gaussian humps with log-uniform widths and random
    amplitudes across the band. The realization is fixed at construction
    (a given lab environment has a fixed hill landscape) so repeated
    captures see the same mean density — exactly the property that lets the
    FASE heuristic normalize hills away.
    """

    def __init__(
        self,
        span,
        n_hills=12,
        peak_dbm_per_hz=-152.0,
        min_width_fraction=0.01,
        max_width_fraction=0.12,
        rng=None,
    ):
        if span <= 0:
            raise UnitsError("span must be positive")
        if n_hills < 0:
            raise UnitsError("n_hills must be non-negative")
        if not 0 < min_width_fraction <= max_width_fraction:
            raise UnitsError("width fractions must satisfy 0 < min <= max")
        rng = ensure_rng(rng)
        self.span = float(span)
        peak = dbm_to_milliwatts(peak_dbm_per_hz)
        self.centers = rng.uniform(0.0, self.span, size=n_hills)
        widths = np.exp(
            rng.uniform(
                np.log(min_width_fraction * self.span),
                np.log(max_width_fraction * self.span),
                size=n_hills,
            )
        )
        self.widths = widths
        self.amplitudes = peak * rng.uniform(0.05, 1.0, size=n_hills)

    def mean_density(self, frequencies):
        f = np.asarray(frequencies, dtype=float)
        density = np.zeros_like(f)
        for center, width, amplitude in zip(self.centers, self.widths, self.amplitudes):
            z = (f - center) / width
            density += amplitude * np.exp(-0.5 * z * z)
        return density


class CompositeNoise(NoiseModel):
    """Sum of component noise models."""

    def __init__(self, components):
        self.components = list(components)

    def mean_density(self, frequencies):
        density = np.zeros(len(frequencies), dtype=float)
        for component in self.components:
            density += component.mean_density(frequencies)
        return density
