"""AM/FM side-band synthesis for alternation-modulated carriers.

This module turns "the micro-benchmark alternates activity X and activity Y
at frequency falt" into concrete spectral lines around a carrier, following
Section 2.1-2.2 of the paper:

* The alternation is (nearly) a square wave, so side-bands appear at
  ``fc ± k*falt`` with pulse-train Fourier magnitudes |c_k| = d*sinc(k*d).
* Execution-time jitter attenuates and broadens higher alternation
  harmonics ("the time each repetition takes is not always the same").
* The side-band *line shape* inherits the carrier's own instability
  (Figure 3), which the emitter applies when rendering; here we only carry
  the *extra* broadening contributed by the alternation jitter.

FM (constant-on-time regulators, Section 4.4) is modeled by dwell lines: the
oscillator spends a ``duty`` fraction of time at one switching frequency and
the rest at another. An incoherent (jittery) oscillator retains no phase
coherence across alternation periods, so no falt-spaced side-band comb
survives — the mechanism by which FASE correctly ignores FM carriers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import UnitsError
from .pulse import pulse_harmonic_amplitude


@dataclass(frozen=True)
class SpectralLine:
    """One spectral line relative to a carrier.

    ``offset``      frequency offset from the carrier in Hz (0 = the carrier
                    itself; ±k*falt for alternation side-bands).
    ``power``       line power in the emitter's linear power unit.
    ``extra_width`` additional Gaussian broadening (Hz, one sigma) to apply
                    on top of the carrier's own line shape.
    ``order``       which alternation harmonic produced the line (0 for the
                    carrier, ±k for side-bands); kept for diagnostics.
    """

    offset: float
    power: float
    extra_width: float = 0.0
    order: int = 0


def _jitter_attenuation(order, jitter_fraction):
    """Coherence loss of alternation harmonic ``order`` under timing jitter.

    With RMS period jitter ``jitter_fraction * Talt`` the phase of harmonic
    k wanders by ``2 pi k * jitter_fraction`` per alternation, giving the
    usual Gaussian coherence factor exp(-0.5 * (2 pi k j)^2).
    """
    phase_sigma = 2.0 * np.pi * abs(order) * jitter_fraction
    return float(np.exp(-0.5 * phase_sigma * phase_sigma))


def alternation_coefficients(n_harmonics, duty_cycle=0.5, jitter_fraction=0.0):
    """|c_k| for k = 1..n_harmonics of the jittered alternation waveform."""
    if jitter_fraction < 0:
        raise UnitsError("jitter fraction must be non-negative")
    orders = np.arange(1, n_harmonics + 1)
    base = np.array([pulse_harmonic_amplitude(int(k), duty_cycle) for k in orders])
    atten = np.array([_jitter_attenuation(int(k), jitter_fraction) for k in orders])
    return base * atten


def am_sideband_lines(
    amplitude_x,
    amplitude_y,
    falt,
    duty_cycle=0.5,
    n_harmonics=5,
    jitter_fraction=0.0,
    power_scale=1.0,
):
    """Spectral lines of a carrier whose amplitude alternates between X and Y.

    ``amplitude_x``/``amplitude_y`` are the carrier's envelope amplitudes
    (arbitrary linear units) during the X and Y halves of the alternation.
    Returns a list of :class:`SpectralLine` containing the carrier line at
    offset 0 and side-band lines at ±k*falt for k = 1..n_harmonics.

    Derivation: with pulse train p(t) of duty d, the envelope is
    ``A(t) = Ay + (Ax - Ay) p(t)`` whose mean is ``Abar = Ay + (Ax - Ay) d``
    and whose harmonic k has magnitude ``|c_k| (Ax - Ay)``. Mixing with the
    carrier puts power ``power_scale * Abar^2`` at fc and
    ``power_scale * |c_k|^2 (Ax - Ay)^2`` at each of fc ± k*falt.
    """
    if falt <= 0:
        raise UnitsError("alternation frequency must be positive")
    if amplitude_x < 0 or amplitude_y < 0:
        raise UnitsError("envelope amplitudes must be non-negative")
    if n_harmonics < 0:
        raise UnitsError("n_harmonics must be >= 0")
    mean_amp = amplitude_y + (amplitude_x - amplitude_y) * duty_cycle
    swing = amplitude_x - amplitude_y
    lines = [SpectralLine(offset=0.0, power=power_scale * mean_amp * mean_amp, order=0)]
    if swing == 0.0 or n_harmonics == 0:
        return lines
    coefficients = alternation_coefficients(n_harmonics, duty_cycle, jitter_fraction)
    for k, c_k in enumerate(coefficients, start=1):
        power = power_scale * (c_k * swing) ** 2
        if power <= 0:
            continue
        width = abs(k) * falt * jitter_fraction
        lines.append(SpectralLine(offset=k * falt, power=power, extra_width=width, order=k))
        lines.append(SpectralLine(offset=-k * falt, power=power, extra_width=width, order=-k))
    return lines


def fm_dwell_lines(frequency_x, frequency_y, duty_cycle=0.5, power=1.0, smear_fraction=0.1):
    """Dwell-time lines of an incoherent frequency-alternating oscillator.

    The oscillator runs at ``frequency_x`` for a ``duty_cycle`` fraction of
    each alternation and at ``frequency_y`` otherwise. Because the paper's
    constant-on-time regulator uses a jittery oscillator, the long-term
    spectrum is simply two humps weighted by dwell time — with no
    falt-tracking side-band comb for FASE to latch onto.

    Returns absolute-frequency :class:`SpectralLine` objects (``offset`` is
    the absolute frequency here; the FM emitter renders them directly).
    ``smear_fraction`` widens each hump by a fraction of the frequency
    separation, modeling the regulator's transient slewing between rates.
    """
    if frequency_x <= 0 or frequency_y <= 0:
        raise UnitsError("dwell frequencies must be positive")
    if not 0.0 <= duty_cycle <= 1.0:
        raise UnitsError("duty cycle must be within [0, 1]")
    separation = abs(frequency_x - frequency_y)
    width = max(separation * smear_fraction, 1e-9)
    return [
        SpectralLine(offset=frequency_x, power=power * duty_cycle, extra_width=width, order=1),
        SpectralLine(
            offset=frequency_y, power=power * (1.0 - duty_cycle), extra_width=width, order=-1
        ),
    ]


def modulation_depth_from_levels(amplitude_x, amplitude_y):
    """AM modulation depth m = |Ax - Ay| / (Ax + Ay), in [0, 1]."""
    if amplitude_x < 0 or amplitude_y < 0:
        raise UnitsError("envelope amplitudes must be non-negative")
    total = amplitude_x + amplitude_y
    if total == 0:
        return 0.0
    return abs(amplitude_x - amplitude_y) / total
