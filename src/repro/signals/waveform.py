"""Time-domain synthesis of modulated carriers (complex baseband IQ).

The frequency-domain renderer in :mod:`repro.system.emitter` is what the big
campaigns use, but a physical methodology deserves a physical cross-check:
these functions generate sampled waveforms of the same processes, which
:mod:`repro.spectrum.welch` turns back into spectra. Tests assert the two
paths agree on side-band positions and relative powers.

All synthesizers work at complex baseband: frequencies are offsets from the
capture center frequency, and the sample rate must exceed twice the largest
offset of interest.
"""

from __future__ import annotations

import numpy as np

from ..errors import UnitsError
from ..rng import ensure_rng


def _validate_duration(duration, sample_rate):
    if duration <= 0:
        raise UnitsError("duration must be positive")
    if sample_rate <= 0:
        raise UnitsError("sample rate must be positive")
    n_samples = int(round(duration * sample_rate))
    if n_samples < 2:
        raise UnitsError("duration too short for the sample rate")
    return n_samples


def synthesize_alternation_envelope(
    duration,
    sample_rate,
    falt,
    level_x,
    level_y,
    duty_cycle=0.5,
    jitter_fraction=0.0,
    rng=None,
):
    """Envelope a(t) of the X/Y alternation micro-benchmark.

    Simulates successive alternation periods whose durations are perturbed
    by Gaussian jitter (fraction of the nominal period), switching the
    envelope between ``level_x`` (for ``duty_cycle`` of each period) and
    ``level_y``. This is the "nearly square wave" of Section 2.2.
    """
    if falt <= 0:
        raise UnitsError("alternation frequency must be positive")
    if not 0.0 < duty_cycle < 1.0:
        raise UnitsError("duty cycle must be in (0, 1) for an alternation")
    n_samples = _validate_duration(duration, sample_rate)
    rng = ensure_rng(rng)
    nominal_period = 1.0 / falt
    envelope = np.empty(n_samples, dtype=float)
    # Edges are placed by rounding *absolute* switching times, never by
    # rounding each period to whole samples: a period of ~15 samples
    # rounded per-cycle would quantize falt to fs/k steps and collapse the
    # campaign's closely spaced alternation frequencies onto one value.
    t = 0.0
    filled = 0
    while filled < n_samples:
        period = nominal_period
        if jitter_fraction > 0:
            period *= max(1.0 + jitter_fraction * rng.standard_normal(), 0.1)
        x_edge = min(int(round((t + duty_cycle * period) * sample_rate)), n_samples)
        period_edge = min(int(round((t + period) * sample_rate)), n_samples)
        if x_edge > filled:
            envelope[filled:x_edge] = level_x
            filled = x_edge
        if period_edge > filled:
            envelope[filled:period_edge] = level_y
            filled = period_edge
        t += period
    return envelope


def synthesize_carrier_iq(
    duration,
    sample_rate,
    frequency_offset,
    line_sigma=0.0,
    wander_time=1e-3,
    rng=None,
):
    """Complex tone with slow Gaussian frequency wander.

    ``line_sigma`` is the one-sigma linewidth (Hz). The instantaneous
    frequency follows an Ornstein-Uhlenbeck process with correlation time
    ``wander_time``; when the wander is slow compared to the linewidth the
    quasi-static approximation holds and the long-term line shape is the
    Gaussian marginal of the process — matching :class:`GaussianLine`.
    """
    n_samples = _validate_duration(duration, sample_rate)
    rng = ensure_rng(rng)
    dt = 1.0 / sample_rate
    if line_sigma > 0:
        theta = dt / wander_time
        if theta >= 1.0:
            raise UnitsError("wander_time too short for this sample rate")
        # AR(1) form of the OU recursion, vectorized through lfilter:
        # x[i] = (1 - theta) x[i-1] + sigma sqrt(2 theta) w[i]
        from scipy.signal import lfilter

        noise = rng.standard_normal(n_samples)
        scale = line_sigma * np.sqrt(2.0 * theta)
        initial = line_sigma * rng.standard_normal()
        deviations = lfilter(
            [scale], [1.0, -(1.0 - theta)], noise, zi=[(1.0 - theta) * initial]
        )[0]
        instantaneous = frequency_offset + deviations
    else:
        instantaneous = np.full(n_samples, frequency_offset, dtype=float)
    phase = 2.0 * np.pi * np.cumsum(instantaneous) * dt
    return np.exp(1j * phase)


def synthesize_am_iq(
    duration,
    sample_rate,
    frequency_offset,
    falt,
    amplitude_x,
    amplitude_y,
    duty_cycle=0.5,
    jitter_fraction=0.0,
    line_sigma=0.0,
    rng=None,
):
    """Carrier whose envelope alternates between two amplitudes at falt."""
    rng = ensure_rng(rng)
    carrier = synthesize_carrier_iq(
        duration, sample_rate, frequency_offset, line_sigma=line_sigma, rng=rng
    )
    envelope = synthesize_alternation_envelope(
        duration,
        sample_rate,
        falt,
        amplitude_x,
        amplitude_y,
        duty_cycle=duty_cycle,
        jitter_fraction=jitter_fraction,
        rng=rng,
    )
    return carrier * envelope


def synthesize_fm_iq(
    duration,
    sample_rate,
    frequency_x,
    frequency_y,
    falt,
    duty_cycle=0.5,
    jitter_fraction=0.02,
    rng=None,
):
    """Constant-on-time-regulator style FM: frequency alternates with load.

    The instantaneous frequency switches between ``frequency_x`` and
    ``frequency_y`` (offsets from capture center) following the alternation
    envelope; phase is continuous. Per-period jitter decoheres the comb, as
    in the AMD regulator the paper confirms FASE correctly ignores.
    """
    n_samples = _validate_duration(duration, sample_rate)
    rng = ensure_rng(rng)
    selector = synthesize_alternation_envelope(
        duration,
        sample_rate,
        falt,
        1.0,
        0.0,
        duty_cycle=duty_cycle,
        jitter_fraction=jitter_fraction,
        rng=rng,
    )
    instantaneous = frequency_y + (frequency_x - frequency_y) * selector
    dt = 1.0 / sample_rate
    phase = 2.0 * np.pi * np.cumsum(instantaneous) * dt
    return np.exp(1j * phase[:n_samples])


def synthesize_spread_spectrum_iq(
    duration,
    sample_rate,
    top_frequency_offset,
    sweep_width,
    sweep_period=100e-6,
    profile="sinusoidal",
    rng=None,
):
    """Swept clock at baseband: frequency swept down ``sweep_width`` Hz.

    Mirrors :class:`SpreadSpectrumClock`: a sinusoidal profile dwells at the
    band edges (arcsine density), a triangular profile dwells uniformly.
    """
    if sweep_width <= 0 or sweep_period <= 0:
        raise UnitsError("sweep width and period must be positive")
    if profile not in ("sinusoidal", "triangular"):
        raise UnitsError(f"unknown sweep profile {profile!r}")
    n_samples = _validate_duration(duration, sample_rate)
    t = np.arange(n_samples) / sample_rate
    phase_in_sweep = (t / sweep_period) % 1.0
    if profile == "sinusoidal":
        position = 0.5 - 0.5 * np.cos(2.0 * np.pi * phase_in_sweep)
    else:
        position = 2.0 * np.abs(phase_in_sweep - 0.5)
    instantaneous = top_frequency_offset - sweep_width * position
    dt = 1.0 / sample_rate
    phase = 2.0 * np.pi * np.cumsum(instantaneous) * dt
    return np.exp(1j * phase)
