"""Signal-theory primitives: pulse trains, line shapes, modulation, noise.

This subpackage implements the spectral mathematics of Section 2.1 of the
paper: Fourier series of rectangular pulse trains (carrier harmonics as a
function of duty cycle), non-ideal oscillator line shapes, AM side-band
structure for square-wave modulating activity, and the noise processes that
make real spectra hard to read by eye.
"""

from .pulse import (
    pulse_harmonic_amplitude,
    pulse_harmonic_amplitudes,
    pulse_harmonic_power,
    duty_cycle_sensitivity,
)
from .lineshape import (
    LineShape,
    DeltaLine,
    GaussianLine,
    LorentzianLine,
    SpreadSpectrumLine,
)
from .oscillator import Oscillator, CrystalOscillator, RCOscillator, SpreadSpectrumClock
from .modulation import (
    SpectralLine,
    alternation_coefficients,
    am_sideband_lines,
    fm_dwell_lines,
    modulation_depth_from_levels,
)
from .noise import NoiseModel, ThermalNoise, PinkNoise, BroadbandHills, CompositeNoise
from .waveform import (
    synthesize_carrier_iq,
    synthesize_alternation_envelope,
    synthesize_am_iq,
    synthesize_fm_iq,
    synthesize_spread_spectrum_iq,
)

__all__ = [
    "pulse_harmonic_amplitude",
    "pulse_harmonic_amplitudes",
    "pulse_harmonic_power",
    "duty_cycle_sensitivity",
    "LineShape",
    "DeltaLine",
    "GaussianLine",
    "LorentzianLine",
    "SpreadSpectrumLine",
    "Oscillator",
    "CrystalOscillator",
    "RCOscillator",
    "SpreadSpectrumClock",
    "SpectralLine",
    "alternation_coefficients",
    "am_sideband_lines",
    "fm_dwell_lines",
    "modulation_depth_from_levels",
    "NoiseModel",
    "ThermalNoise",
    "PinkNoise",
    "BroadbandHills",
    "CompositeNoise",
    "synthesize_carrier_iq",
    "synthesize_alternation_envelope",
    "synthesize_am_iq",
    "synthesize_fm_iq",
    "synthesize_spread_spectrum_iq",
]
