"""Fourier series of rectangular pulse trains.

Section 2.1 of the paper: "The spectrum of a pulse train with an arbitrary
duty cycle is equivalent via Fourier analysis to a set of sinusoids with
various amplitudes at fc and its multiples (harmonics)."

For a pulse train of unit amplitude, period ``T`` and duty cycle ``d`` the
complex Fourier coefficient of harmonic ``n`` has magnitude

    |c_n| = d * |sinc(n * d)|        (sinc(x) = sin(pi x) / (pi x))

which captures every property the paper leans on:

* at ``d = 0.5`` the even harmonics vanish and the odd ones are maximal;
* for small duty cycles (< 10 %) the first few harmonics (even and odd)
  decay approximately linearly and are of similar strength;
* every harmonic's amplitude is a function of the duty cycle, so pulse-width
  modulation amplitude-modulates *all* harmonics simultaneously (this is the
  physical mechanism behind the switching-regulator carriers FASE finds).
"""

from __future__ import annotations

import numpy as np

from ..errors import UnitsError


def _validate_duty(duty_cycle):
    if not 0.0 <= duty_cycle <= 1.0:
        raise UnitsError(f"duty cycle must be within [0, 1], got {duty_cycle}")


def pulse_harmonic_amplitude(harmonic, duty_cycle):
    """Magnitude of the Fourier coefficient of one harmonic of a pulse train.

    ``harmonic`` 0 returns the DC component (equal to the duty cycle).
    Negative harmonics mirror positive ones (real signal).
    """
    _validate_duty(duty_cycle)
    n = abs(int(harmonic))
    if n == 0:
        return duty_cycle
    return duty_cycle * abs(np.sinc(n * duty_cycle))


def pulse_harmonic_amplitudes(n_harmonics, duty_cycle):
    """Vector of |c_n| for n = 1..n_harmonics."""
    _validate_duty(duty_cycle)
    if n_harmonics < 1:
        raise UnitsError("n_harmonics must be >= 1")
    orders = np.arange(1, n_harmonics + 1)
    return duty_cycle * np.abs(np.sinc(orders * duty_cycle))


def pulse_harmonic_power(harmonic, duty_cycle):
    """One-sided power of a harmonic (combining the +n and -n coefficients).

    For a unit-amplitude train the tone at harmonic ``n`` is
    ``2|c_n| cos(2 pi n f t + phi)`` whose mean-square power is ``2 |c_n|^2``.
    """
    amplitude = pulse_harmonic_amplitude(harmonic, duty_cycle)
    if int(harmonic) == 0:
        return amplitude * amplitude
    return 2.0 * amplitude * amplitude


def duty_cycle_sensitivity(harmonic, duty_cycle, delta=1e-6):
    """d|c_n|/dd — how strongly harmonic ``n`` responds to PWM.

    A switching regulator compensates for load current by moving its duty
    cycle; this derivative is the small-signal AM gain of each harmonic.
    Computed by a symmetric finite difference (the closed form has a
    removable kink at sinc zero crossings).
    """
    _validate_duty(duty_cycle)
    lo = max(duty_cycle - delta, 0.0)
    hi = min(duty_cycle + delta, 1.0)
    if hi == lo:
        raise UnitsError("duty cycle interval collapsed; use a smaller delta")
    return (
        pulse_harmonic_amplitude(harmonic, hi) - pulse_harmonic_amplitude(harmonic, lo)
    ) / (hi - lo)
