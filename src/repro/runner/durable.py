"""Durable campaign execution: checkpoint, resume, watchdog, salvage.

:class:`DurableCampaign` is a :class:`~repro.core.campaign.MeasurementCampaign`
whose execution survives the three ways an hours-long run dies in
practice:

* **a crash or kill** — every completed capture is checkpointed to a
  :class:`~repro.runner.journal.CampaignJournal` the moment the analyzer
  returns; rerunning the same campaign over the same journal resumes from
  the last good capture and, for the same seed, produces a result
  byte-identical to an uninterrupted run;
* **a hung capture** — every attempt runs under a
  :class:`~repro.runner.watchdog.CaptureWatchdog` wall-clock deadline
  (``FaseConfig.capture_timeout_s``); a timed-out attempt is abandoned
  and retried on a fresh derived stream after a bounded exponential
  backoff (``FaseConfig.retry_backoff_s``), up to
  ``FaseConfig.max_capture_retries`` extra attempts;
* **persistent per-capture failure** — a capture that exhausts its
  budget is dropped, and the campaign is *salvaged*: as long as at least
  ``min_good_captures`` usable falts remain, the run completes with the
  damage ledgered in ``result.robustness`` and scoring running
  leave-one-out, instead of aborting.

Byte-identical resume is possible because durable captures run on the
per-measurement derived random streams (``analyzer:{index}``) — exactly
the clean parallel path's streams — so every capture is a pure function
of (seed, index, attempt) regardless of where a previous run died. The
serial shared-stream path cannot be resumed mid-way and is therefore not
used here; an uninterrupted durable run equals the ``n_workers > 1``
clean run trace-for-trace.

Resume *references* checkpoints instead of copying them: journal records
are written uncompressed (``ZIP_STORED``), so restoring a completed
capture memory-maps its trace read-only straight out of the checkpoint
file (:func:`repro.io.mmap_npz_member`) — resuming a mostly-done
campaign costs O(captures left to run), not O(bins already captured).
"""

from __future__ import annotations

import time

from ..core.campaign import CampaignMeasurement, CampaignResult, MeasurementCampaign
from ..errors import CampaignError, CaptureTimeoutError, DegradedCampaignError, JournalError
from ..faults.injectors import FaultEvent
from ..faults.robustness import TIMEOUT_FAULT, RobustnessReport
from ..telemetry import current_telemetry, record_campaign_ledger
from .journal import CampaignJournal, campaign_fingerprint
from .watchdog import CaptureWatchdog, backoff_delay


class DurableCampaign(MeasurementCampaign):
    """A measurement campaign with checkpoint/resume and per-capture timeouts.

    ``journal_dir`` is the checkpoint directory for this one campaign
    (one journal per campaign — ``run_fase`` derives one per activity
    pair under its ``checkpoint_dir``). ``resume=True`` (default)
    continues an existing journal after verifying its fingerprint;
    ``resume=False`` refuses to touch an existing journal so a stale
    checkpoint is never silently overwritten. ``min_good_captures``
    bounds salvage: fewer usable captures than this raises
    :class:`DegradedCampaignError` (the Eq. 2 cross-normalization needs
    at least two). ``sleep`` is injectable for tests.

    Composes with ``fault_plan``: attempts go through the fault-injecting
    analyzer and cohort screening exactly as on the degraded path, with
    each successful capture journaled as it lands.
    """

    def __init__(
        self,
        machine,
        config,
        journal_dir,
        latency_model=None,
        rng=None,
        fault_plan=None,
        resume=True,
        min_good_captures=2,
        sleep=None,
    ):
        super().__init__(
            machine, config, latency_model=latency_model, rng=rng, fault_plan=fault_plan
        )
        if min_good_captures < 2:
            raise CampaignError("min_good_captures must be >= 2 (Eq. 2 needs two spectra)")
        self.journal = CampaignJournal(journal_dir)
        self.resume = bool(resume)
        self.min_good_captures = int(min_good_captures)
        self._sleep = sleep if sleep is not None else time.sleep
        #: Capture indices restored from the journal by the last run.
        self.resumed_indices = ()

    # ------------------------------------------------------------------

    def run_with_activities(self, activities, label=None):
        if len(activities) < 2:
            raise CampaignError("need at least two activities (one per falt)")
        grid = self.config.grid()
        label = label or activities[0].label or "activity"
        self._open_or_create_journal(activities, label)
        with current_telemetry().span(
            "campaign", label=label, n_falts=len(activities), durable=True
        ):
            return self._run_durable(activities, label, grid)

    def _run_durable(self, activities, label, grid):
        n = len(activities)
        max_retries = self.config.max_capture_retries
        traces = [None] * n
        attempts = [0] * n
        index_events = [[] for _ in range(n)]
        excluded = {}

        # Restore journaled captures. A record whose falt disagrees with
        # the planned activity is stale (the fingerprint guards against
        # this, but a damaged header could let one through) and is redone.
        telemetry = current_telemetry()
        resumed = []
        for index, record in sorted(self.journal.records(grid).items()):
            if index >= n:
                continue
            planned = activities[index].falt
            if abs(record.activity.falt - planned) > 1e-9 * max(abs(planned), 1.0):
                continue
            traces[index] = record.trace
            attempts[index] = record.attempt
            index_events[index] = list(record.events)
            resumed.append(index)
            telemetry.event(
                "capture-resumed",
                index=index,
                attempt=record.attempt,
                n_journaled_events=len(record.events),
            )
        self.resumed_indices = tuple(resumed)

        watchdog = CaptureWatchdog(self.config.capture_timeout_s)

        def one_attempt(index):
            """One watchdogged capture attempt; returns a trace or None."""
            attempt = attempts[index]
            try:
                if self.fault_plan is not None:
                    trace, events = watchdog.run(
                        lambda: self._degraded_attempt(activities, label, grid, index, attempt),
                        index=index,
                        attempt=attempt,
                    )
                    index_events[index].extend(events)
                    return trace
                measurement = watchdog.run(
                    lambda: self.capture_index(activities, label, grid, index, attempt),
                    index=index,
                    attempt=attempt,
                )
                return measurement.trace
            except CaptureTimeoutError:
                index_events[index].append(
                    FaultEvent(
                        fault=TIMEOUT_FAULT,
                        index=index,
                        attempt=attempt,
                        detail=(
                            f"exceeded {self.config.capture_timeout_s:g} s wall clock; "
                            "attempt abandoned"
                        ),
                    )
                )
                telemetry.event(
                    "capture-timeout",
                    index=index,
                    attempt=attempt,
                    deadline_s=self.config.capture_timeout_s,
                )
                return None

        def capture_with_retries(index):
            """Attempt until a trace lands or the budget runs out.

            Journals the capture on success; on exhaustion records the
            exclusion and leaves ``traces[index]`` as-is (``None`` in the
            first stage; the last journaled trace during screening
            retries, mirroring the degraded path's drop semantics there).
            """
            while True:
                trace = one_attempt(index)
                if trace is not None:
                    traces[index] = trace
                    self.journal.append(
                        index, attempts[index], activities[index], trace,
                        events=index_events[index],
                    )
                    return True
                if attempts[index] >= max_retries:
                    traces[index] = None
                    excluded[index] = (
                        f"capture failed on all {attempts[index] + 1} attempt(s)",
                    )
                    return False
                attempts[index] += 1
                delay = backoff_delay(attempts[index], self.config.retry_backoff_s)
                if delay > 0:
                    self._sleep(delay)

        # Stage 1: capture every index not restored from the journal.
        for index in range(n):
            if traces[index] is None:
                capture_with_retries(index)

        # Stage 2 (fault plan only): cohort screening with bounded
        # retries, recomputing the reference after each retry round. Pure
        # in the traces, so a resumed run replays it identically.
        qualities = {}
        if self.fault_plan is not None:
            screen = self.fault_plan.screen
            while True:
                present = [index for index in range(n) if traces[index] is not None]
                if len(present) < 2:
                    break
                reference = screen.reference([traces[index] for index in present])
                qualities = {
                    index: screen.assess(traces[index], reference) for index in present
                }
                retry = [
                    index
                    for index in present
                    if not qualities[index].ok and attempts[index] < max_retries
                ]
                if not retry:
                    break
                for index in retry:
                    attempts[index] += 1
                    delay = backoff_delay(attempts[index], self.config.retry_backoff_s)
                    if delay > 0:
                        self._sleep(delay)
                    capture_with_retries(index)

        # Stage 3: assemble, salvage, report.
        measurements = []
        for index, activity in enumerate(activities):
            trace = traces[index]
            if trace is None:
                continue
            quality = qualities.get(index)
            flagged = quality is not None and not quality.ok
            if flagged:
                excluded[index] = quality.reasons
                telemetry.event(
                    "screen-rejection", index=index, reasons=list(quality.reasons)
                )
            measurements.append(
                CampaignMeasurement(
                    falt=activity.falt,
                    activity=activity,
                    trace=trace,
                    flagged=flagged,
                    quality=quality,
                )
            )
        dropped = tuple(index for index in range(n) if traces[index] is None)
        events = [event for per_index in index_events for event in per_index]
        retries = {index: attempts[index] for index in range(n) if attempts[index] > 0}

        robustness = None
        if self.fault_plan is not None or events or retries or excluded:
            plan_description = (
                self.fault_plan.describe()
                if self.fault_plan is not None
                else "durable execution (no fault plan)"
            )
            robustness = RobustnessReport(
                plan_description=plan_description,
                events=events,
                retries=retries,
                excluded=excluded,
                dropped=dropped,
            )

        result = CampaignResult(
            config=self.config,
            machine_name=self.machine.name,
            activity_label=label,
            measurements=measurements,
            robustness=robustness,
        )
        record_campaign_ledger(
            telemetry, measurements, robustness, resumed=self.resumed_indices
        )
        usable = len(result.included_measurements)
        if usable < self.min_good_captures:
            raise DegradedCampaignError(
                f"only {usable} usable capture(s) of {n} survived durable execution "
                f"(minimum {self.min_good_captures})",
                robustness=robustness,
            )
        return result.validate()

    # ------------------------------------------------------------------

    def _open_or_create_journal(self, activities, label):
        fingerprint = campaign_fingerprint(self.config, self.machine.name, label, self.rng)
        if self.journal.exists():
            if not self.resume:
                raise JournalError(
                    f"a campaign journal already exists at "
                    f"{str(self.journal.directory)!r}; pass resume=True "
                    "(CLI: --resume) to continue it, or remove the directory"
                )
            self.journal.open(fingerprint)
        else:
            self.journal.create(
                fingerprint,
                self.config,
                self.machine.name,
                label,
                [activity.falt for activity in activities],
            )


def recover_campaign(journal_dir):
    """Rebuild a :class:`CampaignResult` from a journal alone.

    The recovery half of crash-safe persistence: when the final ``.npz``
    archive is lost or corrupted, the journal's checkpointed captures are
    enough to reconstruct the campaign (config, machine, activities, and
    every valid trace — screening flags are not journaled, so recovered
    measurements come back unflagged). Raises :class:`JournalError` when
    fewer than two captures are recoverable.

    The journaled per-capture history (fault and timeout events, retry
    attempts) is replayed into a :class:`RobustnessReport` on
    ``result.robustness`` whenever any capture recorded one, so a
    recovered campaign still accounts for how its captures were earned —
    this is what ``repro analyze --journal`` prints as resume context.
    """
    journal = CampaignJournal(journal_dir).open()
    config = journal.config()
    grid = config.grid()
    records = journal.records(grid)
    if len(records) < 2:
        raise JournalError(
            f"journal at {str(journal.directory)!r} holds only {len(records)} "
            "recoverable capture(s); the heuristic needs at least two"
        )
    result = CampaignResult(
        config=config,
        machine_name=journal.header["machine_name"],
        activity_label=journal.header["activity_label"],
    )
    events = []
    retries = {}
    telemetry = current_telemetry()
    for index in sorted(records):
        record = records[index]
        result.measurements.append(
            CampaignMeasurement(
                falt=float(record.activity.falt),
                activity=record.activity,
                trace=record.trace,
            )
        )
        events.extend(record.events)
        if record.attempt > 0:
            retries[index] = record.attempt
        telemetry.event(
            "capture-recovered",
            index=index,
            attempt=record.attempt,
            n_journaled_events=len(record.events),
        )
    if events or retries:
        result.robustness = RobustnessReport(
            plan_description=(
                f"recovered from journal {str(journal.directory)!r} "
                f"({len(records)} checkpointed capture(s))"
            ),
            events=events,
            retries=retries,
        )
    return result.validate()
