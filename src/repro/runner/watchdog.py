"""Per-capture wall-clock timeouts and bounded exponential backoff.

A hung capture — an analyzer call that never returns — would otherwise
stall an hours-long campaign forever. :class:`CaptureWatchdog` runs each
capture attempt on its own watchdog worker thread and enforces a
wall-clock deadline: past the deadline the attempt is *abandoned* and
:class:`~repro.errors.CaptureTimeoutError` raised to the caller, which
retries on a fresh stream or drops the capture.

Python cannot forcibly kill a thread, so "cancel" here means abandon:
the hung call keeps running on a daemon thread, its eventual result (if
any) is discarded, and the process can still exit cleanly. Each attempt
gets a fresh worker thread precisely so an abandoned hang can never
poison a shared pool slot and starve later captures.
"""

from __future__ import annotations

import threading

from ..errors import CaptureTimeoutError

#: Ceiling on any single backoff delay, seconds.
MAX_BACKOFF_S = 30.0


def backoff_delay(retry, base_s, cap_s=MAX_BACKOFF_S):
    """Delay before retry number ``retry`` (1-based): base · 2^(retry-1), capped."""
    if base_s <= 0 or retry < 1:
        return 0.0
    return float(min(base_s * (2.0 ** (retry - 1)), cap_s))


class CaptureWatchdog:
    """Run capture callables under a wall-clock deadline.

    ``timeout_s=None`` disables the watchdog (direct call, zero
    overhead) — the default for campaigns that never hang, and the
    byte-identical baseline for ones that do: the watchdog never touches
    random streams, so a run that stays under its deadlines returns
    exactly what an unwatched run would.
    """

    def __init__(self, timeout_s=None):
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("watchdog timeout must be positive (or None to disable)")
        self.timeout_s = timeout_s

    def run(self, fn, index=None, attempt=None):
        """Call ``fn()``; raise :class:`CaptureTimeoutError` past the deadline.

        Exceptions from ``fn`` propagate unchanged (a fault-plan drop must
        still look like a drop). On timeout the worker thread is abandoned
        and keeps running detached until the process exits.
        """
        if self.timeout_s is None:
            return fn()
        outcome = []
        done = threading.Event()

        def worker():
            try:
                outcome.append(("ok", fn()))
            except BaseException as exc:  # delivered to the caller below
                outcome.append(("raised", exc))
            finally:
                done.set()

        thread = threading.Thread(
            target=worker,
            daemon=True,
            name=f"fase-capture-{index}-a{attempt}",
        )
        thread.start()
        if not done.wait(self.timeout_s):
            raise CaptureTimeoutError(
                f"capture {index} attempt {attempt} exceeded the "
                f"{self.timeout_s:g} s wall-clock deadline",
                index=index,
                attempt=attempt,
            )
        kind, value = outcome[0]
        if kind == "raised":
            raise value
        return value
