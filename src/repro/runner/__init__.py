"""Durable campaign execution: checkpoint/resume, timeouts, salvage.

A real FASE survey records spectra over hours; this package makes the
*execution* of such a campaign robust to interruption, hangs, and partial
state (the :mod:`repro.faults` package already makes it robust to bad
data):

* :mod:`~repro.runner.journal` — :class:`CampaignJournal`, the
  append-only, crash-safe (atomic tmp + ``os.replace``, fsync'd,
  checksummed) on-disk checkpoint of completed captures;
* :mod:`~repro.runner.watchdog` — :class:`CaptureWatchdog` wall-clock
  deadlines per capture attempt, and the bounded exponential
  :func:`backoff_delay`;
* :mod:`~repro.runner.durable` — :class:`DurableCampaign`, the
  checkpointing/resuming/salvaging campaign runner, and
  :func:`recover_campaign`, which rebuilds a result from a journal when
  the final archive is lost.

Entry points: ``DurableCampaign`` directly, ``run_fase(...,
checkpoint_dir=...)``, or the CLI's ``--checkpoint-dir``/``--resume``/
``--capture-timeout`` flags.
"""

from .durable import DurableCampaign, recover_campaign
from .journal import (
    CAPTURE_FIELDS,
    JOURNAL_FORMAT,
    RECORD_FORMAT,
    CampaignJournal,
    JournalRecord,
    atomic_write,
    campaign_fingerprint,
    journal_dirname,
)
from .watchdog import MAX_BACKOFF_S, CaptureWatchdog, backoff_delay

__all__ = [
    "CAPTURE_FIELDS",
    "JOURNAL_FORMAT",
    "MAX_BACKOFF_S",
    "RECORD_FORMAT",
    "CampaignJournal",
    "CaptureWatchdog",
    "DurableCampaign",
    "JournalRecord",
    "atomic_write",
    "backoff_delay",
    "campaign_fingerprint",
    "journal_dirname",
    "recover_campaign",
]
