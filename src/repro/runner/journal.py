"""Append-only, crash-safe checkpoint journal for FASE campaigns.

A real FASE survey records spectra over hours; losing the whole campaign
to a crash at capture 4 of 5 wastes everything the run already earned.
:class:`CampaignJournal` checkpoints each completed capture to its own
record file as soon as the analyzer returns, so a killed run resumes from
the last good capture instead of from scratch.

Durability model
----------------

The journal is a directory. Every write — the header and each capture
record — goes through the same crash-safe sequence: write a sibling
``*.tmp`` file, flush and ``fsync`` it, ``os.replace`` it over the final
name, then ``fsync`` the directory so the rename itself is durable. A
kill at any point leaves either the old state or the new state on disk,
never a half-written record under a valid name; stray ``*.tmp`` files are
simply ignored on resume.

Records are append-only: a capture retry writes a *new* record file
(``record-00003-a1.npz``) rather than mutating the old one, and resume
takes the highest valid attempt per index. Every record carries the
format marker and a SHA-256 checksum over its identity fields and trace
bytes; a record that fails to load, fails its checksum, or disagrees with
the campaign grid is skipped — its capture is simply redone, which is
always safe because captures are pure functions of (seed, index,
attempt).
"""

from __future__ import annotations

import hashlib
import io as _io
import json
import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import JournalError
from ..faults.injectors import FaultEvent
from ..io import (
    _activity_from_dict,
    _activity_to_dict,
    _config_from_dict,
    _config_to_dict,
    _fsync_directory,
    _write_npz_deterministic,
    mmap_npz_member,
)
from ..spectrum.trace import SpectrumTrace

#: Format marker of the journal header, for forward compatibility.
JOURNAL_FORMAT = "fase-journal-v1"
#: Format marker of each capture record.
RECORD_FORMAT = "fase-journal-record-v1"

_HEADER_NAME = "HEADER.json"
_RECORD_RE = re.compile(r"^record-(\d{5})-a(\d+)\.npz$")


def journal_dirname(label):
    """A filesystem-safe journal directory name for a label.

    Shared by ``run_fase`` (per activity-pair journals) and the survey
    engine (per-shard journals), so both layers map labels like
    ``"LDM/LDL1"`` or ``"corei7_desktop:LDM/LDL1:0-4MHz"`` onto the same
    on-disk names.
    """
    return "".join(ch if ch.isalnum() or ch in "._-" else "-" for ch in label)

#: Capture-relevant config fields: the ones that change what a capture
#: *measures*. Runtime knobs (workers, timeouts, retry budgets) are
#: deliberately excluded so tuning them between runs never orphans a
#: journal. Shared with the survey manifest's plan fingerprint.
CAPTURE_FIELDS = (
    "span_low",
    "span_high",
    "fres",
    "falt1",
    "f_delta",
    "n_alternations",
    "n_averages",
)
_CAPTURE_FIELDS = CAPTURE_FIELDS


def atomic_write(path, data):
    """Crash-safe write: tmp sibling, fsync, rename over, fsync the dir.

    The one durability primitive every journal layer shares (campaign
    headers and records here, the survey manifest's header): a kill at
    any point leaves either the old bytes or the new bytes under the
    final name, never a torn file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


_atomic_write = atomic_write


def campaign_fingerprint(config, machine_name, activity_label, rng):
    """Identity of one campaign: what it measures and from which seed.

    Two runs with the same fingerprint produce byte-identical captures,
    so resuming one from the other's journal is sound. The fingerprint
    covers the capture-relevant config fields, the machine, the activity
    label, and the root generator's seed material (entropy *and* spawn
    key — ``run_fase`` derives one child stream per pair).
    """
    config_dict = _config_to_dict(config)
    seed_seq = rng.bit_generator.seed_seq
    payload = {
        "config": {name: config_dict[name] for name in _CAPTURE_FIELDS},
        "machine_name": machine_name,
        "activity_label": activity_label,
        "entropy": str(seed_seq.entropy),
        "spawn_key": [int(key) for key in seed_seq.spawn_key],
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


def _record_checksum(index, attempt, falt, power):
    digest = hashlib.sha256()
    digest.update(
        json.dumps([RECORD_FORMAT, int(index), int(attempt), repr(float(falt))]).encode("utf-8")
    )
    digest.update(np.ascontiguousarray(power).tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One journaled capture, decoded and checksum-verified."""

    index: int
    attempt: int
    activity: object  # AlternationActivity
    trace: object  # SpectrumTrace
    events: tuple  # FaultEvent ledger accumulated for this index


class CampaignJournal:
    """On-disk checkpoint journal of one campaign's completed captures.

    ``directory`` is created on :meth:`create`; :meth:`exists` reports
    whether a header is already present, :meth:`open` validates it
    (format marker, optional fingerprint match), :meth:`append`
    checkpoints one capture, and :meth:`records` returns the best valid
    record per capture index for resume.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self._header = None

    # -- header -------------------------------------------------------

    @property
    def header(self):
        if self._header is None:
            raise JournalError(f"journal at {str(self.directory)!r} is not open")
        return self._header

    def exists(self):
        return (self.directory / _HEADER_NAME).is_file()

    def create(self, fingerprint, config, machine_name, activity_label, falts):
        """Start a fresh journal (atomic header write)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        header = {
            "format": JOURNAL_FORMAT,
            "fingerprint": fingerprint,
            "config": _config_to_dict(config),
            "machine_name": machine_name,
            "activity_label": activity_label,
            "falts": [float(falt) for falt in falts],
        }
        _atomic_write(
            self.directory / _HEADER_NAME,
            json.dumps(header, indent=2, sort_keys=True).encode("utf-8"),
        )
        self._header = header
        return self

    def open(self, fingerprint=None):
        """Load and validate an existing journal header.

        With ``fingerprint`` given, a mismatch (different campaign, seed,
        or machine in the same directory) raises :class:`JournalError`
        rather than silently splicing foreign captures into this run.
        """
        path = self.directory / _HEADER_NAME
        if not path.is_file():
            raise JournalError(f"no campaign journal at {str(self.directory)!r}")
        try:
            header = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"journal header at {str(path)!r} is unreadable: {exc}"
            ) from exc
        if header.get("format") != JOURNAL_FORMAT:
            raise JournalError(
                f"unsupported journal format {header.get('format')!r} at {str(path)!r}"
            )
        if fingerprint is not None and header.get("fingerprint") != fingerprint:
            raise JournalError(
                f"journal at {str(self.directory)!r} belongs to a different campaign "
                "(config/machine/seed fingerprint mismatch); remove the directory or "
                "point --checkpoint-dir elsewhere"
            )
        self._header = header
        return self

    def config(self):
        return _config_from_dict(self.header["config"])

    # -- records ------------------------------------------------------

    def append(self, index, attempt, activity, trace, events=()):
        """Checkpoint one completed capture (atomic, fsync'd).

        ``events`` is the *cumulative* fault/timeout ledger for this
        capture index (all attempts so far), so resuming from the latest
        record alone reconstructs the full per-index history.
        """
        meta = {
            "format": RECORD_FORMAT,
            "index": int(index),
            "attempt": int(attempt),
            "falt": float(activity.falt),
            "activity": _activity_to_dict(activity),
            "trace_label": trace.label,
            "events": [
                {
                    "fault": event.fault,
                    "index": event.index,
                    "attempt": event.attempt,
                    "detail": event.detail,
                }
                for event in events
            ],
            "checksum": _record_checksum(index, attempt, activity.falt, trace.power_mw),
        }
        buffer = _io.BytesIO()
        # Records are written uncompressed (ZIP_STORED) so a resume can
        # memory-map the power member straight out of the checkpoint file
        # instead of copying it onto the heap; the loader still accepts
        # compressed records written by earlier versions.
        _write_npz_deterministic(
            buffer, {"meta": json.dumps(meta), "power": trace.power_mw}, compress=False
        )
        name = f"record-{int(index):05d}-a{int(attempt)}.npz"
        _atomic_write(self.directory / name, buffer.getvalue())

    def records(self, grid, mmap=True):
        """{index: :class:`JournalRecord`} — best valid record per index.

        "Best" is the highest attempt whose record survives every check:
        loadable archive, format marker, checksum, and a trace shaped for
        ``grid``. Damaged or stale files are skipped silently — the
        corresponding capture is simply redone on resume.

        With ``mmap=True`` (default) each restored trace *references* its
        checkpoint file through a read-only ``np.memmap`` rather than
        copying the bytes: checksum verification pages the record through
        once, after which the OS may evict the pages — a resumed
        full-span campaign holds O(1) heap per checkpoint, not O(bins).
        Compressed legacy records fall back to a heap copy.
        """
        if not self.directory.is_dir():
            return {}
        best = {}
        for path in sorted(self.directory.iterdir()):
            match = _RECORD_RE.match(path.name)
            if match is None:
                continue
            record = self._load_record(path, grid, mmap=mmap)
            if record is None:
                continue
            kept = best.get(record.index)
            if kept is None or record.attempt > kept.attempt:
                best[record.index] = record
        return best

    def _load_record(self, path, grid, mmap=True):
        try:
            power = mmap_npz_member(path, "power") if mmap else None
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"]))
                if power is None:
                    power = np.asarray(archive["power"], dtype=float)
        except Exception:
            # Truncated mid-write, not an npz, missing members: the record
            # never became durable — treat as absent.
            return None
        if power.dtype != np.dtype(float):
            power = np.asarray(power, dtype=float)
        if meta.get("format") != RECORD_FORMAT:
            return None
        try:
            index = int(meta["index"])
            attempt = int(meta["attempt"])
            activity = _activity_from_dict(meta["activity"])
            checksum = meta["checksum"]
            events = tuple(
                FaultEvent(
                    fault=event["fault"],
                    index=event["index"],
                    attempt=event["attempt"],
                    detail=event["detail"],
                )
                for event in meta.get("events", ())
            )
        except (KeyError, TypeError, ValueError):
            return None
        if power.shape != (grid.n_bins,):
            return None
        if checksum != _record_checksum(index, attempt, meta["falt"], power):
            return None
        trace = SpectrumTrace(grid, power, label=meta.get("trace_label", ""))
        return JournalRecord(
            index=index, attempt=attempt, activity=activity, trace=trace, events=events
        )

    def discard(self):
        """Delete the journal directory and everything in it."""
        if self.directory.exists():
            shutil.rmtree(self.directory)
        self._header = None
