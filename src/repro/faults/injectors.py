"""Seed-reproducible capture fault injectors.

Real FASE campaigns (Figure 10's hours-long sweeps in an unshielded city
lab) lose captures to hazards the clean simulator never produces:
transient RF interference, analyzer front-end clipping, local-oscillator
drift between sweeps, dropped traces, and impulsive ADC glitches. Each
injector here models one such hazard as a transformation of a captured
per-bin power array, driven by an explicit ``numpy.random.Generator`` so
a fault campaign replays bit-for-bit from its seed.

Injectors are *per capture*: each draws whether it fires
(``probability``) and then, only when it fired, its severity parameters,
all from the one generator the campaign derives for that (capture index,
attempt) pair. Everything downstream of the seed is therefore a pure
function of (seed, index, attempt) — independent of thread scheduling
and worker count, which the reproducibility property tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CaptureFaultError, SystemModelError
from ..units import dbm_to_milliwatts


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: which injector fired on which capture attempt."""

    fault: str
    index: int
    attempt: int
    detail: str

    def describe(self):
        return f"{self.fault} on capture {self.index} (attempt {self.attempt}): {self.detail}"


class FaultInjector:
    """Base class: a per-capture corruption of the measured power array."""

    name = "fault"

    def __init__(self, probability):
        if not 0.0 <= probability <= 1.0:
            raise SystemModelError("fault probability must be in [0, 1]")
        self.probability = float(probability)

    def fires(self, rng):
        """Whether this injector hits the current capture (one draw, always)."""
        return rng.random() < self.probability

    def apply(self, power, grid, rng):
        """Corrupt ``power`` in place; return a one-line detail string.

        Called only when :meth:`fires` returned True. Must draw its
        severity parameters from ``rng`` and nothing else.
        """
        raise NotImplementedError

    def describe(self):
        return f"{self.name}(p={self.probability:g})"


class TransientInterference(FaultInjector):
    """A strong RF burst (e.g. a keyed transmitter) landing in one sweep.

    Unlike the static :class:`~repro.system.environment.ToneInterferer`
    sources — present identically in every capture, and therefore
    cancelled by Eq. 2 — a transient burst pollutes *one* spectrum only,
    which is exactly the case the leave-one-out path must handle.
    """

    name = "interference"

    def __init__(self, probability=0.3, power_dbm=-75.0, width_bins=5):
        super().__init__(probability)
        if width_bins < 1:
            raise SystemModelError("burst width must be at least one bin")
        self.power_mw = float(dbm_to_milliwatts(power_dbm))
        self.power_dbm = float(power_dbm)
        self.width_bins = int(width_bins)

    def apply(self, power, grid, rng):
        center = int(rng.integers(0, grid.n_bins))
        lo = max(center - self.width_bins // 2, 0)
        hi = min(lo + self.width_bins, grid.n_bins)
        power[lo:hi] += self.power_mw / max(hi - lo, 1)
        return f"burst at {grid.frequency_at(center):.0f} Hz, {self.power_dbm:g} dBm"

    def describe(self):
        return f"{self.name}(p={self.probability:g}, {self.power_dbm:g} dBm)"


class AdcClipping(FaultInjector):
    """Front-end saturation: every bin above a ceiling flattens onto it.

    Models an overdriven analyzer input (a too-low attenuator setting):
    the strong lines that carry the side-band evidence are the first to
    clip, so the capture silently under-reports exactly the features FASE
    scores. The flat-topped bins it leaves behind (several bins at the
    identical ceiling power) are what the screen's tie check looks for.
    """

    name = "clipping"

    def __init__(self, probability=0.25, ceiling_dbm=-108.0):
        super().__init__(probability)
        self.ceiling_mw = float(dbm_to_milliwatts(ceiling_dbm))
        self.ceiling_dbm = float(ceiling_dbm)

    def apply(self, power, grid, rng):
        clipped = int(np.count_nonzero(power > self.ceiling_mw))
        np.minimum(power, self.ceiling_mw, out=power)
        return f"{clipped} bins clipped at {self.ceiling_dbm:g} dBm"

    def describe(self):
        return f"{self.name}(p={self.probability:g}, ceiling {self.ceiling_dbm:g} dBm)"


class FrequencyDrift(FaultInjector):
    """Local-oscillator drift: the whole sweep lands offset by a few bins.

    Between the five falt sweeps of a campaign the analyzer's reference
    can drift; a drifted capture reads every feature — side-bands
    included — at the wrong absolute frequency, which corrupts both the
    Eq. 2 alignment and the movement-verification fit. The shift is an
    integer number of bins (uniform in ±[min,max], never zero), applied
    with edge-value padding like the scorer's own shifted reads.
    """

    name = "drift"

    def __init__(self, probability=0.3, min_offset_bins=4, max_offset_bins=12):
        super().__init__(probability)
        if not 1 <= min_offset_bins <= max_offset_bins:
            raise SystemModelError("need 1 <= min_offset_bins <= max_offset_bins")
        self.min_offset_bins = int(min_offset_bins)
        self.max_offset_bins = int(max_offset_bins)

    def apply(self, power, grid, rng):
        magnitude = int(rng.integers(self.min_offset_bins, self.max_offset_bins + 1))
        sign = 1 if rng.random() < 0.5 else -1
        offset = sign * magnitude
        if offset > 0:
            power[offset:] = power[:-offset].copy()
            power[:offset] = power[offset]
        else:
            power[:offset] = power[-offset:].copy()
            power[offset:] = power[offset - 1]
        return f"spectrum shifted by {offset:+d} bins ({offset * grid.resolution:+.0f} Hz)"

    def describe(self):
        return (
            f"{self.name}(p={self.probability:g}, "
            f"{self.min_offset_bins}-{self.max_offset_bins} bins)"
        )


class CaptureDrop(FaultInjector):
    """The capture never completes: analyzer timeout or transfer loss."""

    name = "drop"

    def apply(self, power, grid, rng):
        # The caller (FaultPlan.corrupt) turns the sentinel return into a
        # CaptureFaultError carrying the event list; raising here would
        # lose the events of injectors that already ran.
        return "capture dropped"

    def __init__(self, probability=0.15):
        super().__init__(probability)


class GlitchBins(FaultInjector):
    """Impulsive ADC glitches: a burst of isolated bins spikes hard.

    Single-shot converter glitches and bus errors show up as scattered
    one-bin impulses far above anything physical. A handful per capture
    is enough to plant false Eq. 1 evidence at ``f - h*falt_i`` for every
    harmonic, so the screen counts excess outlier bins per capture.
    """

    name = "glitch"

    def __init__(self, probability=0.35, min_bins=8, max_bins=24, power_dbm=-80.0):
        super().__init__(probability)
        if not 1 <= min_bins <= max_bins:
            raise SystemModelError("need 1 <= min_bins <= max_bins")
        self.min_bins = int(min_bins)
        self.max_bins = int(max_bins)
        self.power_mw = float(dbm_to_milliwatts(power_dbm))
        self.power_dbm = float(power_dbm)

    def apply(self, power, grid, rng):
        count = int(rng.integers(self.min_bins, self.max_bins + 1))
        bins = rng.choice(grid.n_bins, size=min(count, grid.n_bins), replace=False)
        power[bins] += self.power_mw
        return f"{len(bins)} glitch bins at {self.power_dbm:g} dBm"

    def describe(self):
        return (
            f"{self.name}(p={self.probability:g}, {self.min_bins}-{self.max_bins} bins, "
            f"{self.power_dbm:g} dBm)"
        )


#: Canonical injector order: drop first (a dropped capture carries no other
#: corruption), then the power-domain faults.
FAULT_CLASSES = {
    "drop": CaptureDrop,
    "interference": TransientInterference,
    "clipping": AdcClipping,
    "drift": FrequencyDrift,
    "glitch": GlitchBins,
}


class FaultPlan:
    """Which faults a campaign injects, and the screen that must catch them.

    A plan is deterministic given the campaign seed: the campaign derives
    one child generator per (capture index, attempt) and hands it to
    :meth:`corrupt`, which walks the injectors in order. Passing a plan to
    :class:`~repro.core.campaign.MeasurementCampaign` also switches the
    campaign onto the degraded-mode path (per-index capture streams,
    screening, bounded retries) even when the plan injects nothing —
    :meth:`none` is how tests get the degraded plumbing with clean data.
    """

    def __init__(self, injectors=(), screen=None):
        from .screening import CaptureScreen

        self.injectors = tuple(injectors)
        names = [injector.name for injector in self.injectors]
        if len(set(names)) != len(names):
            raise SystemModelError(f"duplicate fault classes in plan: {sorted(names)}")
        self.screen = screen if screen is not None else CaptureScreen()

    @classmethod
    def default(cls, classes=None, screen=None):
        """Every fault class (or a named subset) at documented default severity."""
        if classes is None:
            classes = tuple(FAULT_CLASSES)
        unknown = [name for name in classes if name not in FAULT_CLASSES]
        if unknown:
            raise SystemModelError(
                f"unknown fault classes {unknown}; choose from {sorted(FAULT_CLASSES)}"
            )
        # Instantiate in canonical registry order regardless of the order
        # the caller named them, so the rng walk is stable.
        injectors = [FAULT_CLASSES[name]() for name in FAULT_CLASSES if name in classes]
        return cls(injectors, screen=screen)

    @classmethod
    def none(cls, screen=None):
        """No injectors: degraded-mode plumbing over clean captures."""
        return cls((), screen=screen)

    def describe(self):
        if not self.injectors:
            return "fault plan: none (screening only)"
        return "fault plan: " + ", ".join(injector.describe() for injector in self.injectors)

    def corrupt(self, power, grid, rng, index=0, attempt=0):
        """Run every injector over one capture's power array.

        Returns ``(power, events)``; raises :class:`CaptureFaultError`
        (carrying the events so far) when a drop fires. ``power`` is
        modified in place and returned for convenience.
        """
        events = []
        for injector in self.injectors:
            fired = injector.fires(rng)
            if not fired:
                continue
            detail = injector.apply(power, grid, rng)
            events.append(
                FaultEvent(fault=injector.name, index=index, attempt=attempt, detail=detail)
            )
            if isinstance(injector, CaptureDrop):
                raise CaptureFaultError(
                    f"capture {index} (attempt {attempt}) dropped", events=events
                )
        return power, events
