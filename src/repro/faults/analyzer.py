"""A fault-injecting wrapper over the spectrum analyzer.

:class:`FaultyAnalyzer` captures through a wrapped clean
:class:`~repro.spectrum.analyzer.SpectrumAnalyzer` and then corrupts the
result per a :class:`~repro.faults.injectors.FaultPlan`. Noise and faults
draw from *separate* generators so enabling faults never perturbs the
underlying capture's estimation noise: a campaign run under
``FaultPlan.none()`` is byte-identical to the same campaign's parallel
clean path.
"""

from __future__ import annotations

from ..errors import CaptureFaultError
from ..spectrum.trace import SpectrumTrace
from ..telemetry import current_telemetry


class FaultyAnalyzer:
    """Capture a scene, then let the fault plan corrupt the trace.

    ``index``/``attempt`` identify the capture for event bookkeeping;
    ``rng`` is the fault stream (the wrapped analyzer keeps its own).
    Injected events accumulate on :attr:`events`, including the events of
    a capture that ended in a :class:`CaptureFaultError` drop.
    """

    def __init__(self, analyzer, plan, rng, index=0, attempt=0):
        self.analyzer = analyzer
        self.plan = plan
        self.rng = rng
        self.index = int(index)
        self.attempt = int(attempt)
        self.events = []

    def capture(self, scene, grid, label=""):
        trace = self.analyzer.capture(scene, grid, label=label)
        power = trace.power_mw.copy()
        try:
            power, events = self.plan.corrupt(
                power, grid, self.rng, index=self.index, attempt=self.attempt
            )
        except CaptureFaultError as fault:
            self.events.extend(fault.events)
            self._emit(fault.events, dropped=True)
            raise
        self.events.extend(events)
        self._emit(events, dropped=False)
        return SpectrumTrace(grid, power, label=label)

    def _emit(self, events, dropped):
        telemetry = current_telemetry()
        if not telemetry.enabled:
            return
        for event in events:
            telemetry.event(
                "fault-injected",
                fault=event.fault,
                index=event.index,
                attempt=event.attempt,
                dropped=dropped,
            )
