"""Fault injection and degraded-mode robustness for FASE campaigns.

Real measurement campaigns fight hazards the clean simulator never
produces; this package injects them on demand — seed-reproducibly — and
provides the screening/accounting half of the graceful-degradation path
in :mod:`repro.core`:

* :mod:`~repro.faults.injectors` — the fault classes
  (:class:`TransientInterference`, :class:`AdcClipping`,
  :class:`FrequencyDrift`, :class:`CaptureDrop`, :class:`GlitchBins`)
  and the :class:`FaultPlan` bundling them;
* :mod:`~repro.faults.analyzer` — :class:`FaultyAnalyzer`, the wrapper
  that corrupts captures as they are taken;
* :mod:`~repro.faults.screening` — :class:`CaptureScreen`, the
  cohort-relative per-capture quality checks;
* :mod:`~repro.faults.robustness` — :class:`RobustnessReport`, the
  per-run ledger of everything injected, retried, and excluded.

The injector doubles as correctness tooling: the robustness test tier
drives the same plans to assert both "detection survives fault X" and
"degradation is reported, never silent".
"""

from .analyzer import FaultyAnalyzer
from .injectors import (
    FAULT_CLASSES,
    AdcClipping,
    CaptureDrop,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FrequencyDrift,
    GlitchBins,
    TransientInterference,
)
from .robustness import DetectionDelta, RobustnessReport
from .screening import CaptureQuality, CaptureScreen

__all__ = [
    "FAULT_CLASSES",
    "AdcClipping",
    "CaptureDrop",
    "CaptureQuality",
    "CaptureScreen",
    "DetectionDelta",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultyAnalyzer",
    "FrequencyDrift",
    "GlitchBins",
    "RobustnessReport",
    "TransientInterference",
]
