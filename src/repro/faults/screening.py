"""Per-capture quality screening for degraded-mode campaigns.

The screen answers one question per capture: *is this spectrum consistent
with being one of N sweeps of the same scene?* The N spectra of a FASE
campaign are near-identical — they differ only in the (weak, few-bin)
side-bands that move with falt and in the analyzer's averaged estimation
noise — so cross-capture statistics give a sharp reference:

* **power envelope** — the total received power of every sweep should
  match the cohort median within a small factor. A transient interference
  burst multiplies it; severe clipping divides it.
* **outlier bins** — bins far above the cohort's per-bin median power.
  Every capture legitimately has some (its own side-band positions), and
  the count is stable across the cohort; an excess over the cohort's
  typical count means impulsive glitches or a burst.
* **clip ties** — several bins at the *identical* maximum power. Gamma
  estimation noise makes exact ties vanishingly unlikely in a real
  capture; a flat-topped maximum is the signature of front-end
  saturation.
* **drift lag** — the lag of the cross-correlation peak between this
  capture's log-spectrum and the cohort median's. A healthy sweep
  correlates best at lag zero; a drifted one at its bin offset.

All thresholds are cohort-relative, so the screen needs no calibration
per machine, span, or noise floor. The flip side: corruption that hits
*every* capture identically (e.g. a fault probability of 1.0 with similar
severity each sweep) shifts the reference along with the captures and is
invisible to the screen — the cohort can only reveal captures that are
anomalous *relative to their peers*. The robustness report still accounts
for such faults through the injection events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SystemModelError

#: Additive guard (mW) under logs and ratios; far below any physical bin power.
_EPS = 1e-30


@dataclass(frozen=True)
class CaptureQuality:
    """Verdict of the screen on one capture."""

    ok: bool
    reasons: tuple = ()

    def describe(self):
        return "ok" if self.ok else "; ".join(self.reasons)


class CaptureScreen:
    """Cross-capture quality checks with cohort-relative thresholds.

    ``envelope_ratio`` bounds the total-power ratio against the cohort
    median; ``outlier_ratio``/``extra_outlier_bins`` define the excess
    outlier-bin budget (``extra_outlier_bins`` is a floor — the budget
    widens to three robust spreads of the cohort's own per-capture counts
    when those naturally disagree more); ``clip_tie_bins`` is the
    flat-top tie count that
    flags saturation; ``drift_tolerance_bins``/``max_drift_bins`` bound
    the cross-correlation lag search. Defaults are loose enough that a
    clean metropolitan capture never trips them (the no-false-positive
    property the robustness tier asserts) while every default-severity
    injector lands well past them.
    """

    def __init__(
        self,
        envelope_ratio=4.0,
        outlier_ratio=50.0,
        extra_outlier_bins=6,
        clip_tie_bins=3,
        drift_tolerance_bins=2,
        max_drift_bins=64,
    ):
        if envelope_ratio <= 1.0:
            raise SystemModelError("envelope_ratio must exceed 1")
        if outlier_ratio <= 1.0:
            raise SystemModelError("outlier_ratio must exceed 1")
        if extra_outlier_bins < 1:
            raise SystemModelError("extra_outlier_bins must be >= 1")
        if clip_tie_bins < 2:
            raise SystemModelError("clip_tie_bins must be >= 2")
        if not 1 <= drift_tolerance_bins < max_drift_bins:
            raise SystemModelError("need 1 <= drift_tolerance_bins < max_drift_bins")
        self.envelope_ratio = float(envelope_ratio)
        self.outlier_ratio = float(outlier_ratio)
        self.extra_outlier_bins = int(extra_outlier_bins)
        self.clip_tie_bins = int(clip_tie_bins)
        self.drift_tolerance_bins = int(drift_tolerance_bins)
        self.max_drift_bins = int(max_drift_bins)

    # ------------------------------------------------------------------

    def reference(self, traces):
        """Cohort statistics the per-capture checks compare against."""
        if len(traces) < 2:
            raise SystemModelError("the screen needs at least two captures for a reference")
        power = np.vstack([trace.power_mw for trace in traces])
        median_bins = np.median(power, axis=0)
        totals = power.sum(axis=1)
        outlier_counts = np.count_nonzero(
            power > self.outlier_ratio * (median_bins + _EPS)[None, :], axis=1
        )
        typical = float(np.median(outlier_counts))
        # Robust spread of the per-capture counts: a cohort whose healthy
        # captures naturally disagree about their outlier tally (many
        # emitter lines near the ratio threshold) earns a wider budget,
        # while a corrupted capture inflates its own count without moving
        # the median-based spread.
        spread = float(np.median(np.abs(outlier_counts - typical)))
        return {
            "median_bins": median_bins,
            "median_total": float(np.median(totals)),
            "typical_outliers": typical,
            "outlier_spread": spread,
            "log_median": self._centered_log(median_bins),
        }

    def assess(self, trace, reference):
        """Screen one capture against a cohort reference."""
        power = trace.power_mw
        reasons = []

        total = float(power.sum())
        median_total = reference["median_total"]
        if median_total > 0:
            ratio = total / median_total
            if ratio > self.envelope_ratio or ratio < 1.0 / self.envelope_ratio:
                reasons.append(f"power envelope {ratio:.2g}x the cohort median")

        outliers = int(
            np.count_nonzero(power > self.outlier_ratio * (reference["median_bins"] + _EPS))
        )
        allowance = max(self.extra_outlier_bins, 3.0 * reference.get("outlier_spread", 0.0))
        budget = reference["typical_outliers"] + allowance
        if outliers > budget:
            reasons.append(
                f"{outliers} outlier bins (cohort typical "
                f"{reference['typical_outliers']:.0f} + budget {allowance:.0f})"
            )

        peak = float(power.max())
        if peak > 0:
            ties = int(np.count_nonzero(power == peak))
            if ties >= self.clip_tie_bins:
                reasons.append(f"{ties} bins tied at the maximum (clipping)")

        lag = self._drift_lag(power, reference["log_median"])
        if abs(lag) > self.drift_tolerance_bins:
            reasons.append(f"spectrum offset by {lag:+d} bins (drift)")

        return CaptureQuality(ok=not reasons, reasons=tuple(reasons))

    # ------------------------------------------------------------------

    @staticmethod
    def _centered_log(power):
        log_power = np.log(power + _EPS)
        return log_power - log_power.mean()

    def _drift_lag(self, power, log_reference):
        """Lag (bins) of the cross-correlation peak within ±max_drift_bins.

        Correlates log-power so strong and weak lines weigh comparably
        (linear power would let the single strongest line dominate). The
        full correlation is one FFT product; only the small ±max_drift
        window is searched, so an unrelated long-range alignment cannot
        win.
        """
        a = self._centered_log(power)
        b = log_reference
        n = len(a)
        size = 2 * n
        spectrum = np.fft.rfft(a, size) * np.conj(np.fft.rfft(b, size))
        correlation = np.fft.irfft(spectrum, size)
        max_lag = min(self.max_drift_bins, n - 1)
        lags = np.arange(-max_lag, max_lag + 1)
        # circular layout: lag k >= 0 at correlation[k], k < 0 at size + k.
        window = correlation[lags % size]
        return int(lags[int(np.argmax(window))])
