"""The per-run robustness ledger: what was injected, what survived.

Degradation must be *reported, never silent*: every fault the plan
injected, every retry it forced, and every capture the screen excluded
ends up here, plus (when the pipeline computes it) the detection delta
between naive scoring over all captures and the degraded leave-one-out
scoring. The report rides on the campaign result and is surfaced by
:class:`~repro.core.report.FaseReport` and the CLI.

The durable execution path (:class:`~repro.runner.DurableCampaign`)
ledgers through the same report: a capture attempt abandoned by the
watchdog joins :attr:`RobustnessReport.events` as a
``"capture-timeout"`` event, counted separately from injected faults in
:attr:`~RobustnessReport.n_timeouts` and the text rendering.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Event class of a watchdog-abandoned capture attempt (not an injected
#: fault — the hazard came from the execution environment).
TIMEOUT_FAULT = "capture-timeout"


@dataclass(frozen=True)
class DetectionDelta:
    """Detections with flagged captures included vs. excluded.

    ``naive`` scores every capture (flags ignored); ``degraded`` is the
    shipping leave-one-out path. ``gained``/``lost`` are carrier
    frequencies present in one set only — what the exclusion bought and
    what it cost.
    """

    n_naive: int
    n_degraded: int
    gained: tuple
    lost: tuple

    def describe(self):
        parts = [f"{self.n_naive} carriers naive -> {self.n_degraded} degraded"]
        if self.gained:
            parts.append("gained " + ", ".join(f"{f:.0f} Hz" for f in self.gained))
        if self.lost:
            parts.append("lost " + ", ".join(f"{f:.0f} Hz" for f in self.lost))
        return "; ".join(parts)


@dataclass
class RobustnessReport:
    """Ledger of one degraded-mode campaign run."""

    plan_description: str
    events: list = field(default_factory=list)  # FaultEvent
    retries: dict = field(default_factory=dict)  # capture index -> extra attempts
    excluded: dict = field(default_factory=dict)  # capture index -> tuple of reasons
    dropped: tuple = ()  # indices that never yielded a trace
    detection_delta: object = None  # DetectionDelta | None

    # ------------------------------------------------------------------

    def faults_by_class(self):
        """{fault name: times injected} over every attempt of the run."""
        return dict(Counter(event.fault for event in self.events))

    @property
    def n_injected(self):
        """Injected-fault events (watchdog timeouts counted separately)."""
        return sum(1 for event in self.events if event.fault != TIMEOUT_FAULT)

    @property
    def n_retried(self):
        return sum(1 for extra in self.retries.values() if extra > 0)

    @property
    def n_timeouts(self):
        """Capture attempts the watchdog abandoned at their deadline."""
        return sum(1 for event in self.events if event.fault == TIMEOUT_FAULT)

    @property
    def n_excluded(self):
        return len(self.excluded)

    def record_detection_delta(self, naive_detections, degraded_detections, rel_tol=0.01):
        """Diff two detection lists by carrier frequency (relative match)."""

        def unmatched(ours, theirs):
            extras = []
            for detection in ours:
                if not any(
                    abs(detection.frequency - other.frequency)
                    <= rel_tol * max(detection.frequency, 1.0)
                    for other in theirs
                ):
                    extras.append(round(detection.frequency, 3))
            return tuple(extras)

        self.detection_delta = DetectionDelta(
            n_naive=len(naive_detections),
            n_degraded=len(degraded_detections),
            gained=unmatched(degraded_detections, naive_detections),
            lost=unmatched(naive_detections, degraded_detections),
        )
        return self.detection_delta

    # ------------------------------------------------------------------

    def to_text(self):
        lines = [f"robustness: {self.plan_description}"]
        by_class = {
            name: count
            for name, count in self.faults_by_class().items()
            if name != TIMEOUT_FAULT
        }
        if by_class:
            injected = ", ".join(f"{name} x{count}" for name, count in sorted(by_class.items()))
            lines.append(f"  faults injected: {sum(by_class.values())} ({injected})")
        else:
            lines.append("  faults injected: none")
        if self.n_timeouts:
            lines.append(f"  capture timeouts: {self.n_timeouts} (watchdog-abandoned attempts)")
        if self.retries:
            retried = ", ".join(
                f"capture {index} x{extra}" for index, extra in sorted(self.retries.items())
            )
            lines.append(f"  captures retried: {retried}")
        if self.excluded:
            for index in sorted(self.excluded):
                status = "dropped" if index in self.dropped else "excluded"
                lines.append(f"  capture {index} {status}: {'; '.join(self.excluded[index])}")
        else:
            lines.append("  captures excluded: none")
        if self.detection_delta is not None:
            lines.append(f"  detection delta: {self.detection_delta.describe()}")
        return "\n".join(lines)
