"""The tracing core: nested spans with monotonic timings and stable ids.

A *span* is one timed unit of campaign work — a capture attempt, a
scoring pass, a whole activity pair — opened as a context manager::

    with telemetry.span("capture", index=3, attempt=1, stage="capture"):
        ...

Spans nest per thread (the enclosing span becomes the parent), time
themselves with ``time.perf_counter`` (monotonic — wall-clock steps
cannot corrupt durations), and are emitted to the pipeline's sinks on
exit as plain-dict records.

Span ids are **seed-stable**: an id is the SHA-256 of the span's name,
its identifying attributes, and its per-identity occurrence number — a
pure function of *what work ran*, never of time, thread ids, or
``random``. Two runs of the same seeded campaign therefore produce the
same span ids regardless of worker count or scheduling, which is what
lets a resumed run's trace be diffed against an uninterrupted one.
Emission *order* under ``n_workers > 1`` still follows the scheduler;
stable ids are what make the streams comparable anyway.
"""

from __future__ import annotations

import hashlib
import threading
import time


def _stable_id(name, attrs, occurrence):
    identity = (name, tuple(sorted((k, repr(v)) for k, v in attrs.items())), occurrence)
    return hashlib.sha256(repr(identity).encode("utf-8")).hexdigest()[:16]


class SpanHandle:
    """One open span; also usable to annotate (``set``) before close."""

    __slots__ = (
        "name", "attrs", "stage", "span_id", "parent_id", "t_start", "child_seconds",
    )

    def __init__(self, name, attrs, stage, span_id, parent_id, t_start):
        self.name = name
        self.attrs = attrs
        self.stage = stage
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.child_seconds = 0.0

    def set(self, **attrs):
        """Attach extra attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self


class Tracer:
    """Creates, nests, and emits spans for one telemetry pipeline.

    ``emit`` is called with each finished span's record dict; ``on_close``
    (if given) receives ``(stage, duration_s, self_s)`` for profiler and
    histogram attribution — ``self_s`` is the span's *exclusive* time
    (children subtracted), so per-stage shares add up to 100% instead of
    double-counting nested stages.
    """

    def __init__(self, emit, on_close=None, clock=time.perf_counter):
        self._emit = emit
        self._on_close = on_close
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._occurrences = {}
        self._stack = threading.local()

    # ------------------------------------------------------------------

    def _occurrence(self, key):
        with self._lock:
            n = self._occurrences.get(key, 0)
            self._occurrences[key] = n + 1
        return n

    def _stack_for_thread(self):
        stack = getattr(self._stack, "spans", None)
        if stack is None:
            stack = []
            self._stack.spans = stack
        return stack

    def current_span(self):
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack_for_thread()
        return stack[-1] if stack else None

    def open(self, name, stage=None, parent_id=None, **attrs):
        """Open a span. Prefer the ``span()`` context manager."""
        identity = (name, tuple(sorted((k, repr(v)) for k, v in attrs.items())))
        span_id = _stable_id(name, attrs, self._occurrence(identity))
        if parent_id is None:
            parent = self.current_span()
            parent_id = parent.span_id if parent is not None else None
        handle = SpanHandle(name, dict(attrs), stage, span_id, parent_id, self._clock())
        self._stack_for_thread().append(handle)
        return handle

    def close(self, handle, status="ok"):
        """Close a span: pop it, attribute its time, emit its record."""
        now = self._clock()
        duration = now - handle.t_start
        stack = self._stack_for_thread()
        if stack and stack[-1] is handle:
            stack.pop()
            parent = stack[-1] if stack else None
            if parent is not None:
                parent.child_seconds += duration
        self_s = max(duration - handle.child_seconds, 0.0)
        if self._on_close is not None:
            self._on_close(handle.stage, duration, self_s)
        record = {
            "kind": "span",
            "name": handle.name,
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "t_start_s": handle.t_start - self._epoch,
            "duration_s": duration,
            "status": status,
        }
        if handle.stage is not None:
            record["stage"] = handle.stage
        if handle.attrs:
            record["attrs"] = dict(handle.attrs)
        self._emit(record)
        return record

    def span(self, name, stage=None, parent_id=None, **attrs):
        """Context manager: open on enter, close (status-aware) on exit."""
        return _SpanContext(self, name, stage, parent_id, attrs)

    def event(self, name, **attrs):
        """A zero-duration point record (resume notices, fault injections)."""
        now = self._clock()
        parent = self.current_span()
        identity = (name, tuple(sorted((k, repr(v)) for k, v in attrs.items())))
        record = {
            "kind": "event",
            "name": name,
            "span_id": _stable_id(name, attrs, self._occurrence(identity)),
            "parent_id": parent.span_id if parent is not None else None,
            "t_start_s": now - self._epoch,
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._emit(record)
        return record


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_stage", "_parent_id", "_attrs", "handle")

    def __init__(self, tracer, name, stage, parent_id, attrs):
        self._tracer = tracer
        self._name = name
        self._stage = stage
        self._parent_id = parent_id
        self._attrs = attrs
        self.handle = None

    def __enter__(self):
        self.handle = self._tracer.open(
            self._name, stage=self._stage, parent_id=self._parent_id, **self._attrs
        )
        return self.handle

    def __exit__(self, exc_type, exc, tb):
        self._tracer.close(self.handle, status="ok" if exc_type is None else "error")
        return False
