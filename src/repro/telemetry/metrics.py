"""Thread-safe metrics: counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` rides on each
:class:`~repro.telemetry.Telemetry` pipeline and is shared by every
thread of a campaign (``n_workers`` capture threads, ``run_fase``'s pair
pool). Updates are lock-protected — metric updates happen at capture
granularity (a handful per campaign stage), never inside the scoring
inner loops, so one lock is plenty.

:meth:`MetricsRegistry.snapshot` freezes the current state into a
:class:`MetricsSnapshot` — a plain-data view safe to hand across
threads, serialize to JSON (``to_dict``), or combine with another run's
snapshot (``merge``). Merging is exact for counters and histograms
(both are sums) and last-writer-wins for gauges.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import TelemetryError

#: Default histogram bucket upper bounds, in seconds: wide enough to span
#: a single fast capture (~ms) through an hours-long campaign stage.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0,
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen state of one fixed-bucket histogram.

    ``buckets`` holds the upper bound of each bucket (``value <= bound``
    lands in it); ``counts`` has one entry per bucket plus a final
    overflow bucket for values above the last bound.
    """

    buckets: tuple
    counts: tuple
    count: int
    sum: float

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0


class _Histogram:
    __slots__ = ("buckets", "counts", "count", "sum")

    def __init__(self, buckets):
        buckets = tuple(float(b) for b in buckets)
        if not buckets or any(b <= a for b, a in zip(buckets[1:], buckets)):
            raise TelemetryError("histogram buckets must be a non-empty increasing sequence")
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value):
        value = float(value)
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        self.counts[slot] += 1
        self.count += 1
        self.sum += value

    def freeze(self):
        return HistogramSnapshot(
            buckets=self.buckets,
            counts=tuple(self.counts),
            count=self.count,
            sum=self.sum,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time state of a :class:`MetricsRegistry`."""

    counters: dict
    gauges: dict
    histograms: dict  # name -> HistogramSnapshot

    def counter(self, name, default=0):
        return self.counters.get(name, default)

    def merge(self, other):
        """Combine with another snapshot: counters/histograms add, gauges
        take the other side's value on conflict (last writer wins)."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, theirs in other.histograms.items():
            ours = histograms.get(name)
            if ours is None:
                histograms[name] = theirs
            else:
                # Summing counts positionally is only sound when the two
                # histograms share the exact bucket geometry; zip() would
                # otherwise silently truncate to the shorter side and
                # corrupt every cross-process survey merge downstream.
                if ours.buckets != theirs.buckets:
                    raise TelemetryError(
                        f"cannot merge histogram {name!r}: bucket bounds differ "
                        f"({list(ours.buckets)} vs {list(theirs.buckets)})"
                    )
                if len(ours.counts) != len(theirs.counts):
                    raise TelemetryError(
                        f"cannot merge histogram {name!r}: count vectors have "
                        f"{len(ours.counts)} and {len(theirs.counts)} entries for "
                        f"{len(ours.buckets)} shared bucket bound(s)"
                    )
                histograms[name] = HistogramSnapshot(
                    buckets=ours.buckets,
                    counts=tuple(a + b for a, b in zip(ours.counts, theirs.counts)),
                    count=ours.count + theirs.count,
                    sum=ours.sum + theirs.sum,
                )
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    def to_dict(self):
        """Plain JSON-serializable dict (the ``FaseReport.telemetry`` form)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a snapshot from its :meth:`to_dict` form.

        This is the cross-process half of the snapshot protocol: survey
        shards serialize their registry state (JSONL, pickled shard
        results), and the parent revives each one here before
        :meth:`merge`-ing them into the survey-level snapshot. Malformed
        payloads raise :class:`~repro.errors.TelemetryError` naming the
        offending member rather than a raw ``KeyError``/``TypeError``.
        """
        if not isinstance(data, dict):
            raise TelemetryError(f"snapshot payload must be a dict, got {type(data).__name__}")
        histograms = {}
        for name, h in dict(data.get("histograms", {})).items():
            try:
                snapshot = HistogramSnapshot(
                    buckets=tuple(float(b) for b in h["buckets"]),
                    counts=tuple(int(c) for c in h["counts"]),
                    count=int(h["count"]),
                    sum=float(h["sum"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TelemetryError(f"malformed histogram {name!r} in snapshot payload") from exc
            # One overflow slot past the last bound — anything else came
            # from a torn or foreign payload and would positionally
            # corrupt the first merge it meets.
            if len(snapshot.counts) != len(snapshot.buckets) + 1:
                raise TelemetryError(
                    f"malformed histogram {name!r} in snapshot payload: "
                    f"{len(snapshot.counts)} count(s) for {len(snapshot.buckets)} "
                    "bucket bound(s) (expected bounds + 1 overflow slot)"
                )
            histograms[name] = snapshot
        try:
            counters = {str(k): int(v) for k, v in dict(data.get("counters", {})).items()}
            gauges = {str(k): float(v) for k, v in dict(data.get("gauges", {})).items()}
        except (TypeError, ValueError) as exc:
            raise TelemetryError("malformed counters/gauges in snapshot payload") from exc
        return cls(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """Named counters, gauges, and histograms behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    def count(self, name, n=1):
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        n = int(n)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name, value):
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name, value, buckets=DEFAULT_TIME_BUCKETS):
        """Record ``value`` into fixed-bucket histogram ``name``.

        The bucket bounds are fixed by the histogram's *first* observation;
        later calls may omit ``buckets``.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = _Histogram(buckets)
                self._histograms[name] = histogram
            histogram.observe(value)

    def snapshot(self):
        """A :class:`MetricsSnapshot` of everything recorded so far."""
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={name: h.freeze() for name, h in self._histograms.items()},
            )
