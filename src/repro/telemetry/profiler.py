"""Opt-in per-stage profiler: where did the campaign's wall-clock go?

The profiler consumes span closures (via the tracer's ``on_close`` hook)
and attributes each span's *exclusive* time — children subtracted — to
its ``stage`` (capture / average / score / detect, plus whatever other
stages instrumentation declares). Because attribution is exclusive, the
per-stage totals partition the instrumented time and the rendered shares
sum to ~100% instead of counting a nested stage twice.

``to_text()`` renders the attribution as a fixed-width table, the thing
``repro scan --profile`` prints after the report.
"""

from __future__ import annotations

import threading


class StageProfiler:
    """Accumulates per-stage call counts and exclusive seconds."""

    def __init__(self):
        self._lock = threading.Lock()
        self._stages = {}  # stage -> [calls, exclusive_seconds]

    def add(self, stage, seconds):
        """Attribute ``seconds`` of exclusive time to ``stage``."""
        with self._lock:
            entry = self._stages.get(stage)
            if entry is None:
                self._stages[stage] = [1, float(seconds)]
            else:
                entry[0] += 1
                entry[1] += float(seconds)

    def totals(self):
        """{stage: (calls, exclusive_seconds)}, a snapshot."""
        with self._lock:
            return {stage: (entry[0], entry[1]) for stage, entry in self._stages.items()}

    def total_seconds(self):
        with self._lock:
            return sum(entry[1] for entry in self._stages.values())

    def to_text(self):
        totals = self.totals()
        if not totals:
            return "profile: no instrumented stages ran"
        grand = sum(seconds for _, seconds in totals.values()) or 1.0
        lines = ["profile: campaign time by stage (exclusive)"]
        lines.append(f"  {'stage':<12} {'calls':>6} {'seconds':>10} {'share':>7}")
        for stage, (calls, seconds) in sorted(
            totals.items(), key=lambda item: item[1][1], reverse=True
        ):
            lines.append(
                f"  {stage:<12} {calls:>6} {seconds:>10.3f} {100.0 * seconds / grand:>6.1f}%"
            )
        lines.append(f"  {'total':<12} {'':>6} {grand:>10.3f} {'100.0%':>7}")
        return "\n".join(lines)
