"""repro.telemetry: tracing, metrics, and profiling for FASE campaigns.

A real FASE survey is an hours-long measurement campaign with parallel
captures, fault-injected retries, watchdog timeouts, and checkpoint
resume. This package records *where time and captures went*:

* **spans** (:mod:`repro.telemetry.spans`) — nested, monotonic-clock
  timed units of work with seed-stable ids, emitted to pluggable sinks;
* **metrics** (:mod:`repro.telemetry.metrics`) — thread-safe counters,
  gauges, and fixed-bucket histograms with a snapshot/merge API
  (``captures_total``, ``capture_retries``, ``capture_timeouts``,
  ``screen_rejections``, ``scoring_cache_hits``/``misses``, per-stage
  wall-clock histograms);
* **profiling** (:mod:`repro.telemetry.profiler`) — opt-in attribution
  of campaign wall-clock to capture / average / score / detect stages;
* **sinks** (:mod:`repro.telemetry.sinks`) — in-memory
  :class:`Recorder`, crash-tolerant append-only :class:`JsonlSink`, and
  the discard-everything base.

The default is **off**: the ambient pipeline is :data:`NULL_TELEMETRY`,
whose every operation is a no-op, so uninstrumented runs pay nothing
(the PR-1 scoring benchmark guards this). Instrumented code asks for the
ambient pipeline at the instant it needs it::

    from repro.telemetry import current_telemetry
    with current_telemetry().span("capture", index=i, stage="capture"):
        ...

and callers opt in either per call (``run_fase(..., telemetry=...)``),
ambiently (:func:`use_telemetry`), or from the CLI
(``--telemetry-jsonl``, ``--profile``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from .profiler import StageProfiler
from .sinks import JsonlSink, Recorder, TelemetrySink, read_jsonl
from .spans import SpanHandle, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current_telemetry",
    "use_telemetry",
    "use_thread_telemetry",
    "adopt_telemetry",
    "set_telemetry",
    "record_campaign_ledger",
    "record_planner_ledger",
    "record_survey_resume",
    "MetricsRegistry",
    "MetricsSnapshot",
    "HistogramSnapshot",
    "DEFAULT_TIME_BUCKETS",
    "StageProfiler",
    "TelemetrySink",
    "Recorder",
    "JsonlSink",
    "read_jsonl",
    "SpanHandle",
    "Tracer",
]


class _NullSpanContext:
    """Reusable no-op span context (one shared instance, zero allocation)."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_HANDLE

    def __exit__(self, exc_type, exc, tb):
        return False


class _NullHandle:
    __slots__ = ()
    span_id = None

    def set(self, **attrs):
        return self


_NULL_HANDLE = _NullHandle()
_NULL_SPAN = _NullSpanContext()


class NullTelemetry:
    """The disabled pipeline: every operation is a cheap no-op.

    This is what :func:`current_telemetry` returns until something is
    installed, so instrumentation sites never need an ``if`` guard.
    """

    enabled = False
    profiler = None

    def span(self, name, stage=None, parent_id=None, **attrs):
        return _NULL_SPAN

    def event(self, name, **attrs):
        return None

    def count(self, name, n=1):
        pass

    def gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def snapshot(self):
        return MetricsSnapshot(counters={}, gauges={}, histograms={})

    def emit_snapshot(self, label="metrics"):
        return None

    def close(self):
        pass


NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """One observability pipeline: tracer + metrics + sinks (+ profiler).

    ``sinks`` is any iterable of :class:`TelemetrySink`; ``profile=True``
    attaches a :class:`StageProfiler` fed with every closed span's
    exclusive time. Span durations with a ``stage`` also land in the
    ``stage_{stage}_seconds`` histogram (inclusive duration), so metrics
    snapshots carry the per-stage wall-clock distribution even without
    the profiler.
    """

    enabled = True

    def __init__(self, sinks=(), profile=False, metrics=None):
        self.sinks = tuple(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.profiler = StageProfiler() if profile else None
        self.tracer = Tracer(self._emit, on_close=self._on_span_close)

    # ------------------------------------------------------------------

    def _emit(self, record):
        for sink in self.sinks:
            sink.emit(record)

    def _on_span_close(self, stage, duration_s, self_s):
        if stage is not None:
            self.metrics.observe(f"stage_{stage}_seconds", duration_s)
            if self.profiler is not None:
                self.profiler.add(stage, self_s)

    # ------------------------------------------------------------------

    def span(self, name, stage=None, parent_id=None, **attrs):
        """Context manager timing one unit of work (see :class:`Tracer`)."""
        return self.tracer.span(name, stage=stage, parent_id=parent_id, **attrs)

    def event(self, name, **attrs):
        """Emit a zero-duration point record to the sinks."""
        return self.tracer.event(name, **attrs)

    def count(self, name, n=1):
        self.metrics.count(name, n)

    def gauge(self, name, value):
        self.metrics.gauge(name, value)

    def observe(self, name, value):
        self.metrics.observe(name, value)

    def snapshot(self):
        """The pipeline's :class:`MetricsSnapshot` so far."""
        return self.metrics.snapshot()

    def emit_snapshot(self, label="metrics"):
        """Write the current metrics state to the sinks as one record."""
        record = {"kind": "metrics", "name": label}
        record.update(self.snapshot().to_dict())
        self._emit(record)
        return record

    def emit_external_snapshot(self, snapshot, label="metrics"):
        """Write someone else's :class:`MetricsSnapshot` to this pipeline's sinks.

        The survey engine uses this to stream the merged cross-process
        snapshot through the survey-level JSONL without folding it into
        this pipeline's own registry (which tracks the parent process
        only).
        """
        record = {"kind": "metrics", "name": label}
        record.update(snapshot.to_dict())
        self._emit(record)
        return record

    def close(self):
        """Close every sink (flush + fsync for file sinks)."""
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# The ambient pipeline. Two layers:
#
# * a plain module global (not a contextvar): worker threads spawned by
#   campaign pools must see the same pipeline as the thread that
#   installed it, and contextvars do not flow into pool workers;
# * a per-thread overlay for a process running *many* pipelines at once
#   (the service worker fleet drives whole ``run_fase`` pipelines in
#   sibling threads). Concurrent installs on the shared global would
#   interleave their save/restore pairs and leave a stale pipeline
#   installed process-wide; the overlay scopes each install — and its
#   restore — to the installing thread. Campaign pools created under an
#   overlay adopt it explicitly (:func:`adopt_telemetry`).

_active = NULL_TELEMETRY
_active_lock = threading.Lock()
_thread_active = threading.local()


def current_telemetry():
    """The ambient pipeline (:data:`NULL_TELEMETRY` unless installed)."""
    override = getattr(_thread_active, "pipeline", None)
    if override is not None:
        return override
    return _active


def set_telemetry(telemetry):
    """Install ``telemetry`` (or ``None`` → off) ambiently; returns the old one."""
    global _active
    with _active_lock:
        previous = _active
        _active = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(telemetry):
    """Install a pipeline process-wide for the duration of a ``with`` block."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry if telemetry is not None else NULL_TELEMETRY
    finally:
        set_telemetry(previous)


@contextmanager
def use_thread_telemetry(telemetry):
    """Install a pipeline for this thread only, for a ``with`` block.

    The per-pipeline install (``run_fase(..., telemetry=...)``) uses
    this form, so pipelines running concurrently in sibling threads
    cannot clobber each other — or the process-wide default — no matter
    how their lifetimes interleave."""
    previous = getattr(_thread_active, "pipeline", None)
    _thread_active.pipeline = telemetry if telemetry is not None else NULL_TELEMETRY
    try:
        yield current_telemetry()
    finally:
        _thread_active.pipeline = previous


def adopt_telemetry(telemetry):
    """Pool-thread initializer: pin the submitter's pipeline here.

    Thread-pool workers outlive any single submission, so they adopt the
    pipeline that was ambient when the pool was created (pools live
    strictly inside one pipeline's scope)."""
    _thread_active.pipeline = telemetry


# ----------------------------------------------------------------------


def record_campaign_ledger(telemetry, measurements, robustness, resumed=()):
    """Fold one finished campaign's ledger into the metrics registry.

    Counter totals are derived from the same objects the
    :class:`~repro.faults.RobustnessReport` renders, in exactly one place
    per campaign, so the telemetry stream and the report can never
    disagree — the acceptance invariant of the subsystem. ``resumed`` is
    the durable runner's restored-capture index tuple.
    """
    telemetry.count("captures_total", len(measurements))
    if resumed:
        telemetry.count("captures_resumed", len(resumed))
    if robustness is None:
        return
    telemetry.count("faults_injected", robustness.n_injected)
    telemetry.count("capture_timeouts", robustness.n_timeouts)
    telemetry.count("capture_retries", sum(robustness.retries.values()))
    telemetry.count("captures_excluded", robustness.n_excluded)
    telemetry.count("captures_dropped", len(robustness.dropped))
    telemetry.count(
        "screen_rejections", sum(1 for m in measurements if getattr(m, "flagged", False))
    )


def record_planner_ledger(telemetry, accounting):
    """Fold one adaptive survey's plan accounting into the metrics registry.

    Mirrors :func:`record_campaign_ledger`: the counters are derived
    from the same :class:`~repro.survey.planner.PlanAccounting` the
    report renders, in exactly one place per survey, so the telemetry
    stream and ``report.planning`` can never disagree. Note the worker
    side already counted ``captures_saved``/``prescan_captures`` in the
    *shard-local* registries that merge into ``report.telemetry``; this
    records the same totals in the survey parent's registry.
    """
    telemetry.count("captures_saved", accounting.captures_saved)
    telemetry.count("prescan_captures", accounting.prescan_captures)
    telemetry.count("shards_early_stopped", accounting.n_early_stopped)
    telemetry.count("shards_budget_exhausted", accounting.n_budget_exhausted)
    telemetry.count("shards_prescan_skipped", accounting.n_prescan_skipped)


def record_survey_resume(telemetry, n_restored, n_abandoned=0):
    """Fold one manifest resume into the metrics registry.

    One place per survey, mirroring the ledger recorders above:
    ``shards_resumed`` counts shards restored from the manifest without
    re-running, ``shards_resumed_abandoned`` the shards a previous run
    already abandoned (replayed, not retried).
    """
    telemetry.count("shards_resumed", n_restored)
    if n_abandoned:
        telemetry.count("shards_resumed_abandoned", n_abandoned)
