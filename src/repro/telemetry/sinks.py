"""Telemetry sinks: where span and event records go.

A sink receives plain-dict records (spans, events, metrics snapshots) —
one :meth:`~TelemetrySink.emit` call per record — and is shared by every
thread of a run, so implementations must be thread-safe.

Three implementations cover the subsystem's needs:

* :class:`TelemetrySink` — the no-op base; with no sink configured the
  whole telemetry layer stays a no-op.
* :class:`Recorder` — in-memory list, for tests and programmatic
  inspection.
* :class:`JsonlSink` — an append-only JSON-Lines file following the
  campaign journal's durability discipline: every record is written as
  one complete line and flushed to the OS immediately, the file is
  fsync'd on :meth:`~JsonlSink.close` (and optionally per record), and
  the reader side (:func:`read_jsonl`) skips a torn trailing line, so a
  kill mid-write loses at most the record being written — exactly the
  journal's "old state or new state, never half" guarantee at
  line granularity.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path


class TelemetrySink:
    """Base sink: discards everything. Subclass and override ``emit``."""

    def emit(self, record):
        """Receive one record (a JSON-serializable dict)."""

    def close(self):
        """Flush and release resources; further emits are undefined."""


class Recorder(TelemetrySink):
    """In-memory sink: keeps every record, in emission order."""

    def __init__(self):
        self._lock = threading.Lock()
        self.records = []

    def emit(self, record):
        with self._lock:
            self.records.append(record)

    def spans(self, name=None):
        """Recorded span records, optionally filtered by span name."""
        return [
            r
            for r in self.records
            if r.get("kind") == "span" and (name is None or r.get("name") == name)
        ]

    def events(self, name=None):
        """Recorded event records, optionally filtered by event name."""
        return [
            r
            for r in self.records
            if r.get("kind") == "event" and (name is None or r.get("name") == name)
        ]


class JsonlSink(TelemetrySink):
    """Append-only JSONL file sink (crash-tolerant, see module docstring).

    ``fsync_every`` forces an ``os.fsync`` after every record — the
    maximum-durability mode for runs expected to be killed; the default
    flushes each line to the OS (surviving process death) and fsyncs only
    on close (surviving machine death up to the last close).
    """

    def __init__(self, path, fsync_every=False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.fsync_every = bool(fsync_every)

    def emit(self, record):
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync_every:
                os.fsync(self._handle.fileno())

    def close(self):
        with self._lock:
            if self._handle.closed:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()


def read_jsonl(path):
    """Parse a :class:`JsonlSink` file back into a list of records.

    A torn trailing line (the run was killed mid-write) is skipped, like
    the journal skips a record that never became durable; a damaged line
    anywhere else raises ``ValueError`` — that is corruption, not a kill.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if i == len(lines) - 1 or (i == len(lines) - 2 and not lines[-1].strip()):
                break  # torn tail: the kill interrupted this write
            raise
    return records
