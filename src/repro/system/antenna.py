"""Antenna and receiver chain: from emitted power to analyzer input.

The paper receives with a magnetic loop antenna (AOR LA400) at 30 cm.
Emitter powers in this library are calibrated *as received at the reference
distance of 30 cm*, so the receiver chain's job is to rescale when a probe
is placed elsewhere — in particular for the near-field localization pass of
Section 4, where signal strength falls off steeply (magnetic near field:
H ∝ 1/d³, power ∝ 1/d⁶) and therefore pinpoints the emitting component.

When a signal frequency is supplied, the coupling uses the physical
near/far-field transition at r = λ/2π: inside it the magnetic field falls
as 1/d³; beyond it the radiated field falls as 1/d. The consequence is the
paper's propagation picture: a 315 kHz regulator carrier (λ/2π ≈ 150 m —
always near-field at lab scales) dies off brutally with distance, while a
333 MHz DRAM clock (λ/2π ≈ 14 cm) is already radiating at the 30 cm
reference and "distances of at least 2-3 m have been reported" for such
signals (the paper's ref [39]).
"""

from __future__ import annotations

import math

from ..errors import SystemModelError

#: The measurement distance used throughout the paper's campaigns.
REFERENCE_DISTANCE_CM = 30.0

#: Speed of light, for the near/far-field transition radius.
_C_CM_PER_S = 2.998e10


class LoopAntenna:
    """A broadband magnetic loop antenna with a flat gain over the band."""

    def __init__(self, name="AOR LA400", gain_db=0.0):
        self.name = name
        self.gain_db = float(gain_db)

    @property
    def gain_linear(self):
        return 10.0 ** (self.gain_db / 10.0)


class ReceiverChain:
    """Antenna plus distance-dependent near-field coupling.

    ``distance_cm`` is where the antenna sits relative to the system (the
    campaigns use 30 cm; localization probes go to ~1 cm).
    """

    def __init__(self, antenna=None, distance_cm=REFERENCE_DISTANCE_CM):
        if distance_cm <= 0:
            raise SystemModelError("distance must be positive")
        self.antenna = antenna or LoopAntenna()
        self.distance_cm = float(distance_cm)

    @staticmethod
    def transition_radius_cm(frequency):
        """The near/far-field boundary λ/2π for a signal frequency (cm)."""
        if frequency <= 0:
            raise SystemModelError("frequency must be positive")
        return _C_CM_PER_S / (2.0 * math.pi * frequency)

    @staticmethod
    def _field_amplitude(distance_cm, frequency):
        """Relative field amplitude vs distance for a given frequency.

        1/d³ inside the transition radius, 1/d beyond it, continuous at the
        boundary. Without a frequency the caller gets the pure near-field
        law (correct for every sub-MHz carrier at lab distances).
        """
        if frequency is None:
            return 1.0 / distance_cm**3
        r_t = ReceiverChain.transition_radius_cm(frequency)
        if distance_cm <= r_t:
            return 1.0 / distance_cm**3
        return (1.0 / r_t**3) * (r_t / distance_cm)

    def power_coupling(self, distance_cm=None, frequency=None):
        """Received-power factor relative to the reference distance.

        Equal to 1 at the 30 cm reference for any frequency (emitter powers
        are calibrated there). With ``frequency`` given, the near/far-field
        transition applies: low-frequency carriers fall as (d_ref/d)⁶ in
        power, radiating (high-frequency) ones only as (d_ref/d)² once both
        distances are beyond λ/2π.
        """
        d = self.distance_cm if distance_cm is None else float(distance_cm)
        if d <= 0:
            raise SystemModelError("distance must be positive")
        ratio = self._field_amplitude(d, frequency) / self._field_amplitude(
            REFERENCE_DISTANCE_CM, frequency
        )
        return self.antenna.gain_linear * ratio**2

    def __repr__(self):
        return f"ReceiverChain({self.antenna.name!r} at {self.distance_cm:g} cm)"
