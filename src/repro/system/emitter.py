"""Emitter base class: from physical mechanism to per-bin spectral power.

An emitter owns an oscillator (which fixes its harmonic frequencies and
line shapes) and a *modulation response*: the envelope amplitude of each
harmonic as a function of the activity level in the emitter's coupled
domain. Given an :class:`~repro.uarch.activity.AlternationActivity` the
base class expands each harmonic into a carrier line plus alternation
side-bands (:func:`repro.signals.modulation.am_sideband_lines`) and renders
them onto a frequency grid.

Amplitudes are in sqrt-milliwatt units so that line powers come out in
milliwatts as received by the reference antenna at the reference distance;
the receiver chain rescales for other distances.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..signals.modulation import am_sideband_lines
from ..units import dbm_to_milliwatts


class Emitter:
    """Base class for system emitters.

    Parameters
    ----------
    name:
        Human-readable identity used in reports ("DRAM regulator").
    oscillator:
        An :class:`~repro.signals.oscillator.Oscillator` setting harmonic
        frequencies and line shapes.
    domain:
        The activity domain this emitter couples to (``None`` for
        unmodulated emitters).
    fundamental_dbm:
        Received power of the fundamental at the reference activity level,
        reference distance.
    max_harmonics:
        Highest harmonic rendered; the per-harmonic envelope usually decays
        (sinc envelope of the underlying pulse train) well before this cap.
    position:
        (x_cm, y_cm) board position, used by near-field localization.
    """

    def __init__(
        self,
        name,
        oscillator,
        domain,
        fundamental_dbm,
        max_harmonics=12,
        n_sideband_harmonics=5,
        position=(0.0, 0.0),
    ):
        if max_harmonics < 1:
            raise SystemModelError("max_harmonics must be >= 1")
        if n_sideband_harmonics < 0:
            raise SystemModelError("n_sideband_harmonics must be >= 0")
        self.name = name
        self.oscillator = oscillator
        self.domain = domain
        self.fundamental_dbm = float(fundamental_dbm)
        self.max_harmonics = int(max_harmonics)
        self.n_sideband_harmonics = int(n_sideband_harmonics)
        self.position = tuple(position)

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    def envelope(self, order, level):
        """Relative envelope amplitude of harmonic ``order`` at a level.

        Dimensionless; scaled by :meth:`amplitude_unit` which anchors the
        fundamental's power at the reference level to ``fundamental_dbm``.
        """
        raise NotImplementedError

    def lineshape(self, order):
        """Line shape of harmonic ``order``; defaults to the oscillator's.

        Overridable for emitters whose emission shaping differs from the
        bare oscillator (e.g. a dithered regulator spreading its carrier).
        """
        return self.oscillator.lineshape(order)

    def reference_level(self):
        """Activity level at which ``fundamental_dbm`` is specified."""
        return 0.5

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def amplitude_unit(self):
        """sqrt-mW per unit envelope, anchoring the power calibration."""
        reference_envelope = self.envelope(1, self.reference_level())
        if reference_envelope <= 0:
            raise SystemModelError(
                f"emitter {self.name!r}: reference envelope must be positive"
            )
        return float(np.sqrt(dbm_to_milliwatts(self.fundamental_dbm))) / reference_envelope

    def activity_levels(self, activity):
        """(level_x, level_y) of this emitter's domain under an activity."""
        if self.domain is None:
            return 0.0, 0.0
        return activity.level_x(self.domain), activity.level_y(self.domain)

    def render(self, grid, activity):
        """Mean per-bin power (mW) this emitter contributes to the grid."""
        power = np.zeros(grid.n_bins, dtype=float)
        unit = self.amplitude_unit()
        level_x, level_y = self.activity_levels(activity)
        max_offset = self.n_sideband_harmonics * activity.falt
        for order in range(1, self.max_harmonics + 1):
            center = self.oscillator.harmonic_frequency(order)
            shape = self.lineshape(order)
            margin = max_offset + shape.halfwidth + grid.resolution
            if center - margin > grid.stop:
                break
            if center + margin < grid.start:
                continue
            amp_x = unit * self.envelope(order, level_x)
            amp_y = unit * self.envelope(order, level_y)
            if amp_x <= 0 and amp_y <= 0:
                continue
            lines = am_sideband_lines(
                amp_x,
                amp_y,
                activity.falt,
                duty_cycle=activity.duty_cycle,
                n_harmonics=self.n_sideband_harmonics,
                jitter_fraction=activity.jitter_fraction,
            )
            for line in lines:
                line_shape = (
                    shape.broadened(line.extra_width) if line.extra_width > 0 else shape
                )
                power += line_shape.render(grid.frequencies, center + line.offset, line.power)
        return power

    def carrier_frequencies(self, up_to=None):
        """Harmonic center frequencies, optionally capped at a frequency."""
        frequencies = []
        for order in range(1, self.max_harmonics + 1):
            f = self.oscillator.harmonic_frequency(order)
            if up_to is not None and f > up_to:
                break
            frequencies.append(f)
        return frequencies

    def is_modulated_by(self, activity, threshold=1e-9):
        """Whether this activity moves the emitter's envelope at all."""
        level_x, level_y = self.activity_levels(activity)
        return abs(self.envelope(1, level_x) - self.envelope(1, level_y)) > threshold

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


class UnmodulatedEmitter(Emitter):
    """A periodic system signal with no activity dependence.

    Computer systems "produce thousands of periodic signals that are not
    modulated by system activity"; FASE must reject all of them. The
    envelope is flat in the activity level.
    """

    def __init__(self, name, oscillator, fundamental_dbm, harmonic_decay_db=6.0, **kwargs):
        kwargs.setdefault("max_harmonics", 8)
        super().__init__(name, oscillator, domain=None, fundamental_dbm=fundamental_dbm, **kwargs)
        if harmonic_decay_db < 0:
            raise SystemModelError("harmonic decay must be non-negative")
        self.harmonic_decay_db = float(harmonic_decay_db)

    def reference_level(self):
        return 0.0

    def envelope(self, order, level):
        # Amplitude decays by harmonic_decay_db (power) per harmonic step.
        return 10.0 ** (-(order - 1) * self.harmonic_decay_db / 20.0)
