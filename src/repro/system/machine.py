"""System models: a set of emitters in an RF environment.

A :class:`SystemModel` wires together the emitters of one computer (its
regulators, refresh engine, clocks, and unmodulated spurs), the ambient RF
environment, and the receiver chain. Given an
:class:`~repro.uarch.activity.AlternationActivity` it produces a *scene* —
the object a :class:`~repro.spectrum.analyzer.SpectrumAnalyzer` captures —
whose mean per-bin power is cached per grid because campaigns capture the
same scene several times (the paper averages 4 sweeps per falt).
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..uarch.activity import AlternationActivity
from .antenna import ReceiverChain
from .environment import RFEnvironment


class MachineScene:
    """A system model under one fixed activity: what the analyzer sees."""

    def __init__(self, machine, activity):
        self.machine = machine
        self.activity = activity
        self._cache = {}

    def mean_bin_power(self, grid):
        cached = self._cache.get(grid)
        if cached is not None:
            return cached
        power = np.zeros(grid.n_bins, dtype=float)
        receiver = self.machine.receiver
        for emitter in self.machine.emitters:
            # per-emitter coupling: the near/far-field transition depends
            # on the carrier frequency, so a distant antenna attenuates a
            # kHz regulator far more than a hundreds-of-MHz clock
            coupling = receiver.power_coupling(
                frequency=emitter.oscillator.frequency
            )
            power += emitter.render(grid, self.activity) * coupling
        power += self.machine.environment.mean_power(grid)
        self._cache[grid] = power
        return power


class SystemModel:
    """A modeled computer system: named emitters + environment + receiver."""

    def __init__(self, name, emitters, environment=None, receiver=None):
        emitters = list(emitters)
        if not emitters:
            raise SystemModelError("a system model needs at least one emitter")
        names = [emitter.name for emitter in emitters]
        if len(set(names)) != len(names):
            raise SystemModelError(f"duplicate emitter names in {name!r}: {sorted(names)}")
        self.name = name
        self.emitters = emitters
        self.environment = environment or RFEnvironment.quiet()
        self.receiver = receiver or ReceiverChain()

    def scene(self, activity):
        """The scene of this machine running the given activity."""
        if not isinstance(activity, AlternationActivity):
            raise SystemModelError("activity must be an AlternationActivity")
        return MachineScene(self, activity)

    def idle_scene(self):
        """The machine doing nothing (all activity levels zero)."""
        return self.scene(AlternationActivity.constant({}, label="idle"))

    def emitter_named(self, name):
        for emitter in self.emitters:
            if emitter.name == name:
                return emitter
        raise SystemModelError(
            f"no emitter named {name!r} in {self.name!r}; "
            f"have {[e.name for e in self.emitters]}"
        )

    def modulated_emitters(self, activity):
        """The emitters whose envelope or frequency the activity moves.

        This is the model's ground truth against which FASE's detections
        are validated in tests and benchmarks.
        """
        return [emitter for emitter in self.emitters if emitter.is_modulated_by(activity)]

    def __repr__(self):
        return f"SystemModel({self.name!r}, {len(self.emitters)} emitters)"
