"""Time-domain capture path: sampled waveforms instead of analytic spectra.

The analytic frequency-domain renderer (each emitter deposits spectral
lines onto the grid) is what the big campaigns use, because a 0-1200 MHz
sweep is 2.4 M bins. This module provides the *other* path end to end: a
:class:`TimeDomainScene` synthesizes the complex baseband waveform every
emitter would induce in the antenna over a sub-band — time-varying
envelopes from the micro-benchmark activity, oscillator phase noise,
spread-spectrum sweeps, PSD-shaped environment noise — and a
:class:`TimeDomainCampaign` turns those waveforms into averaged spectra via
Welch estimation.

Running FASE over this path and getting the same carriers as the analytic
path is the strongest internal validation the reproduction offers: two
independent implementations of the same physics must agree.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..rng import child_rng, ensure_rng
from ..signals.pulse import pulse_harmonic_amplitude
from ..signals.waveform import synthesize_carrier_iq
from ..spectrum.trace import average_traces
from ..spectrum.welch import trace_from_iq
from ..system.clocks import DRAMClockEmitter
from ..system.refresh import MemoryRefreshEmitter
from ..system.regulator import ConstantOnTimeRegulator, SwitchingRegulator
from ..core.campaign import CampaignMeasurement, CampaignResult


# ----------------------------------------------------------------------
# Vectorized envelopes (per-sample activity levels)
# ----------------------------------------------------------------------

def _envelope_series(emitter, order, levels):
    """Per-sample envelope amplitudes for an emitter harmonic.

    Activity waveforms take few distinct values (two for an alternation),
    so the generic fallback evaluates the scalar envelope once per unique
    level; the common emitter types get closed-form vectorized versions.
    """
    levels = np.asarray(levels, dtype=float)
    if isinstance(emitter, SwitchingRegulator):
        duty = emitter.nominal_duty + emitter.duty_gain * levels
        current = 1.0 + emitter.current_gain * levels
        return current * duty * np.abs(np.sinc(order * duty))
    if isinstance(emitter, MemoryRefreshEmitter):
        base = pulse_harmonic_amplitude(order, emitter.duty_cycle)
        stagger = emitter.rank_stagger_factor(order)
        coherence = np.exp(-emitter.coherence_loss * levels)
        extra = getattr(emitter, "coherence_retention", None)
        retention = extra(order) if extra is not None else 1.0
        return base * stagger * retention * coherence
    if isinstance(emitter, DRAMClockEmitter):
        decay = 10.0 ** (-(order - 1) * emitter.harmonic_decay_db / 20.0)
        return decay * (emitter.idle_fraction + (1.0 - emitter.idle_fraction) * levels)
    unique_levels, inverse = np.unique(levels, return_inverse=True)
    values = np.array([emitter.envelope(order, float(u)) for u in unique_levels])
    return values[inverse]


def _harmonics_in_band(emitter, center, sample_rate):
    """Harmonic orders whose center frequency falls inside the capture."""
    low = center - sample_rate / 2.0
    high = center + sample_rate / 2.0
    orders = []
    for order in range(1, emitter.max_harmonics + 1):
        f = emitter.oscillator.harmonic_frequency(order)
        if low < f < high:
            orders.append(order)
        elif f >= high:
            break
    return orders


def _emitter_iq(emitter, activity, center, sample_rate, duration, rng):
    """Complex baseband waveform of one emitter within the capture band."""
    n_samples = int(round(duration * sample_rate))
    iq = np.zeros(n_samples, dtype=complex)
    unit = emitter.amplitude_unit()

    if isinstance(emitter, ConstantOnTimeRegulator):
        # FM: the switching frequency follows the per-sample load.
        levels = activity.sampled_level(
            emitter.domain, duration, sample_rate, rng=child_rng(rng, emitter.name + ":act")
        )
        duty = emitter.nominal_duty + emitter.duty_gain * levels
        fundamental = duty / emitter.on_time
        for order in range(1, emitter.max_harmonics + 1):
            f_mid = order * emitter.frequency_at(0.5)
            if not (center - sample_rate / 2 < f_mid < center + sample_rate / 2):
                continue
            amplitude = unit * emitter.envelope(order, 0.0)
            sigma = emitter.oscillator.sigma * order
            wander = sigma * _ou_process(
                n_samples, sample_rate, child_rng(rng, f"{emitter.name}:pn{order}")
            )
            instantaneous = order * fundamental[:n_samples] + wander - center
            phase = 2.0 * np.pi * np.cumsum(instantaneous) / sample_rate
            iq += amplitude * np.exp(1j * phase)
        return iq

    orders = _harmonics_in_band(emitter, center, sample_rate)
    if not orders:
        return iq

    if emitter.domain is not None:
        levels = activity.sampled_level(
            emitter.domain, duration, sample_rate, rng=child_rng(rng, emitter.name + ":act")
        )[:n_samples]
    else:
        levels = np.zeros(n_samples)

    for order in orders:
        f = emitter.oscillator.harmonic_frequency(order)
        envelope = unit * _envelope_series(emitter, order, levels)
        shape = emitter.oscillator.lineshape(order)
        sweep_width = getattr(shape, "width", 0.0)
        if sweep_width:
            # spread-spectrum clock: sinusoidal frequency sweep
            sweep_period = getattr(emitter.oscillator, "sweep_period", 100e-6)
            t = np.arange(n_samples) / sample_rate
            position = 0.5 - 0.5 * np.cos(2.0 * np.pi * (t / sweep_period))
            instantaneous = (f + sweep_width / 2.0) - sweep_width * position - center
            phase = 2.0 * np.pi * np.cumsum(instantaneous) / sample_rate
            carrier = np.exp(1j * phase)
        else:
            sigma = getattr(shape, "sigma", 0.0)
            carrier = synthesize_carrier_iq(
                duration,
                sample_rate,
                f - center,
                line_sigma=sigma,
                rng=child_rng(rng, f"{emitter.name}:pn{order}"),
            )[:n_samples]
        iq += envelope * carrier
    return iq


def _ou_process(n_samples, sample_rate, rng, correlation_time=1e-3):
    """Unit-variance Ornstein-Uhlenbeck samples (slow frequency wander)."""
    from scipy.signal import lfilter

    theta = min(1.0 / (correlation_time * sample_rate), 0.5)
    noise = rng.standard_normal(n_samples)
    scale = np.sqrt(2.0 * theta)
    initial = rng.standard_normal()
    return lfilter([scale], [1.0, -(1.0 - theta)], noise, zi=[(1.0 - theta) * initial])[0]


def _environment_iq(environment, grid_like, center, sample_rate, n_samples, rng):
    """PSD-shaped environment noise + tones via frequency-domain synthesis.

    Renders the environment's mean per-bin power onto an FFT-bin grid for
    the capture band, then synthesizes a Gaussian realization with exactly
    that PSD: complex spectrum = sqrt(power) * unit Gaussian, inverse FFT.
    Static tones and stations come out with random phases, exactly like a
    stationary RF background.
    """
    from ..spectrum.grid import FrequencyGrid

    resolution = sample_rate / n_samples
    low = max(center - sample_rate / 2.0, 0.0)
    grid = FrequencyGrid(low, center + sample_rate / 2.0, resolution)
    power = environment.mean_power(grid)
    # map grid bins onto FFT bins (offset from center)
    offsets = grid.frequencies - center
    spectrum = np.zeros(n_samples, dtype=complex)
    indices = np.round(offsets / resolution).astype(int) % n_samples
    gauss = rng.standard_normal(len(indices)) + 1j * rng.standard_normal(len(indices))
    np.add.at(spectrum, indices, np.sqrt(power / 2.0) * gauss)
    # ifft carries a 1/n: x = n * ifft(S) makes E[periodogram bin k] equal
    # power_k and hence mean|x|^2 = sum_k power_k (Parseval), which the
    # calibration test in tests/test_timedomain.py pins down.
    return np.fft.ifft(spectrum) * n_samples


class TimeDomainScene:
    """A machine under one activity, as a synthesizable waveform."""

    def __init__(self, machine, activity, center_frequency, sample_rate, rng=None):
        if sample_rate <= 0:
            raise SystemModelError("sample rate must be positive")
        if center_frequency < sample_rate / 2.0 and center_frequency != 0.0:
            # allow captures starting at 0 Hz by centering the band
            pass
        self.machine = machine
        self.activity = activity
        self.center_frequency = float(center_frequency)
        self.sample_rate = float(sample_rate)
        self.rng = ensure_rng(rng)

    def synthesize(self, duration):
        """Complex baseband samples of everything the antenna receives."""
        n_samples = int(round(duration * self.sample_rate))
        if n_samples < 64:
            raise SystemModelError("duration too short for the sample rate")
        iq = np.zeros(n_samples, dtype=complex)
        for emitter in self.machine.emitters:
            coupling = np.sqrt(
                self.machine.receiver.power_coupling(
                    frequency=emitter.oscillator.frequency
                )
            )
            iq += coupling * _emitter_iq(
                emitter,
                self.activity,
                self.center_frequency,
                self.sample_rate,
                duration,
                child_rng(self.rng, emitter.name),
            )
        iq += _environment_iq(
            self.machine.environment,
            None,
            self.center_frequency,
            self.sample_rate,
            n_samples,
            child_rng(self.rng, "environment"),
        )
        return iq

    def capture_trace(self, grid, duration, label=""):
        """One Welch-estimated trace of the scene over ``grid``."""
        iq = self.synthesize(duration)
        nperseg = int(round(self.sample_rate / grid.resolution))
        return trace_from_iq(
            iq,
            self.sample_rate,
            grid,
            center_frequency=self.center_frequency,
            nperseg=nperseg,
            label=label,
        )


class TimeDomainCampaign:
    """A FASE campaign whose spectra come from sampled waveforms.

    Drop-in alternative to :class:`~repro.core.campaign.MeasurementCampaign`
    for sub-band windows (the sample rate must cover the grid span).
    ``duration`` controls the Welch averaging: longer captures average more
    segments, like the instrument's sweep averaging.
    """

    def __init__(self, machine, config, duration=0.5, oversample=1.3, rng=None):
        self.machine = machine
        self.config = config
        self.duration = float(duration)
        span = config.span_high - config.span_low
        self.center_frequency = (config.span_low + config.span_high) / 2.0
        self.sample_rate = span * float(oversample)
        self.rng = ensure_rng(rng)

    def run_with_activities(self, activities, label=None):
        grid = self.config.grid()
        result = CampaignResult(
            config=self.config,
            machine_name=self.machine.name,
            activity_label=label or (activities[0].label or "activity"),
        )
        for activity in activities:
            scene = TimeDomainScene(
                self.machine,
                activity,
                self.center_frequency,
                self.sample_rate,
                rng=child_rng(self.rng, f"scene:{activity.falt:.6g}"),
            )
            capture_label = f"{result.activity_label} falt={activity.falt:.6g}Hz"
            captures = [
                scene.capture_trace(grid, self.duration, label=f"{capture_label} capture {i}")
                for i in range(self.config.n_averages)
            ]
            trace = average_traces(captures, label=capture_label)
            result.measurements.append(
                CampaignMeasurement(falt=activity.falt, activity=activity, trace=trace)
            )
        return result.validate()

    def run(self, op_x, op_y, label=None, latency_model=None):
        from ..uarch.microbench import AlternationMicrobenchmark

        activities = []
        for falt in self.config.falts():
            bench = AlternationMicrobenchmark.calibrated(
                op_x, op_y, falt, latency_model=latency_model
            )
            activities.append(bench.activity(label=label))
        return self.run_with_activities(activities, label=label)
