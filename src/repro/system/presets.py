"""Preset system models mirroring the paper's four test systems.

Section 3/4: a recent Intel Core i7 desktop (the main results platform,
Figures 7-16), plus three laptops — Intel Core i3 (2010), AMD Turion X2
(2007, Figure 17), and Intel Pentium 3M (2002). Frequencies are chosen to
match every number the paper states (315 kHz DRAM regulator, 512 kHz-comb
refresh with 128 kHz GCD, 333 MHz spread DRAM clock, 132 kHz Turion
refresh, FM core regulator on the AMD) and to be plausible for the parts of
the era where the paper is silent.

Board positions (cm) place each emitter where its component lives so the
near-field localization pass recovers the paper's findings (regulator
signals strongest "near the high power MOSFET switches and power inductors
that supply power to the main memory DIMMs", refresh strongest "near the
memory DIMMs").
"""

from __future__ import annotations

from ..errors import SystemModelError
from ..rng import ensure_rng
from ..signals.oscillator import CrystalOscillator
from .clocks import CPUClockEmitter, DRAMClockEmitter
from .domains import CORE, DRAM_POWER, MEMORY_INTERFACE
from .emitter import UnmodulatedEmitter
from .environment import RFEnvironment
from .machine import SystemModel
from .refresh import MemoryRefreshEmitter
from .regulator import ConstantOnTimeRegulator, SwitchingRegulator

#: Board locations (cm) used across the desktop presets.
_DIMM_AREA = (22.0, 8.0)
_DIMM_REGULATOR_AREA = (20.0, 10.0)
_CPU_AREA = (10.0, 14.0)
_CHIPSET_AREA = (14.0, 10.0)


def build_environment(span, rng=None, kind="metropolitan"):
    """The shared RF environment for a campaign span.

    ``kind`` is ``"metropolitan"`` (the paper's unshielded city lab) or
    ``"quiet"`` (a shielded chamber, useful to isolate system signals in
    tests).
    """
    if kind == "metropolitan":
        return RFEnvironment.metropolitan(span, rng=ensure_rng(rng))
    if kind == "quiet":
        return RFEnvironment.quiet()
    raise SystemModelError(f"unknown environment kind {kind!r}")


def corei7_desktop(environment=None, rng=None):
    """The paper's main platform: a recent Intel Core i7 desktop.

    * DRAM DIMM regulator at 315 kHz (Figure 11's red dashed comb; "its
      switching frequency was 315 kHz").
    * Memory-controller (on-chip memory interface) regulator at 225 kHz
      (the black dash-dot comb of Figure 11; separate core and memory
      interface supplies).
    * CPU core regulator at 333 kHz (Figures 12/13; only this carrier is
      modulated by LDL2/LDL1).
    * Memory refresh at 128 kHz with 4-rank staggering: strong comb at
      512 kHz multiples far-field, 128 kHz GCD near-field (Section 4.2).
    * DRAM clock at 333 MHz swept down 1 MHz over 100 us (Section 4.3).
    * Weak unmodulated spread-spectrum CPU base clock and crystal spurs.
    """
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "DRAM DIMM regulator",
            switching_frequency=315e3,
            domain=DRAM_POWER,
            fundamental_dbm=-103.0,
            input_volts=12.0,
            output_volts=1.35,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=14,
            position=_DIMM_REGULATOR_AREA,
        ),
        SwitchingRegulator(
            "memory-controller regulator",
            switching_frequency=225e3,
            domain=MEMORY_INTERFACE,
            fundamental_dbm=-112.0,
            input_volts=12.0,
            output_volts=1.05,
            duty_gain=0.10,
            fractional_sigma=4e-4,
            max_harmonics=12,
            position=_CHIPSET_AREA,
        ),
        SwitchingRegulator(
            "CPU core regulator",
            switching_frequency=333e3,
            domain=CORE,
            fundamental_dbm=-106.0,
            input_volts=12.0,
            output_volts=1.10,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=12,
            position=_CPU_AREA,
        ),
        MemoryRefreshEmitter(
            "memory refresh",
            refresh_frequency=128e3,
            fundamental_dbm=-118.0,
            coherence_loss=2.0,
            n_ranks=4,
            rank_imbalance=0.15,
            max_harmonics=40,
            position=_DIMM_AREA,
        ),
        DRAMClockEmitter(
            "DRAM clock",
            clock_frequency=333e6,
            sweep_width=1e6,
            sweep_period=100e-6,
            fundamental_dbm=-91.0,
            idle_fraction=0.35,
            position=_DIMM_AREA,
        ),
        CPUClockEmitter(
            "CPU base clock",
            clock_frequency=100e6,
            sweep_width=0.5e6,
            fundamental_dbm=-105.0,
            position=_CPU_AREA,
        ),
        UnmodulatedEmitter(
            "Ethernet PHY crystal",
            CrystalOscillator(25e6),
            fundamental_dbm=-124.0,
            max_harmonics=4,
            position=(4.0, 26.0),
        ),
        UnmodulatedEmitter(
            "RTC crystal",
            CrystalOscillator(32.768e3),
            fundamental_dbm=-131.0,
            max_harmonics=12,
            position=(6.0, 4.0),
        ),
        UnmodulatedEmitter(
            "legacy timer crystal",
            CrystalOscillator(1.193182e6),
            fundamental_dbm=-127.0,
            max_harmonics=3,
            position=_CHIPSET_AREA,
        ),
    ]
    return SystemModel(
        "Intel Core i7 desktop",
        emitters,
        environment=environment or build_environment(4e6, rng=rng),
    )


def turionx2_laptop(environment=None, rng=None):
    """AMD Turion X2 laptop (2007): Figure 17 and the FM-regulator finding.

    * Memory refresh at 132 kHz "instead of 128 kHz as observed in all
      three other systems".
    * A memory regulator, plus two regulator-like carriers the paper left
      unidentified (localization would have required destructive
      disassembly).
    * The CPU core regulator is constant-on-time: frequency-modulated by
      core activity, hence (correctly) not reported by FASE.
    """
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "memory regulator",
            switching_frequency=250e3,
            domain=DRAM_POWER,
            fundamental_dbm=-108.0,
            input_volts=19.0,
            output_volts=1.8,
            duty_gain=0.10,
            fractional_sigma=4e-4,
            max_harmonics=10,
            position=(18.0, 8.0),
        ),
        MemoryRefreshEmitter(
            "memory refresh",
            refresh_frequency=132e3,
            fundamental_dbm=-126.0,
            coherence_loss=2.0,
            n_ranks=1,
            max_harmonics=24,
            position=(20.0, 6.0),
        ),
        SwitchingRegulator(
            "unidentified carrier A",
            switching_frequency=406e3,
            domain=MEMORY_INTERFACE,
            fundamental_dbm=-115.0,
            input_volts=19.0,
            output_volts=1.2,
            duty_gain=0.10,
            fractional_sigma=4e-4,
            max_harmonics=6,
            position=(9.0, 7.0),
        ),
        SwitchingRegulator(
            "unidentified carrier B",
            switching_frequency=472e3,
            domain=DRAM_POWER,
            fundamental_dbm=-113.0,
            input_volts=19.0,
            output_volts=3.3,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=4,
            position=(6.0, 16.0),
        ),
        ConstantOnTimeRegulator(
            "CPU core regulator (constant on-time)",
            nominal_frequency=300e3,
            domain=CORE,
            fundamental_dbm=-104.0,
            input_volts=19.0,
            output_volts=1.1,
            duty_gain=0.015,
            position=(11.0, 13.0),
        ),
        DRAMClockEmitter(
            "DRAM clock",
            clock_frequency=333e6,
            sweep_width=1e6,
            fundamental_dbm=-93.0,
            position=(20.0, 6.0),
        ),
        CPUClockEmitter(
            "HyperTransport clock",
            clock_frequency=200e6,
            sweep_width=1e6,
            fundamental_dbm=-106.0,
            position=(11.0, 13.0),
        ),
    ]
    return SystemModel(
        "AMD Turion X2 laptop",
        emitters,
        environment=environment or build_environment(1.2e6, rng=rng),
    )


def corei3_laptop(environment=None, rng=None):
    """Intel Core i3 laptop (2010): same three signal families (Section 4.4)."""
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "memory regulator",
            switching_frequency=285e3,
            domain=DRAM_POWER,
            fundamental_dbm=-107.0,
            input_volts=19.0,
            output_volts=1.5,
            duty_gain=0.11,
            fractional_sigma=4e-4,
            max_harmonics=12,
            position=(18.0, 9.0),
        ),
        SwitchingRegulator(
            "memory-controller regulator",
            switching_frequency=240e3,
            domain=MEMORY_INTERFACE,
            fundamental_dbm=-114.0,
            input_volts=19.0,
            output_volts=1.05,
            duty_gain=0.10,
            fractional_sigma=4e-4,
            max_harmonics=8,
            position=(13.0, 11.0),
        ),
        SwitchingRegulator(
            "CPU core regulator",
            switching_frequency=355e3,
            domain=CORE,
            fundamental_dbm=-106.0,
            input_volts=19.0,
            output_volts=1.05,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=10,
            position=(10.0, 13.0),
        ),
        MemoryRefreshEmitter(
            "memory refresh",
            refresh_frequency=128e3,
            fundamental_dbm=-124.0,
            coherence_loss=2.0,
            n_ranks=2,
            rank_imbalance=0.2,
            max_harmonics=32,
            position=(20.0, 7.0),
        ),
        DRAMClockEmitter(
            "DRAM clock",
            clock_frequency=533e6,
            sweep_width=1.5e6,
            fundamental_dbm=-91.0,
            position=(20.0, 7.0),
        ),
        CPUClockEmitter(
            "CPU base clock",
            clock_frequency=133e6,
            sweep_width=0.7e6,
            fundamental_dbm=-106.0,
            position=(10.0, 13.0),
        ),
    ]
    return SystemModel(
        "Intel Core i3 laptop",
        emitters,
        environment=environment or build_environment(4e6, rng=rng),
    )


def pentium3m_laptop(environment=None, rng=None):
    """Intel Pentium 3M laptop (2002): the oldest surveyed system."""
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "memory regulator",
            switching_frequency=200e3,
            domain=DRAM_POWER,
            fundamental_dbm=-110.0,
            input_volts=16.0,
            output_volts=2.5,
            duty_gain=0.10,
            fractional_sigma=4e-4,
            max_harmonics=10,
            position=(16.0, 8.0),
        ),
        SwitchingRegulator(
            "CPU core regulator",
            switching_frequency=240e3,
            domain=CORE,
            fundamental_dbm=-109.0,
            input_volts=16.0,
            output_volts=1.4,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=8,
            position=(9.0, 12.0),
        ),
        MemoryRefreshEmitter(
            "memory refresh",
            refresh_frequency=128e3,
            fundamental_dbm=-126.0,
            coherence_loss=1.8,
            n_ranks=1,
            max_harmonics=20,
            position=(18.0, 6.0),
        ),
        DRAMClockEmitter(
            "SDRAM clock",
            clock_frequency=133e6,
            sweep_width=0.5e6,
            fundamental_dbm=-96.0,
            idle_fraction=0.4,
            position=(18.0, 6.0),
        ),
        UnmodulatedEmitter(
            "USB controller crystal",
            CrystalOscillator(48e6),
            fundamental_dbm=-130.0,
            max_harmonics=2,
            position=(5.0, 20.0),
        ),
    ]
    return SystemModel(
        "Intel Pentium 3M laptop",
        emitters,
        environment=environment or build_environment(4e6, rng=rng),
    )


ALL_PRESETS = {
    "corei7_desktop": corei7_desktop,
    "corei3_laptop": corei3_laptop,
    "turionx2_laptop": turionx2_laptop,
    "pentium3m_laptop": pentium3m_laptop,
}
