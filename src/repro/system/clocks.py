"""Clock emitters: spread-spectrum DRAM and CPU clocks (Section 4.3).

High-frequency clocks are strong enough to violate EMC limits, so they are
spread-spectrum modulated: "a 333 MHz memory clock might be swept back and
forth between 332 MHz and 333 MHz over a period of 100 us". The emitted
power at the DRAM clock frequency tracks how much switching activity the
clock is driving: strong with heavy DRAM traffic, weaker but present when
idle (the clock still toggles the bus interface), Figure 14.

CPU clocks on the tested systems also appear as weak spread-spectrum
signals but show *no* variation with processor activity — an
:class:`UnmodulatedEmitter` behind a swept oscillator.
"""

from __future__ import annotations

from ..errors import SystemModelError
from ..signals.oscillator import SpreadSpectrumClock
from .domains import DRAM_BUS
from .emitter import Emitter, UnmodulatedEmitter


class DRAMClockEmitter(Emitter):
    """Swept DRAM clock whose amplitude tracks DRAM switching activity.

    ``idle_fraction`` is the envelope amplitude at zero activity relative
    to full activity: the paper's Figure 14 shows the idle (LDL1/LDL1)
    pedestal roughly 8-10 dB below the saturated (LDM/LDM) one, matching
    the default of 0.35 (power ratio ≈ -9 dB).
    """

    def __init__(
        self,
        name="DRAM clock",
        clock_frequency=333e6,
        sweep_width=1e6,
        sweep_period=100e-6,
        fundamental_dbm=-95.0,
        idle_fraction=0.3,
        max_harmonics=3,
        harmonic_decay_db=10.0,
        **kwargs,
    ):
        if not 0.0 <= idle_fraction < 1.0:
            raise SystemModelError("idle fraction must be in [0, 1)")
        if harmonic_decay_db < 0:
            raise SystemModelError("harmonic decay must be non-negative")
        self.idle_fraction = float(idle_fraction)
        self.harmonic_decay_db = float(harmonic_decay_db)
        oscillator = SpreadSpectrumClock(
            clock_frequency, sweep_width, sweep_period=sweep_period
        )
        super().__init__(
            name,
            oscillator,
            domain=DRAM_BUS,
            fundamental_dbm=fundamental_dbm,
            max_harmonics=max_harmonics,
            **kwargs,
        )

    def reference_level(self):
        # fundamental_dbm is specified at full DRAM activity.
        return 1.0

    def envelope(self, order, level):
        if not 0.0 <= level <= 1.0:
            raise SystemModelError("activity level must be in [0, 1]")
        activity_amp = self.idle_fraction + (1.0 - self.idle_fraction) * level
        decay = 10.0 ** (-(order - 1) * self.harmonic_decay_db / 20.0)
        return activity_amp * decay

    def band_edges(self, order=1):
        """Edges of the swept band, where FASE reports the two carriers."""
        return self.oscillator.band_edges(order)


class CPUClockEmitter(UnmodulatedEmitter):
    """Weak spread-spectrum CPU/system clock, unmodulated by activity.

    "The systems tested generated weak spread-spectrum signals at CPU clock
    frequencies. Interestingly, we do not observe any variation in these
    signals in response to processor activity."
    """

    def __init__(
        self,
        name="CPU clock",
        clock_frequency=100e6,
        sweep_width=0.5e6,
        fundamental_dbm=-138.0,
        **kwargs,
    ):
        oscillator = SpreadSpectrumClock(clock_frequency, sweep_width)
        kwargs.setdefault("max_harmonics", 2)
        super().__init__(name, oscillator, fundamental_dbm, **kwargs)
