"""Power and activity domains of the modeled systems.

A *domain* is a named aspect of system activity that an emitter can couple
to: the supply current of a voltage regulator's load, the switching
activity on the DRAM bus, or the memory-bus utilization that perturbs
refresh scheduling. Micro-ops report a level in [0, 1] per domain
(:mod:`repro.uarch.isa`); emitters translate the X/Y level difference into
amplitude modulation.
"""

from __future__ import annotations

#: Supply current of the CPU cores (and core-side caches).
CORE = "core"

#: Activity in the L2/LLC arrays; included in the core supply on the modeled
#: systems but kept separate so presets can split it if a system does.
L2_CACHE = "l2_cache"

#: Supply current of the on-chip memory interface / memory controller
#: ("the chip has separate power supplies for its cores and its memory
#: interface", Section 4.1).
MEMORY_INTERFACE = "memory_interface"

#: Supply current of the DRAM DIMMs.
DRAM_POWER = "dram_power"

#: Switching activity driven by the DRAM clock (commands/data toggling).
DRAM_BUS = "dram_bus"

#: Fraction of memory-bus time occupied by demand accesses; this is what
#: delays refresh commands and destroys their periodicity (Section 4.2).
MEMORY_UTILIZATION = "memory_utilization"

ALL_DOMAINS = (
    CORE,
    L2_CACHE,
    MEMORY_INTERFACE,
    DRAM_POWER,
    DRAM_BUS,
    MEMORY_UTILIZATION,
)
