"""System models: emitters, environment, receiver chain, and presets.

This subpackage is the paper's "device under test" half: physical models of
every emanation mechanism the paper identifies (switching regulators,
memory refresh, spread-spectrum clocks), plus the unshielded-metropolitan
RF environment FASE must reject, packaged into per-machine presets.
"""

from .domains import (
    CORE,
    L2_CACHE,
    MEMORY_INTERFACE,
    DRAM_POWER,
    DRAM_BUS,
    MEMORY_UTILIZATION,
    ALL_DOMAINS,
)
from .emitter import Emitter, UnmodulatedEmitter
from .regulator import SwitchingRegulator, ConstantOnTimeRegulator
from .refresh import MemoryRefreshEmitter, DDR3_REFRESH_FREQUENCY
from .clocks import DRAMClockEmitter, CPUClockEmitter
from .environment import (
    EnvironmentSource,
    ToneInterferer,
    AMRadioStation,
    SpuriousToneField,
    RFEnvironment,
)
from .antenna import LoopAntenna, ReceiverChain, REFERENCE_DISTANCE_CM
from .machine import SystemModel, MachineScene
from .presets import (
    corei7_desktop,
    corei3_laptop,
    turionx2_laptop,
    pentium3m_laptop,
    build_environment,
    ALL_PRESETS,
)
from .variants import percore_regulator_machine, fivr_machine

__all__ = [
    "CORE",
    "L2_CACHE",
    "MEMORY_INTERFACE",
    "DRAM_POWER",
    "DRAM_BUS",
    "MEMORY_UTILIZATION",
    "ALL_DOMAINS",
    "Emitter",
    "UnmodulatedEmitter",
    "SwitchingRegulator",
    "ConstantOnTimeRegulator",
    "MemoryRefreshEmitter",
    "DDR3_REFRESH_FREQUENCY",
    "DRAMClockEmitter",
    "CPUClockEmitter",
    "EnvironmentSource",
    "ToneInterferer",
    "AMRadioStation",
    "SpuriousToneField",
    "RFEnvironment",
    "LoopAntenna",
    "ReceiverChain",
    "REFERENCE_DISTANCE_CM",
    "SystemModel",
    "MachineScene",
    "corei7_desktop",
    "corei3_laptop",
    "turionx2_laptop",
    "pentium3m_laptop",
    "build_environment",
    "ALL_PRESETS",
    "percore_regulator_machine",
    "fivr_machine",
]
