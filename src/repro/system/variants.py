"""System-model variants for the paper's §4.1 design-space observations.

Two scenarios the paper describes but does not measure:

* **Per-core regulators** — "when separate dynamic voltage scaling is used
  for each CPU core, each core requires a separate regulator. When such
  regulator switching frequencies are not identical, attackers might be
  able to remotely receive a separate power consumption readout for each
  core, allowing attackers to remotely perform a separate power analysis
  attack for each core."
* **Integrated (FIVR-style) regulators** — "integrated switching
  regulators use higher switching frequencies (e.g. 140 MHz in [10])
  resulting in stronger emanations. Higher switching frequencies also
  allow faster reactions ... providing attackers with a higher bandwidth
  readout of power consumption."

Both are buildable from the library's primitives; this module packages
them as ready-made machines so the claims can be tested quantitatively.
"""

from __future__ import annotations

from ..rng import ensure_rng
from .domains import DRAM_POWER
from .environment import RFEnvironment
from .machine import SystemModel
from .refresh import MemoryRefreshEmitter
from .regulator import SwitchingRegulator

#: Activity domains for the two independently-regulated cores.
CORE0 = "core0"
CORE1 = "core1"


def percore_regulator_machine(environment=None, rng=None):
    """A dual-core system with one switching regulator per core.

    The regulators switch at 320 and 352 kHz — distinct frequencies, as the
    paper's attack scenario requires — and each couples only to its own
    core's supply domain.
    """
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "core 0 regulator",
            switching_frequency=320e3,
            domain=CORE0,
            fundamental_dbm=-106.0,
            input_volts=12.0,
            output_volts=1.05,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=8,
            position=(9.0, 13.0),
        ),
        SwitchingRegulator(
            "core 1 regulator",
            switching_frequency=352e3,
            domain=CORE1,
            fundamental_dbm=-106.0,
            input_volts=12.0,
            output_volts=1.05,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=8,
            position=(12.0, 13.0),
        ),
        MemoryRefreshEmitter(
            "memory refresh",
            refresh_frequency=128e3,
            fundamental_dbm=-122.0,
            coherence_loss=2.0,
            n_ranks=4,
            position=(22.0, 8.0),
        ),
    ]
    return SystemModel(
        "dual-core per-regulator testbench",
        emitters,
        environment=environment or RFEnvironment.quiet(),
    )


def fivr_machine(environment=None, rng=None):
    """A system with an integrated 140 MHz (FIVR-style) core regulator.

    Compared to a motherboard regulator the integrated one switches ~400x
    faster; its feedback tracks load changes at hundreds of kHz, so the
    campaign can use a far larger falt — a higher-bandwidth power readout
    for an attacker (and a wider leak for the defender to quantify).
    """
    rng = ensure_rng(rng)
    emitters = [
        SwitchingRegulator(
            "integrated core regulator (FIVR)",
            switching_frequency=140e6,
            domain="core",
            fundamental_dbm=-94.0,
            input_volts=1.8,
            output_volts=1.05,
            duty_gain=0.05,
            # at a ~0.6 conversion duty the pulse harmonics barely respond
            # to duty changes; the switched-current mechanism dominates
            current_gain=1.0,
            # PLL-derived on-chip clock: far more stable than a board
            # regulator's RC oscillator
            fractional_sigma=5e-5,
            max_harmonics=2,
            position=(10.0, 14.0),
        ),
        SwitchingRegulator(
            "DRAM DIMM regulator",
            switching_frequency=315e3,
            domain=DRAM_POWER,
            fundamental_dbm=-103.0,
            input_volts=12.0,
            output_volts=1.35,
            duty_gain=0.12,
            fractional_sigma=4e-4,
            max_harmonics=12,
            position=(20.0, 10.0),
        ),
    ]
    return SystemModel(
        "FIVR testbench",
        emitters,
        environment=environment or RFEnvironment.quiet(),
    )
