"""The RF environment: everything FASE must reject.

The paper's experiments "cover the entire AM radio spectrum, and were
performed without shielding in a major metropolitan area with hundreds of
radio stations nearby"; the headline robustness result is that FASE rejects
all of it — broadcast AM (modulated, but not by the micro-benchmark),
long-wave transmitters, the system's own unmodulated periodic signals, and
broadband noise.

Environment sources are *static*: their mean spectrum is the same in every
capture regardless of what the micro-benchmark does. (The per-capture
fluctuations come from the analyzer's estimation-noise model.) That
stationarity is exactly the property Eq. 2 normalizes away.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..rng import child_rng, ensure_rng, make_rng
from ..signals.lineshape import DeltaLine, GaussianLine
from ..signals.noise import BroadbandHills, CompositeNoise, PinkNoise, ThermalNoise
from ..units import dbm_to_milliwatts

#: US AM broadcast band edges and channel spacing.
AM_BAND_LOW = 540e3
AM_BAND_HIGH = 1600e3
AM_CHANNEL_SPACING = 10e3


class EnvironmentSource:
    """Base class: a static contributor of mean per-bin power."""

    def mean_power(self, grid):
        """Mean per-bin power (mW) over the grid."""
        raise NotImplementedError


class ToneInterferer(EnvironmentSource):
    """A fixed unmodulated tone (e.g. a long-wave time-signal station)."""

    def __init__(self, frequency, power_dbm, linewidth=0.0, name=""):
        if frequency <= 0:
            raise SystemModelError("tone frequency must be positive")
        self.frequency = float(frequency)
        self.power_mw = float(dbm_to_milliwatts(power_dbm))
        self.shape = GaussianLine(linewidth) if linewidth > 0 else DeltaLine()
        self.name = name or f"tone@{frequency:.0f}Hz"

    def mean_power(self, grid):
        return self.shape.render(grid.frequencies, self.frequency, self.power_mw)


class AMRadioStation(EnvironmentSource):
    """A broadcast AM station: carrier plus program-audio side-bands.

    The program audio occupies ±``audio_bandwidth`` around the carrier;
    ``sideband_fraction`` of the received power rides in the side-bands.
    Strongly amplitude-modulated — but not by our micro-benchmark, so FASE
    must not report it.
    """

    def __init__(self, frequency, power_dbm, audio_bandwidth=5e3, sideband_fraction=0.3, name=""):
        if frequency <= 0:
            raise SystemModelError("carrier frequency must be positive")
        if audio_bandwidth <= 0:
            raise SystemModelError("audio bandwidth must be positive")
        if not 0.0 <= sideband_fraction < 1.0:
            raise SystemModelError("sideband fraction must be in [0, 1)")
        self.frequency = float(frequency)
        self.power_mw = float(dbm_to_milliwatts(power_dbm))
        self.audio_bandwidth = float(audio_bandwidth)
        self.sideband_fraction = float(sideband_fraction)
        self.name = name or f"AM@{frequency / 1e3:.0f}kHz"

    def mean_power(self, grid):
        carrier = DeltaLine().render(
            grid.frequencies, self.frequency, self.power_mw * (1.0 - self.sideband_fraction)
        )
        audio = GaussianLine(self.audio_bandwidth / 2.0).render(
            grid.frequencies, self.frequency, self.power_mw * self.sideband_fraction
        )
        return carrier + audio


class SpuriousToneField(EnvironmentSource):
    """Many fixed periodic signals scattered across a band.

    Stands in for the "thousands of periodic signals that are not modulated
    by system activity" a computer produces, plus miscellaneous external
    narrowband interferers. The realization is fixed at construction.
    """

    def __init__(self, low, high, n_tones, power_dbm_low=-145.0, power_dbm_high=-115.0, rng=None):
        if not 0 <= low < high:
            raise SystemModelError("need 0 <= low < high")
        if n_tones < 0:
            raise SystemModelError("n_tones must be non-negative")
        if rng is None:
            # Without an explicit stream the field used to draw from fresh
            # process entropy, so two environments assembled in the same
            # process could never reproduce each other (or a rerun). Derive
            # a fixed labeled stream instead, the same way campaign
            # components do in rng.py.
            rng = child_rng(make_rng(0), "spurious-tone-field")
        else:
            rng = ensure_rng(rng)
        self.frequencies = np.sort(rng.uniform(low, high, size=n_tones))
        self.powers_mw = dbm_to_milliwatts(
            rng.uniform(power_dbm_low, power_dbm_high, size=n_tones)
        )

    def mean_power(self, grid):
        power = np.zeros(grid.n_bins, dtype=float)
        shape = DeltaLine()
        for frequency, tone_power in zip(self.frequencies, self.powers_mw):
            power += shape.render(grid.frequencies, frequency, tone_power)
        return power


class RFEnvironment(EnvironmentSource):
    """Aggregate of environment sources plus the noise landscape."""

    def __init__(self, sources=(), noise=None):
        self.sources = list(sources)
        self.noise = noise

    def mean_power(self, grid):
        power = np.zeros(grid.n_bins, dtype=float)
        for source in self.sources:
            power += source.mean_power(grid)
        if self.noise is not None:
            power += self.noise.mean_density(grid.frequencies) * grid.resolution
        return power

    @classmethod
    def quiet(cls, floor_dbm_per_hz=-170.0):
        """A shielded-lab environment: thermal floor only."""
        return cls(sources=(), noise=ThermalNoise(floor_dbm_per_hz))

    @classmethod
    def metropolitan(
        cls,
        span,
        rng=None,
        n_am_stations=40,
        n_spurious=120,
        n_longwave=4,
        strongest_am_dbm=-95.0,
    ):
        """An unshielded city lab like the paper's (Section 3).

        Populates the AM broadcast band with stations on 10 kHz channels,
        a few strong long-wave transmitters, a field of spurious tones over
        the whole span, and thermal + pink + rolling-hills noise.
        """
        if span <= 0:
            raise SystemModelError("span must be positive")
        rng = ensure_rng(rng)
        sources = []
        band_high = min(AM_BAND_HIGH, span)
        if band_high > AM_BAND_LOW:
            channels = np.arange(AM_BAND_LOW, band_high + 1, AM_CHANNEL_SPACING)
            n_pick = min(n_am_stations, len(channels))
            picked = rng.choice(channels, size=n_pick, replace=False)
            for channel in picked:
                power = strongest_am_dbm - rng.uniform(0.0, 35.0)
                sources.append(AMRadioStation(float(channel), power))
        longwave_band_high = min(300e3, span)
        if longwave_band_high > 60e3:
            for _ in range(n_longwave):
                frequency = rng.uniform(60e3, longwave_band_high)
                sources.append(ToneInterferer(frequency, -100.0 - rng.uniform(0.0, 15.0)))
        sources.append(SpuriousToneField(0.0, span, n_spurious, rng=rng))
        noise = CompositeNoise(
            [
                ThermalNoise(-165.0),
                PinkNoise(level_dbm_per_hz=-163.0, knee=50e3),
                BroadbandHills(span, n_hills=8, peak_dbm_per_hz=-168.0, rng=rng),
            ]
        )
        return cls(sources=sources, noise=noise)
