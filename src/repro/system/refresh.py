"""Memory-refresh emanations (Section 4.2).

DDR3 requires a refresh command on average every tREFI = 7.8 us — a 128 kHz
repetition ("the maximum allowable average time between refresh commands").
Each command lasts about 200 ns, so the duty cycle is below 3 % and "its
harmonics are all of similar strength" (slow sinc decay). The timing is
derived from the crystal-clocked memory controller, so the lines are sharp.

The modulation mechanism is *inverted*: demand accesses delay refresh
commands, and the controller catches up later, so increasing memory
activity *disrupts the periodicity* of refresh and weakens the coherent
lines ("it weakens (instead of getting stronger) as memory activity
increases"), spreading the lost energy over a wide band. We model the
coherent amplitude with a coherence factor

    rho(utilization) = exp(-coherence_loss * utilization)

and return the lost power (1 - rho^2) as a broad pedestal around each
harmonic. Under X/Y alternation the coherence alternates between rho(u_x)
and rho(u_y), amplitude-modulating every refresh harmonic — which is how
FASE finds the signal in Figure 11.

Rank staggering reproduces the paper's localization puzzle: Figure 11 shows
refresh harmonics at "512 kHz, 1024 kHz, etc." while near-field probing
"revealed many additional harmonics with a greatest common divisor of
128 kHz, not 512 kHz". A controller that staggers refreshes round-robin
across ``n_ranks`` ranks emits an aggregate pulse train at
``n_ranks * 128 kHz``; only a small per-rank amplitude imbalance leaks weak
lines at the 128 kHz sub-harmonics, visible only close to the DIMMs. With
``n_ranks=4`` the strong far-field comb lands exactly on 512 kHz multiples.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..signals.lineshape import GaussianLine
from ..signals.oscillator import CrystalOscillator
from ..signals.pulse import pulse_harmonic_amplitude
from ..units import dbm_to_milliwatts
from .domains import MEMORY_UTILIZATION
from .emitter import Emitter

#: DDR3 average refresh interval (7.8125 us) expressed as a frequency.
DDR3_REFRESH_FREQUENCY = 128e3

#: Approximate refresh command duration (tRFC-ish) used for the duty cycle.
REFRESH_PULSE_SECONDS = 200e-9


class MemoryRefreshEmitter(Emitter):
    """Crystal-timed refresh pulses whose periodicity erodes under load."""

    def __init__(
        self,
        name="memory refresh",
        refresh_frequency=DDR3_REFRESH_FREQUENCY,
        fundamental_dbm=-128.0,
        coherence_loss=1.0,
        dispersal_width=30e3,
        max_harmonics=40,
        n_ranks=1,
        rank_imbalance=0.15,
        **kwargs,
    ):
        if refresh_frequency <= 0:
            raise SystemModelError("refresh frequency must be positive")
        if coherence_loss < 0:
            raise SystemModelError("coherence loss must be non-negative")
        if dispersal_width <= 0:
            raise SystemModelError("dispersal width must be positive")
        if n_ranks < 1:
            raise SystemModelError("n_ranks must be >= 1")
        if not 0.0 <= rank_imbalance < 1.0:
            raise SystemModelError("rank imbalance must be in [0, 1)")
        self.n_ranks = int(n_ranks)
        self.rank_imbalance = float(rank_imbalance)
        self.duty_cycle = REFRESH_PULSE_SECONDS * refresh_frequency
        if not 0 < self.duty_cycle < 0.1:
            raise SystemModelError("refresh duty cycle out of the <10% regime")
        self.coherence_loss = float(coherence_loss)
        self.dispersal_width = float(dispersal_width)
        oscillator = CrystalOscillator(refresh_frequency)
        super().__init__(
            name,
            oscillator,
            domain=MEMORY_UTILIZATION,
            fundamental_dbm=fundamental_dbm,
            max_harmonics=max_harmonics,
            **kwargs,
        )

    @property
    def refresh_frequency(self):
        return self.oscillator.frequency

    def coherence(self, utilization):
        """Fraction of refresh amplitude remaining coherent at a load."""
        if not 0.0 <= utilization <= 1.0:
            raise SystemModelError("utilization must be in [0, 1]")
        return float(np.exp(-self.coherence_loss * utilization))

    def rank_stagger_factor(self, order):
        """Amplitude factor from round-robin rank staggering at a harmonic.

        The aggregate pulse train is the sum of ``n_ranks`` copies delayed
        by 1/n_ranks of the period, with per-rank amplitudes
        ``1 + imbalance * cos(2 pi r / n_ranks)``. Equal ranks cancel every
        harmonic not divisible by n_ranks; the imbalance leaks weak lines
        at the sub-harmonics (the near-field-only 128 kHz comb).
        """
        if self.n_ranks == 1:
            return 1.0
        ranks = np.arange(self.n_ranks)
        amplitudes = 1.0 + self.rank_imbalance * np.cos(2.0 * np.pi * ranks / self.n_ranks)
        phases = np.exp(-2j * np.pi * order * ranks / self.n_ranks)
        return float(np.abs(np.sum(amplitudes * phases)) / np.sum(amplitudes))

    def reference_level(self):
        # fundamental_dbm is specified for an idle system (strongest case).
        return 0.0

    def amplitude_unit(self):
        """Anchor ``fundamental_dbm`` to the first *strong* comb line.

        With rank staggering the true fundamental (e.g. 128 kHz) is a weak
        leak; what an observer calibrates against is the first full-comb
        harmonic (order ``n_ranks``, e.g. 512 kHz), matching how the paper
        reports the signal's harmonics "at frequencies of 512 kHz,
        1024 kHz, etc.".
        """
        reference = self.envelope(self.n_ranks, self.reference_level())
        if reference <= 0:
            raise SystemModelError("refresh reference envelope must be positive")
        return float(np.sqrt(dbm_to_milliwatts(self.fundamental_dbm))) / reference

    def envelope(self, order, level):
        return (
            pulse_harmonic_amplitude(order, self.duty_cycle)
            * self.rank_stagger_factor(order)
            * self.coherence(level)
        )

    def render(self, grid, activity):
        """Coherent lines + the dispersed-energy pedestal."""
        power = super().render(grid, activity)
        unit = self.amplitude_unit()
        mean_utilization = activity.mean_level(MEMORY_UTILIZATION)
        rho = self.coherence(mean_utilization)
        dispersed_fraction = 1.0 - rho * rho
        if dispersed_fraction <= 0:
            return power
        pedestal = GaussianLine(self.dispersal_width)
        for order in range(1, self.max_harmonics + 1):
            center = self.oscillator.harmonic_frequency(order)
            if center - pedestal.halfwidth > grid.stop:
                break
            amplitude = (
                unit
                * pulse_harmonic_amplitude(order, self.duty_cycle)
                * self.rank_stagger_factor(order)
            )
            lost_power = amplitude * amplitude * dispersed_fraction
            if lost_power <= 0:
                continue
            power += pedestal.render(grid.frequencies, center, lost_power)
        return power
