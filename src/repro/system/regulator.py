"""Switching voltage regulators: the strongest carriers FASE finds.

Section 4.1 mechanism, implemented literally:

* The regulator switches at a fixed frequency (200-500 kHz typical) set by
  an RC oscillator, so its carrier and harmonics have Gaussian line shapes.
* It "maintains the voltage supplied to the CPU by varying the duty cycle
  of the control signal of a switch between the 12 V supply and the 1 V
  output". Higher load current → larger duty cycle.
* "Changing the duty cycle changes (modulates) the amplitude of all the
  signal's harmonics" — captured by the pulse-train Fourier envelope
  ``|c_m(d)| = d sinc(m d)``.

The nominal duty cycle is the voltage conversion ratio (e.g. 1 V from 12 V
→ d ≈ 0.083, "small when the ratio between the input and output voltage is
large", which is why "the even harmonics of this carrier are relatively
strong" in Figure 11).

Section 4.4's AMD regulator is the dual: a *constant-on-time* regulator
keeps the switch-on time fixed and varies the switching period, so load
changes move its *frequency* (FM). FASE must not report it, and does not,
because an incoherent frequency hop leaves no falt-tracking side-bands.
"""

from __future__ import annotations

import numpy as np

from ..errors import SystemModelError
from ..signals.modulation import fm_dwell_lines
from ..signals.oscillator import RCOscillator
from ..signals.pulse import pulse_harmonic_amplitude
from .emitter import Emitter


class SwitchingRegulator(Emitter):
    """Fixed-frequency PWM buck regulator: AM via pulse-width modulation.

    ``input_volts``/``output_volts`` fix the nominal duty cycle
    ``d0 = output / input``. ``duty_gain`` is how much the duty cycle rises
    from zero load to full load (the feedback loop compensating the output
    droop). The envelope of harmonic ``m`` at load level L is
    ``|c_m(d0 + duty_gain * L)|``.
    """

    def __init__(
        self,
        name,
        switching_frequency,
        domain,
        fundamental_dbm,
        input_volts=12.0,
        output_volts=1.0,
        duty_gain=0.05,
        current_gain=0.0,
        fractional_sigma=2e-3,
        max_harmonics=14,
        **kwargs,
    ):
        if input_volts <= 0 or output_volts <= 0 or output_volts >= input_volts:
            raise SystemModelError("need 0 < output_volts < input_volts")
        if duty_gain < 0:
            raise SystemModelError("duty gain must be non-negative")
        if current_gain < 0:
            raise SystemModelError("current gain must be non-negative")
        self.nominal_duty = output_volts / input_volts
        self.duty_gain = float(duty_gain)
        #: Second AM mechanism: the emitted field scales with the switched
        #: current, which follows the load directly. Dominant when the
        #: conversion ratio is large (duty near 0.5, where the pulse
        #: harmonics barely respond to duty changes — e.g. integrated
        #: regulators converting 1.8 V to ~1 V).
        self.current_gain = float(current_gain)
        if self.nominal_duty + self.duty_gain >= 1.0:
            raise SystemModelError("duty cycle would exceed 1 at full load")
        oscillator = RCOscillator(switching_frequency, fractional_sigma=fractional_sigma)
        super().__init__(
            name,
            oscillator,
            domain=domain,
            fundamental_dbm=fundamental_dbm,
            max_harmonics=max_harmonics,
            **kwargs,
        )

    @property
    def switching_frequency(self):
        return self.oscillator.frequency

    def duty_cycle_at(self, level):
        """Switch duty cycle at a load level in [0, 1]."""
        if not 0.0 <= level <= 1.0:
            raise SystemModelError("load level must be in [0, 1]")
        return self.nominal_duty + self.duty_gain * level

    def envelope(self, order, level):
        current_factor = 1.0 + self.current_gain * level
        return current_factor * pulse_harmonic_amplitude(order, self.duty_cycle_at(level))


class ConstantOnTimeRegulator(Emitter):
    """Constant-on-time regulator: frequency-modulated by its load.

    "This particular regulator keeps the input-to-output switch turned on
    for a fixed amount of time during its switching cycle, but changes the
    duration of the switching cycle (i.e. its switching frequency) to
    increase/decrease its duty cycle." (Section 4.4)

    With on-time ``t_on`` fixed, delivering duty cycle ``d`` requires
    switching frequency ``f = d / t_on``; load raises ``d`` and therefore
    ``f``. The long-term spectrum under alternation is a pair of dwell
    humps per harmonic (see :func:`fm_dwell_lines`), *without* coherent
    falt side-bands — the property that makes FASE correctly ignore it.
    """

    def __init__(
        self,
        name,
        nominal_frequency,
        domain,
        fundamental_dbm,
        input_volts=12.0,
        output_volts=1.1,
        duty_gain=0.05,
        fractional_sigma=4e-3,
        max_harmonics=8,
        **kwargs,
    ):
        if input_volts <= 0 or output_volts <= 0 or output_volts >= input_volts:
            raise SystemModelError("need 0 < output_volts < input_volts")
        if duty_gain < 0:
            raise SystemModelError("duty gain must be non-negative")
        self.nominal_duty = output_volts / input_volts
        self.duty_gain = float(duty_gain)
        #: Fixed on-time chosen so the nominal duty is delivered at the
        #: nominal switching frequency.
        self.on_time = self.nominal_duty / nominal_frequency
        oscillator = RCOscillator(nominal_frequency, fractional_sigma=fractional_sigma)
        super().__init__(
            name,
            oscillator,
            domain=domain,
            fundamental_dbm=fundamental_dbm,
            max_harmonics=max_harmonics,
            **kwargs,
        )

    def frequency_at(self, level):
        """Switching frequency at a load level (rises with load)."""
        if not 0.0 <= level <= 1.0:
            raise SystemModelError("load level must be in [0, 1]")
        duty = self.nominal_duty + self.duty_gain * level
        return duty / self.on_time

    def envelope(self, order, level):
        # Envelope amplitude barely changes (the duty cycle is what the
        # feedback holds); harmonic decay follows the pulse envelope at the
        # nominal duty.
        return pulse_harmonic_amplitude(order, self.nominal_duty)

    def render(self, grid, activity):
        """Render dwell humps at the X-load and Y-load frequencies."""
        power = np.zeros(grid.n_bins, dtype=float)
        unit = self.amplitude_unit()
        level_x, level_y = self.activity_levels(activity)
        f_x = self.frequency_at(level_x)
        f_y = self.frequency_at(level_y)
        for order in range(1, self.max_harmonics + 1):
            amplitude = unit * self.envelope(order, 0.0)
            line_power = amplitude * amplitude
            if line_power <= 0:
                continue
            shape = self.oscillator.lineshape(order)
            centers = fm_dwell_lines(
                f_x * order,
                f_y * order,
                duty_cycle=activity.duty_cycle,
                power=line_power,
                smear_fraction=0.15,
            )
            margin = shape.halfwidth + grid.resolution
            if min(line.offset for line in centers) - margin > grid.stop:
                break
            for line in centers:
                line_shape = shape.broadened(line.extra_width)
                power += line_shape.render(grid.frequencies, line.offset, line.power)
        return power

    def is_modulated_by(self, activity, threshold=1e-9):
        """FM response: the activity moves the frequency, not the envelope."""
        level_x, level_y = self.activity_levels(activity)
        return abs(self.frequency_at(level_x) - self.frequency_at(level_y)) > threshold
