"""Exception hierarchy for the FASE reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Submodules raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UnitsError(ReproError):
    """A quantity was given in an invalid or out-of-range unit."""


class GridError(ReproError):
    """A frequency grid was constructed or indexed inconsistently."""


class TraceError(ReproError):
    """A spectrum trace operation received incompatible operands."""


class CalibrationError(ReproError):
    """The micro-benchmark calibration loop failed to converge."""


class CampaignError(ReproError):
    """A measurement campaign was configured inconsistently."""


class CampaignArchiveError(CampaignError):
    """A campaign archive on disk is truncated, corrupted, or incomplete.

    Raised by :mod:`repro.io` when an ``.npz`` archive cannot be read back
    (bad zip, truncated member, missing ``trace_{i}`` array). Distinct
    from plain :class:`CampaignError` so callers — and
    :func:`repro.io.load_campaign`'s journal-recovery fallback — can tell
    "this file is damaged" apart from "this campaign is inconsistent".
    """


class JournalError(CampaignError):
    """A campaign journal is missing, incompatible, or refused an operation.

    Raised by :class:`repro.runner.CampaignJournal` when a journal
    directory holds a different campaign (fingerprint mismatch), an
    unsupported format, or when resuming was not permitted.
    """


class CaptureTimeoutError(ReproError):
    """A capture attempt exceeded its wall-clock deadline.

    Raised by the :class:`repro.runner.CaptureWatchdog` when one analyzer
    call runs past ``FaseConfig.capture_timeout_s``. ``index``/``attempt``
    identify the capture for the robustness ledger. The hung call itself
    cannot be forcibly killed in-process; the watchdog abandons it on a
    daemon thread and the campaign moves on.
    """

    def __init__(self, message, index=None, attempt=None):
        super().__init__(message)
        self.index = index
        self.attempt = attempt


class CaptureFaultError(ReproError):
    """A capture was lost to an acquisition fault (drop/timeout).

    Raised by the fault-injection layer when a capture never produces a
    trace. ``events`` carries the :class:`~repro.faults.FaultEvent`
    records of everything injected into the attempt (including the drop
    itself) so the campaign can account for them even though the capture
    yielded no data.
    """

    def __init__(self, message, events=()):
        super().__init__(message)
        self.events = tuple(events)


class DegradedCampaignError(CampaignError):
    """Too few usable captures remain after fault screening/exclusion.

    The degraded scoring path needs at least two clean spectra for the
    Eq. 2 cross-normalization; when drops and exclusions leave fewer, the
    campaign fails loudly instead of silently scoring garbage.
    ``robustness`` (when available) is the run's
    :class:`~repro.faults.RobustnessReport`, so callers can still see
    what was injected and excluded.
    """

    def __init__(self, message, robustness=None):
        super().__init__(message)
        self.robustness = robustness


class SurveyError(ReproError):
    """A multi-machine survey was configured or executed inconsistently.

    Raised by :mod:`repro.survey` for unknown preset machines, empty work
    plans, and invalid worker/retry budgets. Per-shard failures inside a
    running survey never raise this — they are requeued and ledgered in
    the :class:`~repro.survey.SurveyLedger` instead.
    """


class ManifestError(SurveyError):
    """A survey manifest is missing, incompatible, or refused an operation.

    Raised by :class:`repro.survey.SurveyManifest` when a manifest
    directory holds a different survey plan (fingerprint mismatch), an
    unsupported format, or when an existing manifest is reused without
    ``resume=True``. Damage *inside* a manifest (torn tails, corrupt
    records) never raises — damaged records are skipped and their shards
    simply re-run, which is always safe because shard results are pure
    functions of ``(seed, shard_id)``.
    """


class ServiceError(ReproError):
    """The campaign service was configured or operated inconsistently.

    Raised by :mod:`repro.service` for unknown tenants or jobs, invalid
    quota/priority policies, and malformed API requests. Worker-side
    shard failures inside a running job never raise this — they are
    retried and ledgered through the job's survey machinery, exactly as
    in a standalone :func:`repro.survey.run_survey`.
    """


class DetectionError(ReproError):
    """Carrier detection was invoked with invalid inputs."""


class TelemetryError(ReproError):
    """A telemetry pipeline was configured or combined inconsistently.

    Raised by :mod:`repro.telemetry` for invalid histogram bucket
    definitions and snapshot merges across incompatible bucket layouts.
    Never raised on the instrumentation fast path — a disabled pipeline
    cannot fail.
    """


class SystemModelError(ReproError):
    """A system model (emitters/domains/layout) is inconsistent."""
