"""Exception hierarchy for the FASE reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Submodules raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class UnitsError(ReproError):
    """A quantity was given in an invalid or out-of-range unit."""


class GridError(ReproError):
    """A frequency grid was constructed or indexed inconsistently."""


class TraceError(ReproError):
    """A spectrum trace operation received incompatible operands."""


class CalibrationError(ReproError):
    """The micro-benchmark calibration loop failed to converge."""


class CampaignError(ReproError):
    """A measurement campaign was configured inconsistently."""


class DetectionError(ReproError):
    """Carrier detection was invoked with invalid inputs."""


class SystemModelError(ReproError):
    """A system model (emitters/domains/layout) is inconsistent."""
