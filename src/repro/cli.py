"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``scan``      run FASE on a preset machine and print the report
* ``survey``    run FASE over many machines on process-parallel shards
* ``localize``  near-field-localize a carrier on a preset machine
* ``record``    run a campaign and save the raw spectra to a .npz file
* ``analyze``   detect carriers in a previously recorded campaign
* ``serve``     run the durable multi-tenant campaign service
* ``worker``    run a standalone worker host against a running service
* ``submit``    submit a campaign job to a running service
* ``jobs``      list a running service's jobs
* ``watch``     live-tail a service job's event stream
* ``cancel``    cooperatively cancel a service job
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import io as campaign_io
from .core import (
    CarrierDetector,
    FaseConfig,
    MeasurementCampaign,
    group_harmonics,
    run_fase,
)
from .errors import ReproError
from .faults import FAULT_CLASSES, FaultPlan
from .runner import DurableCampaign
from .survey import BAND_PRESETS, DEFAULT_PAIRS, AdaptivePlanner, parse_bands, run_survey
from .system import ALL_PRESETS
from .telemetry import JsonlSink, Telemetry, use_telemetry
from .uarch.activity import AlternationActivity
from .uarch.isa import MicroOp, activity_levels


def _add_machine_argument(parser):
    parser.add_argument(
        "--machine",
        choices=sorted(ALL_PRESETS),
        default="corei7_desktop",
        help="preset system model to scan",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")


def _build_machine(args):
    return ALL_PRESETS[args.machine](rng=np.random.default_rng(args.seed))


def _parse_span(args):
    return FaseConfig(
        span_low=args.span_low,
        span_high=args.span_high,
        fres=args.fres,
        falt1=args.falt1,
        f_delta=args.f_delta,
        n_workers=args.workers,
        max_capture_retries=args.max_capture_retries,
        capture_timeout_s=args.capture_timeout,
        retry_backoff_s=args.retry_backoff,
        name="cli campaign",
    )


def _add_campaign_arguments(parser):
    parser.add_argument("--span-low", type=float, default=0.0)
    parser.add_argument("--span-high", type=float, default=4e6)
    parser.add_argument("--fres", type=float, default=50.0)
    parser.add_argument("--falt1", type=float, default=43.3e3)
    parser.add_argument("--f-delta", type=float, default=0.5e3)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="scan/record: captures (and activity pairs) run on this many "
        "threads (>1 uses per-measurement random streams); survey: shards "
        "run on this many worker processes",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="CLASSES",
        help="enable fault injection: 'all' or a comma list of "
        f"{','.join(sorted(FAULT_CLASSES))} (default severities); the run "
        "screens, retries, and excludes bad captures and reports the damage",
    )
    parser.add_argument(
        "--max-capture-retries",
        type=int,
        default=2,
        help="retry budget per capture (degraded mode and durable execution)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="durable execution: checkpoint each completed capture to a "
        "journal under DIR so a killed run can resume from the last good "
        "capture (see --resume)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir (or survey --manifest-dir): continue "
        "an existing journal/manifest instead of refusing to touch it",
    )
    parser.add_argument(
        "--capture-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="durable execution: wall-clock deadline per capture attempt; "
        "a hung capture is abandoned, retried with backoff, and finally "
        "dropped (requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the bounded exponential backoff between capture "
        "retries on the durable path (default 0.5)",
    )
    parser.add_argument(
        "--telemetry-jsonl",
        default=None,
        metavar="PATH",
        help="append every telemetry record (spans, events, final metrics "
        "snapshot) to PATH as one JSON object per line",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute campaign wall-clock to capture/average/score/detect "
        "stages and print the breakdown after the run",
    )


def _parse_fault_plan(args):
    if args.faults is None:
        return None
    classes = None
    if args.faults.strip().lower() not in ("all", ""):
        classes = tuple(name.strip() for name in args.faults.split(",") if name.strip())
    try:
        return FaultPlan.default(classes)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc


def _parse_ops(text):
    try:
        x, y = text.split("/")
        return MicroOp(x.strip().upper()), MicroOp(y.strip().upper())
    except (ValueError, KeyError) as exc:
        valid = ", ".join(sorted(op.value for op in MicroOp))
        raise SystemExit(
            f"invalid activity pair {text!r}; expected X/Y with each of X, Y "
            f"one of: {valid} (e.g. LDM/LDL1)"
        ) from exc


def _build_telemetry(args):
    """A :class:`Telemetry` per the CLI flags, or ``None`` when both are off."""
    if not args.telemetry_jsonl and not args.profile:
        return None
    sinks = [JsonlSink(args.telemetry_jsonl)] if args.telemetry_jsonl else []
    return Telemetry(sinks=sinks, profile=args.profile)


def _finish_telemetry(telemetry):
    if telemetry is None:
        return
    if telemetry.profiler is not None:
        print(telemetry.profiler.to_text())
    telemetry.close()


def cmd_scan(args):
    machine = _build_machine(args)
    config = _parse_span(args)
    kwargs = {"config": config, "rng": np.random.default_rng(args.seed + 1)}
    if args.pair:
        kwargs["pairs"] = (_parse_ops(args.pair),)
    plan = _parse_fault_plan(args)
    if plan is not None:
        kwargs["fault_plan"] = plan
    if args.checkpoint_dir is not None:
        kwargs["checkpoint_dir"] = args.checkpoint_dir
        kwargs["resume"] = args.resume
    telemetry = _build_telemetry(args)
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    try:
        report = run_fase(machine, **kwargs)
    except ReproError as exc:
        if telemetry is not None:
            # The run died; still flush what the ledger saw so the JSONL
            # stream explains the failure.
            telemetry.emit_snapshot(label="metrics-at-failure")
        _finish_telemetry(telemetry)
        raise SystemExit(str(exc)) from exc
    print(report.to_text())
    _finish_telemetry(telemetry)
    return 0


def cmd_survey(args):
    machines = None
    if args.machines:
        machines = [name.strip() for name in args.machines.split(",") if name.strip()]
    fault_classes = None
    if args.faults is not None:
        fault_classes = args.faults  # run_survey validates names
    telemetry = _build_telemetry(args)
    telemetry_dir = None
    if args.telemetry_jsonl:
        # Survey-level records go to PATH; per-shard streams under PATH.d/.
        telemetry_dir = f"{args.telemetry_jsonl}.d"
    planner = None
    if not args.adaptive and (args.capture_budget is not None or args.prescan_rbw is not None):
        raise SystemExit("--capture-budget and --prescan-rbw require --adaptive")
    try:
        if args.adaptive:
            planner = AdaptivePlanner(
                capture_budget=args.capture_budget, prescan_rbw=args.prescan_rbw
            )
        config = _parse_span(args)
        pairs = (_parse_ops(args.pair),) if args.pair else DEFAULT_PAIRS
        report = run_survey(
            machines=machines,
            pairs=pairs,
            config=config,
            bands=parse_bands(args.bands),
            seed=args.seed,
            workers=args.workers,
            fault_classes=fault_classes,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            telemetry_dir=telemetry_dir,
            telemetry=telemetry,
            max_shard_retries=args.max_shard_retries,
            max_pool_breaks=args.max_pool_breaks,
            planner=planner,
            manifest_dir=args.manifest_dir,
            shard_timeout_s=args.shard_timeout,
        )
    except ReproError as exc:
        if telemetry is not None:
            # The survey died; still flush what the parent saw so the
            # JSONL stream explains the failure.
            telemetry.emit_snapshot(label="metrics-at-failure")
        _finish_telemetry(telemetry)
        raise SystemExit(str(exc)) from exc
    print(report.to_text())
    _finish_telemetry(telemetry)
    return 0


def cmd_localize(args):
    from .analysis.localization import localize_carrier

    machine = _build_machine(args)
    activity = AlternationActivity.constant(
        activity_levels(MicroOp.LDM if args.memory else MicroOp.LDL2),
        label="steady probe activity",
    )
    result = localize_carrier(machine, args.frequency, activity)
    print(result.describe())
    return 0


def cmd_record(args):
    machine = _build_machine(args)
    config = _parse_span(args)
    op_x, op_y = _parse_ops(args.pair)
    if args.checkpoint_dir is not None:
        campaign = DurableCampaign(
            machine,
            config,
            journal_dir=args.checkpoint_dir,
            rng=np.random.default_rng(args.seed + 1),
            fault_plan=_parse_fault_plan(args),
            resume=args.resume,
        )
    else:
        campaign = MeasurementCampaign(
            machine,
            config,
            rng=np.random.default_rng(args.seed + 1),
            fault_plan=_parse_fault_plan(args),
        )
    telemetry = _build_telemetry(args)
    try:
        if telemetry is not None:
            with use_telemetry(telemetry):
                result = campaign.run(op_x, op_y, label=args.pair)
            telemetry.emit_snapshot()
        else:
            result = campaign.run(op_x, op_y, label=args.pair)
    except ReproError as exc:
        if telemetry is not None:
            telemetry.emit_snapshot(label="metrics-at-failure")
        _finish_telemetry(telemetry)
        raise SystemExit(str(exc)) from exc
    saved = campaign_io.save_campaign(result, args.output, compress=not args.uncompressed)
    resumed = getattr(campaign, "resumed_indices", ())
    if resumed:
        print(f"resumed {len(resumed)} capture(s) from {args.checkpoint_dir}")
    print(f"recorded {len(result.measurements)} spectra to {saved}")
    if result.robustness is not None:
        print(result.robustness.to_text())
    _finish_telemetry(telemetry)
    return 0


def cmd_analyze(args):
    if args.manifest is not None:
        # Offline survey recovery: aggregate whatever shard outcomes the
        # manifest holds into a report, no re-runs, no .npz needed.
        from .survey import recover_survey_report

        try:
            report = recover_survey_report(args.manifest)
        except ReproError as exc:
            raise SystemExit(str(exc)) from exc
        print(report.to_text())
        return 0
    if args.input is None:
        raise SystemExit(
            "analyze needs an input .npz recording, or --manifest DIR to "
            "recover a survey report from a manifest"
        )
    try:
        result = campaign_io.load_campaign(args.input, journal=args.journal, lazy=args.lazy)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    detections = CarrierDetector().detect(result)
    print(f"{result.machine_name} / {result.activity_label}: {len(detections)} carriers")
    if result.excluded_indices:
        print(
            f"  ({len(result.excluded_indices)} flagged capture(s) excluded "
            f"from scoring: indices {result.excluded_indices})"
        )
    for harmonic_set in group_harmonics(detections):
        print(f"  set {harmonic_set.describe()}")
        for order, detection in harmonic_set.members:
            print(f"    [{order:>2}] {detection.describe()}")
    if result.robustness is not None:
        # Present for journal recoveries (how each capture was earned:
        # retries, faults, timeouts) and for archives of degraded runs.
        print(result.robustness.to_text())
    return 0


def _parse_tenant_policy(text):
    """``NAME[:weight[:priority[:max-shards[:max-captures]]]]`` → policy."""
    from .service import TenantPolicy

    parts = text.split(":")
    try:
        return TenantPolicy(
            name=parts[0],
            weight=float(parts[1]) if len(parts) > 1 and parts[1] else 1.0,
            priority=int(parts[2]) if len(parts) > 2 and parts[2] else 0,
            max_concurrent_shards=(
                int(parts[3]) if len(parts) > 3 and parts[3] else None
            ),
            max_captures=float(parts[4]) if len(parts) > 4 and parts[4] else None,
        )
    except (ValueError, ReproError) as exc:
        raise SystemExit(
            f"invalid tenant policy {text!r} "
            "(expected NAME[:weight[:priority[:max-shards[:max-captures]]]]): "
            f"{exc}"
        ) from exc


def cmd_serve(args):
    from .service import FaseService

    tenants = [_parse_tenant_policy(text) for text in (args.tenant or [])]
    service = FaseService(
        args.root,
        tenants=tenants,
        workers=args.workers,
        shard_timeout_s=args.shard_timeout,
        reap_after_s=args.reap_after,
    )
    host, port = service.start(host=args.host, port=args.port)
    print(f"fase service on http://{host}:{port} (store: {args.root})")
    try:
        import signal
        import threading

        stop = threading.Event()
        signal.signal(signal.SIGTERM, lambda *_: stop.set())
        signal.signal(signal.SIGINT, lambda *_: stop.set())
        stop.wait()
    finally:
        service.stop()
    return 0


def cmd_worker(args):
    import signal
    import threading

    from .service.host import WorkerHost

    host = WorkerHost(
        args.connect,
        name=args.name,
        workdir=args.workdir,
        shard_timeout_s=args.shard_timeout,
        poll_interval_s=args.poll_interval,
        idle_exit_s=args.idle_exit,
        max_shards=args.max_shards,
        verbose=not args.quiet,
    )
    # Cooperative shutdown: the in-flight shard finishes and is
    # reported; an unfinished claim is simply reaped by the service.
    if threading.current_thread() is threading.main_thread():
        signal.signal(signal.SIGTERM, lambda *_: host.stop())
        signal.signal(signal.SIGINT, lambda *_: host.stop())
    try:
        summary = host.run()
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    print(
        f"{summary['host']}: {summary['completed']} completed, "
        f"{summary['failed']} failed"
    )
    return 0


def cmd_watch(args):
    import json as _json

    from .service import ServiceClient

    client = ServiceClient(args.url)
    try:
        if args.no_follow:
            for event in client.events(args.job_id, offset=args.offset):
                print(_json.dumps(event, sort_keys=True))
            return 0
        stream = client.stream_events(args.job_id, offset=args.offset)
        while True:
            try:
                event = next(stream)
            except StopIteration as stop:
                print(f"{args.job_id}: {stop.value}")
                return 0
            print(_json.dumps(event, sort_keys=True), flush=True)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    except KeyboardInterrupt:
        return 130


def cmd_submit(args):
    from .io import _config_to_dict
    from .service import ServiceClient

    client = ServiceClient(args.url)
    machines = None
    if args.machines:
        machines = [name.strip() for name in args.machines.split(",") if name.strip()]
    pairs = None
    if args.pair:
        op_x, op_y = _parse_ops(args.pair)
        pairs = [(op_x.value, op_y.value)]
    try:
        job_id = client.submit(
            args.tenant,
            machines=machines,
            pairs=pairs,
            config=_config_to_dict(_parse_span(args)),
            bands=parse_bands(args.bands),
            seed=args.seed,
            max_shard_retries=args.max_shard_retries,
        )
        print(job_id)
        if args.wait:
            status = client.wait(job_id, timeout_s=args.wait)
            print(f"{job_id}: {status['state']} ({status['n_completed']}/{status['n_shards']})")
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    return 0


def cmd_jobs(args):
    from .service import ServiceClient

    try:
        jobs = ServiceClient(args.url).jobs()
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    for job in jobs:
        print(
            f"{job['job_id']}  {job['tenant']:<12} {job['state']:<10} "
            f"{job['n_completed']}/{job['n_shards']} shard(s)"
        )
    if not jobs:
        print("no jobs")
    return 0


def cmd_cancel(args):
    from .service import ServiceClient

    try:
        outcome = ServiceClient(args.url).cancel(args.job_id)
    except ReproError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"{outcome['job_id']}: {outcome['state']}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FASE (ISCA 2015) reproduction: find amplitude-modulated side-channel emanations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scan = sub.add_parser("scan", help="run FASE on a preset machine")
    _add_machine_argument(scan)
    _add_campaign_arguments(scan)
    scan.add_argument("--pair", default=None, help="activity pair, e.g. LDM/LDL1")
    scan.set_defaults(handler=cmd_scan)

    survey = sub.add_parser(
        "survey",
        help="run FASE over many machines with process-parallel shards",
    )
    survey.add_argument("--seed", type=int, default=0, help="root random seed")
    survey.add_argument(
        "--machines",
        default=None,
        metavar="NAMES",
        help="comma list of preset machines (default: all of "
        f"{','.join(sorted(ALL_PRESETS))})",
    )
    _add_campaign_arguments(survey)
    survey.add_argument(
        "--pair",
        default=None,
        help="survey a single activity pair, e.g. LDM/LDL1 (default: the "
        "paper's LDM/LDL1 and LDL2/LDL1)",
    )
    survey.add_argument(
        "--bands",
        default="1",
        metavar="N|PRESET|RANGES",
        help="split the span into sub-bands, one shard each: a count "
        f"(e.g. 8), a preset ({', '.join(sorted(BAND_PRESETS))}), or "
        "comma-separated MHz ranges like 0-2,2-4",
    )
    survey.add_argument(
        "--adaptive",
        action="store_true",
        help="use the budgeted adaptive planner: pre-scan every shard at "
        "low resolution, spend full-resolution captures on high-promise "
        "shards first, and early-stop shards whose Eq. 1 evidence "
        "provably cannot reach the detection threshold",
    )
    survey.add_argument(
        "--capture-budget",
        type=float,
        default=None,
        metavar="N",
        help="cap full-resolution captures survey-wide: an absolute count "
        "(>= 1) or a fraction of the exhaustive total (0 < N < 1); "
        "requires --adaptive",
    )
    survey.add_argument(
        "--prescan-rbw",
        type=float,
        default=None,
        metavar="HZ",
        help="pre-scan resolution bandwidth in Hz (default: 5x the "
        "campaign RBW); requires --adaptive",
    )
    survey.add_argument(
        "--manifest-dir",
        default=None,
        metavar="DIR",
        help="durable survey orchestration: journal every shard outcome, "
        "ledger event, and planner decision to a crash-safe manifest "
        "under DIR; re-running the same plan with --resume skips "
        "completed shards and continues where the killed run stopped",
    )
    survey.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stall watchdog: a shard that neither finishes nor beats its "
        "heartbeat within SECONDS (a positive number) has its worker "
        "killed, is charged a 'shard-stalled' failure against "
        "--max-shard-retries, and retries in isolation",
    )
    survey.add_argument(
        "--max-shard-retries",
        type=int,
        default=2,
        metavar="N",
        help="requeue a failed shard (worker death included) at most N "
        "times before abandoning it into the survey ledger",
    )
    survey.add_argument(
        "--max-pool-breaks",
        type=int,
        default=3,
        metavar="N",
        help="tolerate at most N shared-pool breaks survey-wide; once "
        "spent, shards still waiting for a shared pool are abandoned "
        "(ledger kind 'pool-break-cap') instead of cycling forever",
    )
    survey.set_defaults(handler=cmd_survey)

    localize = sub.add_parser("localize", help="near-field localize a carrier")
    _add_machine_argument(localize)
    localize.add_argument("frequency", type=float, help="carrier frequency in Hz")
    localize.add_argument(
        "--memory", action="store_true", help="probe under memory (vs on-chip) activity"
    )
    localize.set_defaults(handler=cmd_localize)

    record = sub.add_parser("record", help="run a campaign and save the spectra")
    _add_machine_argument(record)
    _add_campaign_arguments(record)
    record.add_argument("--pair", default="LDM/LDL1")
    record.add_argument(
        "--uncompressed",
        action="store_true",
        help="store spectra uncompressed (ZIP_STORED) so a later "
        "'analyze --lazy' can memory-map traces straight from the archive",
    )
    record.add_argument("output", help="output .npz path")
    record.set_defaults(handler=cmd_record)

    analyze = sub.add_parser("analyze", help="detect carriers in a recording")
    analyze.add_argument(
        "input", nargs="?", default=None, help="input .npz path (omit with --manifest)"
    )
    analyze.add_argument(
        "--manifest",
        default=None,
        metavar="DIR",
        help="recover and print the survey report journaled in a "
        "--manifest-dir manifest (no .npz input; completed shards, "
        "ledger, and planner decisions are aggregated offline)",
    )
    analyze.add_argument(
        "--lazy",
        action="store_true",
        help="memory-map traces from the archive instead of loading them "
        "eagerly; detection then reads only what it touches (recordings "
        "made with --uncompressed mmap without any decompression)",
    )
    analyze.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="campaign journal directory to recover from when the archive "
        "is truncated or corrupted",
    )
    analyze.set_defaults(handler=cmd_analyze)

    serve = sub.add_parser(
        "serve", help="run the durable multi-tenant campaign service"
    )
    serve.add_argument("root", help="job-store directory (journal + per-job manifests)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads draining shard claims (0 = hub-only: every "
        "shard runs on remote `worker` hosts)",
    )
    serve.add_argument(
        "--tenant",
        action="append",
        metavar="POLICY",
        help="tenant policy NAME[:weight[:priority[:max-shards[:max-captures]]]] "
        "(repeatable; unregistered tenants get the defaults)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stall watchdog per shard (workers run shards in killable "
        "single-worker pools)",
    )
    serve.add_argument(
        "--reap-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="release claims whose worker heartbeat is older than SECONDS "
        "so surviving workers adopt them",
    )
    serve.set_defaults(handler=cmd_serve)

    worker = sub.add_parser(
        "worker", help="run a standalone worker host against a running service"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="base URL of the campaign service, e.g. http://127.0.0.1:8321",
    )
    worker.add_argument(
        "--name", default=None, help="host identity (default: host-<hostname>-<pid>)"
    )
    worker.add_argument(
        "--workdir", default=None, help="scratch dir for heartbeat files (default: temp)"
    )
    worker.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stall watchdog per shard (shards then run in killable "
        "single-worker pools)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.25, metavar="SECONDS",
        help="claim poll cadence while idle",
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after this long with no claimable work (default: run forever)",
    )
    worker.add_argument(
        "--max-shards", type=int, default=None, help="exit after running N shards"
    )
    worker.add_argument(
        "--quiet", action="store_true", help="no per-shard progress lines"
    )
    worker.set_defaults(handler=cmd_worker)

    submit = sub.add_parser("submit", help="submit a campaign job to a running service")
    submit.add_argument("--url", default="http://127.0.0.1:8321", help="service base URL")
    submit.add_argument("--tenant", required=True, help="tenant to charge the job to")
    submit.add_argument(
        "--machines", default=None, metavar="NAMES", help="comma list of preset machines"
    )
    submit.add_argument("--pair", default=None, help="activity pair, e.g. LDM/LDL1")
    submit.add_argument("--bands", default=None, metavar="N|PRESET|RANGES")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--span-low", type=float, default=0.0)
    submit.add_argument("--span-high", type=float, default=4e6)
    submit.add_argument("--fres", type=float, default=50.0)
    submit.add_argument("--falt1", type=float, default=43.3e3)
    submit.add_argument("--f-delta", type=float, default=0.5e3)
    submit.add_argument("--workers", type=int, default=1, help=argparse.SUPPRESS)
    submit.add_argument("--max-capture-retries", type=int, default=2, help=argparse.SUPPRESS)
    submit.add_argument("--capture-timeout", type=float, default=None, help=argparse.SUPPRESS)
    submit.add_argument("--retry-backoff", type=float, default=0.5, help=argparse.SUPPRESS)
    submit.add_argument("--max-shard-retries", type=int, default=2, metavar="N")
    submit.add_argument(
        "--wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="block until the job is terminal (at most SECONDS)",
    )
    submit.set_defaults(handler=cmd_submit)

    jobs = sub.add_parser("jobs", help="list a running service's jobs")
    jobs.add_argument("--url", default="http://127.0.0.1:8321")
    jobs.set_defaults(handler=cmd_jobs)

    watch = sub.add_parser("watch", help="live-tail a service job's event stream")
    watch.add_argument("job_id", help="job to watch, e.g. job-000001")
    watch.add_argument("--url", default="http://127.0.0.1:8321", help="service base URL")
    watch.add_argument(
        "--offset",
        type=int,
        default=0,
        metavar="BYTES",
        help="resume the stream from this byte offset (from a prior watch)",
    )
    watch.add_argument(
        "--no-follow",
        action="store_true",
        help="print the current snapshot and exit instead of tailing live",
    )
    watch.set_defaults(handler=cmd_watch)

    cancel = sub.add_parser("cancel", help="cooperatively cancel a service job")
    cancel.add_argument("--url", default="http://127.0.0.1:8321")
    cancel.add_argument("job_id")
    cancel.set_defaults(handler=cmd_cancel)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
