"""At-a-distance power analysis via a FASE-found carrier (Section 4.1).

"These signals ... allow attackers to carry out the equivalent of power
side-channel attacks from a distance without the need to place probes
within the system." This module demonstrates the claim end to end, for
defensive evaluation of how exploitable a found carrier is:

1. a victim workload executes a secret-dependent activity sequence (the
   classic square-and-multiply pattern of binary exponentiation: every bit
   squares; a 1-bit additionally multiplies, drawing more power for
   longer);
2. the regulator carrier FASE found is amplitude-modulated by that load;
3. the attacker AM-demodulates the received waveform (envelope detection
   after band-passing around the carrier) and decodes the bits from the
   per-slot envelope.

This also covers the spread-spectrum caveat of Section 4.3 ("attackers can
still track the carrier and use the full power of the signal after
demodulation"): :func:`demodulate_am` accepts a frequency track and
de-sweeps before envelope detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..rng import ensure_rng
from ..signals.waveform import synthesize_carrier_iq


@dataclass(frozen=True)
class AttackResult:
    """Outcome of a demodulation attack on one carrier."""

    recovered_bits: tuple
    true_bits: tuple
    envelope_snr_db: float

    @property
    def bit_accuracy(self):
        matches = sum(1 for a, b in zip(self.recovered_bits, self.true_bits) if a == b)
        return matches / len(self.true_bits)

    def describe(self):
        return (
            f"recovered {len(self.recovered_bits)} bits with "
            f"{self.bit_accuracy * 100:.1f}% accuracy "
            f"(envelope SNR {self.envelope_snr_db:.1f} dB)"
        )


def square_and_multiply_activity(bits, slot_seconds, sample_rate, low=0.45, high=0.95):
    """Activity waveform of a binary exponentiation over ``bits``.

    Every bit occupies one slot; the load is ``low`` for a squaring-only
    (0) slot and ``high`` for a square+multiply (1) slot.
    """
    if not bits:
        raise DetectionError("need at least one bit")
    slot_samples = int(round(slot_seconds * sample_rate))
    if slot_samples < 8:
        raise DetectionError("slot too short for the sample rate")
    levels = np.where(np.asarray(bits, dtype=int) > 0, high, low)
    return np.repeat(levels, slot_samples)


def emit_modulated_carrier(
    activity_wave,
    sample_rate,
    carrier_offset_hz,
    line_sigma=150.0,
    modulation_gain=0.5,
    noise_rms=0.02,
    rng=None,
):
    """The victim side: a regulator carrier AM-modulated by the activity.

    Returns complex baseband samples as received by the attacker: carrier
    amplitude ``1 + modulation_gain * (activity - mean)``, the regulator's
    oscillator line width, plus receiver noise.
    """
    rng = ensure_rng(rng)
    duration = len(activity_wave) / sample_rate
    carrier = synthesize_carrier_iq(
        duration, sample_rate, carrier_offset_hz, line_sigma=line_sigma, rng=rng
    )
    carrier = carrier[: len(activity_wave)]
    envelope = 1.0 + modulation_gain * (activity_wave - activity_wave.mean())
    noise = noise_rms * (
        rng.standard_normal(len(carrier)) + 1j * rng.standard_normal(len(carrier))
    )
    return carrier * envelope + noise


def demodulate_am(iq, sample_rate, carrier_offset_hz, bandwidth_hz, frequency_track=None):
    """Envelope detection around a carrier (with optional carrier tracking).

    Mixes the signal down by ``carrier_offset_hz`` (or by a per-sample
    ``frequency_track`` for swept carriers), low-passes to ``bandwidth_hz``
    with a moving average, and returns the magnitude envelope.
    """
    iq = np.asarray(iq)
    if iq.ndim != 1 or iq.size < 16:
        raise DetectionError("need at least 16 IQ samples")
    if bandwidth_hz <= 0 or bandwidth_hz >= sample_rate / 2:
        raise DetectionError("bandwidth must be in (0, fs/2)")
    t = np.arange(iq.size) / sample_rate
    if frequency_track is None:
        phase = 2.0 * np.pi * carrier_offset_hz * t
    else:
        track = np.asarray(frequency_track, dtype=float)
        if track.shape != iq.shape:
            raise DetectionError("frequency track must match the IQ length")
        phase = 2.0 * np.pi * np.cumsum(track) / sample_rate
    baseband = iq * np.exp(-1j * phase)
    window = max(int(sample_rate / bandwidth_hz), 1)
    kernel = np.ones(window) / window
    smoothed = np.convolve(baseband, kernel, mode="same")
    return np.abs(smoothed)


def decode_bits(envelope, n_bits, guard_fraction=0.25):
    """Per-slot threshold decoding of the demodulated envelope.

    Averages each slot's interior (skipping ``guard_fraction`` at each
    edge, where the low-pass smears transitions) and thresholds at the
    midpoint between the strongest and weakest slot means.
    """
    if n_bits < 1:
        raise DetectionError("need at least one bit")
    slot = envelope.size // n_bits
    if slot < 4:
        raise DetectionError("envelope too short for the bit count")
    guard = int(slot * guard_fraction)
    means = np.array(
        [envelope[i * slot + guard : (i + 1) * slot - guard].mean() for i in range(n_bits)]
    )
    threshold = (means.max() + means.min()) / 2.0
    return tuple(int(mean > threshold) for mean in means), means


def attack_carrier(
    bits,
    sample_rate=1e6,
    slot_seconds=2e-3,
    carrier_offset_hz=50e3,
    modulation_gain=0.5,
    noise_rms=0.05,
    rng=None,
):
    """End-to-end attack: emit, demodulate, decode; returns the outcome."""
    rng = ensure_rng(rng)
    bits = tuple(int(b) for b in bits)
    activity = square_and_multiply_activity(bits, slot_seconds, sample_rate)
    iq = emit_modulated_carrier(
        activity, sample_rate, carrier_offset_hz,
        modulation_gain=modulation_gain, noise_rms=noise_rms, rng=rng,
    )
    envelope = demodulate_am(iq, sample_rate, carrier_offset_hz, bandwidth_hz=2.0 / slot_seconds)
    recovered, means = decode_bits(envelope, len(bits))
    ones = means[np.array(bits) == 1]
    zeros = means[np.array(bits) == 0]
    if len(ones) and len(zeros):
        contrast = abs(ones.mean() - zeros.mean())
        scatter = float(np.hypot(ones.std(), zeros.std())) or 1e-12
        snr_db = 20.0 * np.log10(max(contrast / scatter, 1e-12))
    else:
        snr_db = float("nan")
    return AttackResult(recovered_bits=recovered, true_bits=bits, envelope_snr_db=snr_db)
