"""Information-leakage quantification per carrier.

FASE's stated third advantage: "it quantifies how strongly carrier signals
are modulated, which is useful ... for quantifying information leakage".
This module turns a detection into channel numbers an evaluator can rank:

* **side-band power** — the power of the leak itself (what an attacker's
  demodulator integrates);
* **leakage SNR** — side-band power against the noise floor integrated
  over the modulation bandwidth;
* **channel capacity** — the Shannon bound ``B log2(1 + SNR)`` of the
  AM side channel at that carrier, with B the usable modulation bandwidth
  (for a regulator: its feedback bandwidth; we use the campaign's falt as
  a demonstrated-modulatable bandwidth).

Absolute capacities inherit the simulator's power calibration; their
*ranking* across carriers is the actionable output (which leak to fix
first), mirroring how the paper uses modulation strength.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..units import format_frequency, milliwatts_to_dbm


@dataclass(frozen=True)
class LeakageEstimate:
    """Channel numbers for one detected carrier."""

    carrier_frequency: float
    carrier_dbm: float
    sideband_dbm: float
    noise_floor_dbm_per_hz: float
    modulation_bandwidth_hz: float

    @property
    def snr_db(self):
        """Side-band power over integrated noise in the modulation band."""
        noise_dbm = self.noise_floor_dbm_per_hz + 10.0 * np.log10(
            self.modulation_bandwidth_hz
        )
        return self.sideband_dbm - noise_dbm

    @property
    def capacity_bits_per_second(self):
        snr = 10.0 ** (self.snr_db / 10.0)
        return float(self.modulation_bandwidth_hz * np.log2(1.0 + snr))

    def describe(self):
        return (
            f"{format_frequency(self.carrier_frequency)}: side-band "
            f"{self.sideband_dbm:.1f} dBm, SNR {self.snr_db:.1f} dB over "
            f"{self.modulation_bandwidth_hz / 1e3:.1f} kHz -> "
            f"{self.capacity_bits_per_second / 1e3:.1f} kbit/s"
        )


def _noise_floor_dbm_per_hz(trace, exclude_above_percentile=80.0):
    """Robust floor estimate: median of the quiet bins, per Hz."""
    power = trace.power_mw
    cutoff = np.percentile(power, exclude_above_percentile)
    quiet = power[power <= cutoff]
    if quiet.size == 0:
        raise DetectionError("trace has no quiet bins to estimate a floor from")
    per_bin = float(np.median(quiet))
    return float(milliwatts_to_dbm(per_bin / trace.grid.resolution))


def estimate_leakage(result, detection, window_bins=5):
    """Leakage numbers for one detection from its campaign result."""
    measurement = result.measurements[0]
    trace = measurement.trace
    grid = trace.grid
    if not grid.contains(detection.frequency):
        raise DetectionError("detection lies outside the campaign grid")

    def window_peak(frequency):
        index = grid.index_of(frequency)
        lo = max(index - window_bins, 0)
        hi = min(index + window_bins + 1, grid.n_bins)
        return float(trace.power_mw[lo:hi].max())

    carrier = window_peak(detection.frequency)
    sidebands = []
    for sign in (+1, -1):
        f = detection.frequency + sign * measurement.falt
        if grid.contains(f):
            sidebands.append(window_peak(f))
    if not sidebands:
        raise DetectionError("no side-band position lies inside the grid")
    return LeakageEstimate(
        carrier_frequency=detection.frequency,
        carrier_dbm=float(milliwatts_to_dbm(carrier)),
        sideband_dbm=float(milliwatts_to_dbm(max(sidebands))),
        noise_floor_dbm_per_hz=_noise_floor_dbm_per_hz(trace),
        modulation_bandwidth_hz=float(measurement.falt),
    )


def rank_leaks(result, detections):
    """Leakage estimates for every detection, strongest channel first."""
    estimates = [estimate_leakage(result, detection) for detection in detections]
    estimates.sort(key=lambda e: e.capacity_bits_per_second, reverse=True)
    return estimates
