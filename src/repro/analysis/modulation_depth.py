"""Quantifying how strongly a carrier is modulated.

The paper lists this as FASE's third advantage: "it quantifies how strongly
carrier signals are modulated, which is useful for identifying how the
carrier is generated, for quantifying information leakage, and for
evaluating the effectiveness of mitigation efforts."

Two tools:

* :func:`sideband_to_carrier_db` — the raw side-band/carrier power ratio of
  one campaign measurement;
* :func:`modulation_depth_sweep` — the carrier's response curve across
  activity levels (e.g. the refresh carrier *weakening* with memory
  activity, the key observation of Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DetectionError
from ..spectrum.analyzer import SpectrumAnalyzer
from ..uarch.activity import AlternationActivity
from ..units import db_ratio


@dataclass(frozen=True)
class DepthMeasurement:
    """Carrier power at one activity level."""

    level: float
    carrier_power_mw: float

    @property
    def carrier_dbm(self):
        from ..units import milliwatts_to_dbm

        return float(milliwatts_to_dbm(self.carrier_power_mw))


def sideband_to_carrier_db(trace, carrier_frequency, falt, window_bins=3):
    """Power ratio (dB) of the first side-bands to the carrier.

    Reads the strongest bin within a small window at the carrier and at
    carrier ± falt; returns 10*log10(mean sideband / carrier). More
    negative means weaker modulation.
    """
    grid = trace.grid

    def window_max(frequency):
        if not grid.contains(frequency):
            raise DetectionError(
                f"frequency {frequency:.6g} Hz outside the trace's grid"
            )
        index = grid.index_of(frequency)
        lo = max(index - window_bins, 0)
        hi = min(index + window_bins + 1, grid.n_bins)
        return float(trace.power_mw[lo:hi].max())

    carrier = window_max(carrier_frequency)
    if carrier <= 0:
        raise DetectionError("no carrier power at the requested frequency")
    sidebands = [window_max(carrier_frequency + s * falt) for s in (+1, -1)]
    return db_ratio(float(np.mean(sidebands)), carrier)


def modulation_depth_sweep(
    machine,
    domain,
    carrier_frequency,
    grid,
    levels=(0.0, 0.25, 0.5, 0.75, 1.0),
    window_bins=3,
):
    """Carrier power vs steady activity level in one domain.

    Captures a noise-free spectrum (exact analyzer mean) at each constant
    activity level and reads the carrier's power. The sign of the response
    distinguishes mechanisms: regulators and the DRAM clock strengthen
    their side-band response with load, while the refresh carrier *weakens*
    as activity disrupts refresh periodicity.
    """
    analyzer = SpectrumAnalyzer(n_averages=None)
    if not grid.contains(carrier_frequency):
        raise DetectionError("carrier frequency outside the sweep grid")
    index = grid.index_of(carrier_frequency)
    measurements = []
    for level in levels:
        activity = AlternationActivity.constant({domain: level}, label=f"{domain}={level}")
        trace = analyzer.capture(machine.scene(activity), grid)
        lo = max(index - window_bins, 0)
        hi = min(index + window_bins + 1, grid.n_bins)
        measurements.append(
            DepthMeasurement(level=float(level), carrier_power_mw=float(trace.power_mw[lo:hi].max()))
        )
    return measurements
