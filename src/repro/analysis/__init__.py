"""Post-FASE analyses: localization, modulation depth, validation, FM check.

These implement the causation workflow of Section 4 (near-field probing to
find the component emitting each carrier; confirming modulation behaviour
with targeted activity sweeps) and the paper's manual validation of
Section 1 (inspecting strong rejected signals to confirm they really do
not respond to activity).
"""

from .localization import NearFieldProbe, localize_carrier, LocalizationResult
from .modulation_depth import (
    modulation_depth_sweep,
    sideband_to_carrier_db,
    DepthMeasurement,
)
from .validation import (
    validate_rejections,
    strong_rejected_signals,
    RejectionCheck,
)
from .fm_detect import spectrogram_frequency_track, is_frequency_modulated
from .attack import (
    AttackResult,
    attack_carrier,
    demodulate_am,
    decode_bits,
    emit_modulated_carrier,
    square_and_multiply_activity,
)
from .leakage import LeakageEstimate, estimate_leakage, rank_leaks
from .investigate import (
    Investigation,
    SourceFinding,
    investigate,
    STRENGTHENS,
    WEAKENS,
    FLAT,
)

__all__ = [
    "NearFieldProbe",
    "localize_carrier",
    "LocalizationResult",
    "modulation_depth_sweep",
    "sideband_to_carrier_db",
    "DepthMeasurement",
    "validate_rejections",
    "strong_rejected_signals",
    "RejectionCheck",
    "spectrogram_frequency_track",
    "is_frequency_modulated",
    "AttackResult",
    "attack_carrier",
    "demodulate_am",
    "decode_bits",
    "emit_modulated_carrier",
    "square_and_multiply_activity",
    "LeakageEstimate",
    "estimate_leakage",
    "rank_leaks",
    "Investigation",
    "SourceFinding",
    "investigate",
    "STRENGTHENS",
    "WEAKENS",
    "FLAT",
]
