"""The full Section 4 causation workflow as one call.

After FASE reports carriers, the paper identifies each source in three
manual steps: "We first identified the source of each signal using
short-range probes ... Then we examined data sheets ... Finally we
performed additional micro-benchmark experiments to identify the
modulation source." :func:`investigate` automates the reproduction's
equivalents:

1. run FASE for the memory and on-chip pairs (detection + grouping +
   activity-fingerprint classification),
2. near-field-localize each harmonic set's strongest member,
3. sweep steady activity in the fingerprinted domain to get the response
   *direction* (regulators strengthen with load; refresh weakens — the
   Section 4.2 clue),
4. assemble everything into per-source findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import campaign_low_band
from ..core.pipeline import run_fase
from ..errors import DetectionError
from ..rng import ensure_rng
from ..spectrum.grid import FrequencyGrid
from ..system.domains import CORE, DRAM_POWER, MEMORY_UTILIZATION
from ..uarch.activity import AlternationActivity
from ..uarch.isa import MicroOp, activity_levels
from .localization import localize_carrier
from .modulation_depth import modulation_depth_sweep

#: Response directions.
STRENGTHENS = "strengthens with activity"
WEAKENS = "weakens with activity"
FLAT = "no clear response"


@dataclass(frozen=True)
class SourceFinding:
    """Everything the workflow learned about one emanation source."""

    fundamental: float
    fingerprint: str
    mechanism: str
    location: tuple
    component: str
    response: str

    def describe(self):
        return (
            f"{self.fundamental / 1e3:.1f} kHz [{self.fingerprint}] likely "
            f"{self.mechanism}; localized to {self.component} at "
            f"({self.location[0]:.0f}, {self.location[1]:.0f}) cm; "
            f"carrier {self.response}"
        )


@dataclass
class Investigation:
    """The FASE report plus per-source findings."""

    report: object
    findings: list = field(default_factory=list)

    def finding_near(self, frequency, rel_tol=0.02):
        for finding in self.findings:
            if abs(finding.fundamental - frequency) <= rel_tol * frequency:
                return finding
        raise DetectionError(f"no finding near {frequency:.6g} Hz")

    def to_text(self):
        lines = ["investigation findings:"]
        lines.extend(f"  {finding.describe()}" for finding in self.findings)
        return "\n".join(lines)


def _probe_activity(fingerprint):
    """A steady activity that keeps the fingerprinted domain busy."""
    if fingerprint == "memory-side":
        return AlternationActivity.constant(activity_levels(MicroOp.LDM), label="memory busy")
    return AlternationActivity.constant(activity_levels(MicroOp.LDL2), label="on-chip busy")


def _response_domain(source):
    if source.mechanism == "memory refresh":
        return MEMORY_UTILIZATION
    if source.fingerprint == "memory-side":
        return DRAM_POWER
    return CORE


def _response_direction(machine, source, span_fraction=0.25):
    """Sign of the carrier's steady-activity response (Section 4 clue).

    Probed at the set's lowest-order member: a PWM carrier's *higher*
    harmonics sit on different slopes of the sinc envelope and can respond
    to duty with either sign (or not at all, near a sinc null), while the
    fundamental's response is monotone over a regulator's duty range.
    """
    _, lowest = min(source.harmonic_set.members, key=lambda m: m[0])
    center = lowest.frequency
    halfspan = max(center * span_fraction, 60e3)
    grid = FrequencyGrid(max(center - halfspan, 0.0), center + halfspan, 50.0)
    sweep = modulation_depth_sweep(
        machine, _response_domain(source), center, grid, levels=(0.0, 0.5, 1.0)
    )
    first, last = sweep[0].carrier_power_mw, sweep[-1].carrier_power_mw
    if last > 1.6 * first:
        return STRENGTHENS
    if first > 1.6 * last:
        return WEAKENS
    return FLAT


def investigate(machine, config=None, rng=None, probe_refresh_when_idle=True):
    """Run the complete find-and-explain workflow on a machine."""
    rng = ensure_rng(rng)
    config = config or campaign_low_band()
    report = run_fase(machine, config=config, rng=rng)
    investigation = Investigation(report=report)
    for source in report.sources:
        harmonic_set = source.harmonic_set
        _, strongest = max(harmonic_set.members, key=lambda m: m[1].magnitude_dbm)
        # refresh carriers are strongest when the memory is idle (§4.2), so
        # probe them under idle; everything else under load
        if probe_refresh_when_idle and source.mechanism == "memory refresh":
            probe = AlternationActivity.constant(activity_levels(MicroOp.LDL1), label="idle")
        else:
            probe = _probe_activity(source.fingerprint)
        localization = localize_carrier(machine, strongest.frequency, probe)
        response = _response_direction(machine, source)
        investigation.findings.append(
            SourceFinding(
                fundamental=harmonic_set.fundamental,
                fingerprint=source.fingerprint,
                mechanism=source.mechanism,
                location=localization.best_position,
                component=localization.source_name,
                response=response,
            )
        )
    return investigation
