"""Spectrogram-based FM confirmation (Section 4.4).

"This carrier was emanated by the voltage regulator circuitry for the
processor cores, and was frequency-modulated (we confirmed this with a
spectrogram of the modulation)." This module is that confirmation step:
track the instantaneous frequency of a captured waveform over time and
test whether it alternates between two values (FM/FSK) rather than holding
one frequency with varying amplitude (AM).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as _signal

from ..errors import DetectionError


def spectrogram_frequency_track(iq, sample_rate, nperseg=256, noverlap=None):
    """Instantaneous-frequency track: the spectrogram's per-slice peak.

    Returns ``(times, frequencies)`` with frequencies as baseband offsets.
    """
    iq = np.asarray(iq)
    if iq.ndim != 1 or iq.size < 4 * nperseg:
        raise DetectionError("need at least 4*nperseg IQ samples")
    if sample_rate <= 0:
        raise DetectionError("sample rate must be positive")
    freqs, times, spec = _signal.spectrogram(
        iq,
        fs=sample_rate,
        nperseg=nperseg,
        noverlap=noverlap if noverlap is not None else nperseg // 2,
        return_onesided=False,
        detrend=False,
        mode="psd",
    )
    order = np.argsort(freqs)
    freqs = freqs[order]
    spec = spec[order]
    track = freqs[np.argmax(spec, axis=0)]
    return times, track


def is_frequency_modulated(iq, sample_rate, min_separation_hz, nperseg=256):
    """Whether the waveform's instantaneous frequency is bimodal.

    Splits the frequency track at its median and tests that the two halves
    are separated by at least ``min_separation_hz`` and that the track
    actually alternates (both modes occupy a meaningful share of time).
    An AM carrier holds one frequency, so it fails both tests.
    """
    if min_separation_hz <= 0:
        raise DetectionError("min separation must be positive")
    _, track = spectrogram_frequency_track(iq, sample_rate, nperseg=nperseg)
    median = float(np.median(track))
    high = track[track > median]
    low = track[track <= median]
    if len(high) < 0.1 * len(track) or len(low) < 0.1 * len(track):
        return False
    separation = float(np.mean(high) - np.mean(low))
    return separation >= min_separation_hz
