"""Rejection validation: the paper's manual cross-check, automated.

Section 1: "We validated the automated FASE procedure through manual
inspection of all rejected signals that were similarly strong (or stronger)
than the FASE-reported ones, confirming that these rejected signals do not
measurably respond to changes in system activity."

:func:`strong_rejected_signals` lists the spectrum peaks FASE did *not*
report that are at least as strong as the weakest reported carrier;
:func:`validate_rejections` then checks each against the model's ground
truth. A rejected signal counts as a *missed carrier* only when it sits on
a modulated emitter's harmonic **and** does not belong to a harmonic set
FASE already reported (the paper, too, reports a set without marking every
last harmonic of it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.harmonics import group_harmonics
from ..errors import DetectionError
from ..spectrum.peaks import detect_peaks


@dataclass(frozen=True)
class RejectionCheck:
    """One strong signal FASE rejected, with its ground-truth status."""

    frequency: float
    magnitude_dbm: float
    is_truly_unmodulated: bool
    belongs_to_reported_set: bool
    nearest_emitter: str = ""

    @property
    def is_missed_carrier(self):
        """A modulated signal FASE neither reported nor covered by a set."""
        return not self.is_truly_unmodulated and not self.belongs_to_reported_set

    def describe(self):
        if self.is_missed_carrier:
            verdict = "MISSED CARRIER"
        elif self.belongs_to_reported_set and not self.is_truly_unmodulated:
            verdict = "harmonic of a reported set"
        else:
            verdict = "correctly rejected"
        return (
            f"{self.frequency / 1e3:.1f} kHz at {self.magnitude_dbm:.1f} dBm: {verdict}"
            + (f" ({self.nearest_emitter})" if self.nearest_emitter else "")
        )


def _reported_frequencies(result, detections):
    """Frequencies accounted for by the report: carriers and side-bands.

    Only the first two side-band harmonics are guarded — higher ones are
    too weak to register as "strong" peaks, and guarding all ±5 over all
    five falts would blanket ~50 slots per carrier and mask unrelated
    signals that deserve inspection.
    """
    reported = []
    for detection in detections:
        reported.append(detection.frequency)
        for falt in result.falts:
            for h in (1, -1, 2, -2):
                reported.append(detection.frequency + h * falt)
    return np.array(reported) if reported else np.empty(0)


def strong_rejected_signals(
    result, detections, margin_db=0.0, window=5, max_signals=200, n_sigma=3.0
):
    """Spectrum peaks not reported by FASE, at or above reported strength.

    Scans the first measurement's trace for peaks, drops those within a few
    bins of a reported carrier or any reported carrier's side-bands, and
    keeps those whose magnitude is within ``margin_db`` of (or above) the
    weakest reported carrier.
    """
    trace = result.measurements[0].trace
    grid = trace.grid
    dbm = trace.dbm
    # n_sigma is deliberately permissive: per-bin capture noise is ~2 dB, so
    # broad humps (like the core regulator's) score moderate local
    # prominence; the floor_dbm filter below does the real strength gating.
    peaks = detect_peaks(dbm, window=window, n_sigma=n_sigma)
    if detections:
        floor_dbm = min(d.magnitude_dbm for d in detections) - margin_db
    else:
        floor_dbm = float(np.median(dbm))
    reported = _reported_frequencies(result, detections)
    guard = max(5 * grid.resolution, 500.0)
    rejected = []
    for peak in peaks:
        frequency = grid.frequency_at(peak.index)
        magnitude = float(dbm[peak.index])
        if magnitude < floor_dbm:
            continue
        if reported.size and np.min(np.abs(reported - frequency)) < guard:
            continue
        rejected.append((frequency, magnitude))
        if len(rejected) >= max_signals:
            break
    return rejected


def validate_rejections(machine, result, detections, activity=None, margin_db=0.0):
    """Check every strong rejected signal against the model's ground truth.

    Returns a list of :class:`RejectionCheck`. FASE is validated when no
    entry has ``is_missed_carrier`` — i.e. every strong rejected signal is
    either genuinely unmodulated (stations, spurs, the core regulator under
    a memory pair) or an unmarked harmonic of a set FASE already reported.
    """
    if activity is None:
        if not result.measurements:
            raise DetectionError("campaign result has no measurements")
        activity = result.measurements[0].activity
    grid = result.grid
    guard = max(5 * grid.resolution, 1e3)

    modulated_frequencies = []
    for emitter in machine.modulated_emitters(activity):
        modulated_frequencies.extend(emitter.carrier_frequencies(up_to=grid.stop))
    modulated_frequencies = np.array(modulated_frequencies)

    set_harmonics = []
    for harmonic_set in group_harmonics(detections):
        order = 1
        while order * harmonic_set.fundamental < grid.stop:
            set_harmonics.append(order * harmonic_set.fundamental)
            order += 1
    set_harmonics = np.array(set_harmonics) if set_harmonics else np.empty(0)

    checks = []
    for frequency, magnitude in strong_rejected_signals(
        result, detections, margin_db=margin_db
    ):
        near_modulated = (
            modulated_frequencies.size > 0
            and np.min(np.abs(modulated_frequencies - frequency)) < guard
        )
        in_reported_set = (
            set_harmonics.size > 0 and np.min(np.abs(set_harmonics - frequency)) < guard
        )
        nearest = "environment"
        best_distance = None
        for emitter in machine.emitters:
            for harmonic in emitter.carrier_frequencies(up_to=grid.stop):
                distance = abs(harmonic - frequency)
                if best_distance is None or distance < best_distance:
                    best_distance = distance
                    nearest = emitter.name
        if best_distance is None or best_distance > guard:
            nearest = "environment"
        checks.append(
            RejectionCheck(
                frequency=float(frequency),
                magnitude_dbm=float(magnitude),
                is_truly_unmodulated=not near_modulated,
                belongs_to_reported_set=bool(in_reported_set),
                nearest_emitter=nearest,
            )
        )
    return checks
