"""Near-field localization: find which component emits a carrier.

Section 4.1: "We manually localized the source of the signal using an EM
probe to determine where the 315 kHz EM signal was strongest in the system.
We found that the signal was strongest near the high power MOSFET switches
and power inductors that supply power to the main memory DIMMs."

The probe model: each emitter sits at a board position; a small probe at
position p receives each emitter's power scaled by the magnetic near-field
law (amplitude 1/d³ → power 1/d⁶, with a standoff so the divergence at
d → 0 is physical). Scanning the probe over the board and reading the
power in a narrow band around the carrier frequency yields a heat map whose
argmax is the source location; matching it to the nearest emitter is the
"which component is this?" step the paper does with data sheets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SystemModelError
from ..spectrum.grid import FrequencyGrid

#: Probe standoff (cm): the coil cannot get closer than this to the board.
PROBE_STANDOFF_CM = 0.5


@dataclass(frozen=True)
class LocalizationResult:
    """Outcome of a probe scan for one carrier frequency."""

    frequency: float
    best_position: tuple
    source_name: str
    power_map: object  # 2-D array over the scan lattice
    scan_x: object
    scan_y: object

    def describe(self):
        x, y = self.best_position
        return (
            f"carrier at {self.frequency / 1e3:.1f} kHz strongest at "
            f"({x:.1f}, {y:.1f}) cm -> {self.source_name}"
        )


class NearFieldProbe:
    """A small magnetic probe scanned over the board."""

    def __init__(self, machine, standoff_cm=PROBE_STANDOFF_CM):
        if standoff_cm <= 0:
            raise SystemModelError("probe standoff must be positive")
        self.machine = machine
        self.standoff_cm = float(standoff_cm)

    def _emitter_band_power(self, emitter, frequency, activity, band_halfwidth):
        """Power (mW) emitter puts within ±band_halfwidth of ``frequency``."""
        lo = max(frequency - band_halfwidth, 0.0)
        resolution = max(band_halfwidth / 10.0, 1.0)
        grid = FrequencyGrid(lo, frequency + band_halfwidth, resolution)
        return float(emitter.render(grid, activity).sum())

    def measure(self, position, frequency, activity, band_halfwidth=2e3):
        """Probe power (mW) at a board position in a band around a carrier."""
        total = 0.0
        for emitter in self.machine.emitters:
            band = self._emitter_band_power(emitter, frequency, activity, band_halfwidth)
            if band <= 0:
                continue
            dx = position[0] - emitter.position[0]
            dy = position[1] - emitter.position[1]
            distance = float(np.hypot(dx, dy)) + self.standoff_cm
            # Emitter powers are calibrated at the 30 cm reference distance;
            # the probe sees the near-field 1/d^6 power law relative to it.
            total += band * (30.0 / distance) ** 6
        return total


def localize_carrier(
    machine,
    frequency,
    activity,
    scan_step_cm=2.0,
    board_size_cm=(30.0, 30.0),
    band_halfwidth=2e3,
):
    """Scan the board and attribute a carrier to the nearest emitter.

    Returns a :class:`LocalizationResult` whose ``source_name`` is the
    emitter closest to the strongest probe position.
    """
    if scan_step_cm <= 0:
        raise SystemModelError("scan step must be positive")
    probe = NearFieldProbe(machine)
    xs = np.arange(0.0, board_size_cm[0] + 1e-9, scan_step_cm)
    ys = np.arange(0.0, board_size_cm[1] + 1e-9, scan_step_cm)
    power_map = np.zeros((len(ys), len(xs)), dtype=float)
    for iy, y in enumerate(ys):
        for ix, x in enumerate(xs):
            power_map[iy, ix] = probe.measure((x, y), frequency, activity, band_halfwidth)
    iy, ix = np.unravel_index(int(np.argmax(power_map)), power_map.shape)
    best = (float(xs[ix]), float(ys[iy]))
    source = min(
        machine.emitters,
        key=lambda e: (e.position[0] - best[0]) ** 2 + (e.position[1] - best[1]) ** 2,
    )
    return LocalizationResult(
        frequency=float(frequency),
        best_position=best,
        source_name=source.name,
        power_map=power_map,
        scan_x=xs,
        scan_y=ys,
    )
