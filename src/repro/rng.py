"""Seeded random-number plumbing.

Every stochastic component in the library (oscillator jitter, timing
contention, analyzer estimation noise, the RF environment) draws from a
``numpy.random.Generator`` that is threaded in explicitly. This module
provides helpers to derive independent child generators from a root seed so
experiments are reproducible end to end while components stay statistically
independent.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed=None):
    """Create a root generator from a seed (or fresh entropy when ``None``)."""
    return np.random.default_rng(seed)


def child_rng(rng, label):
    """Derive an independent child generator keyed by a string label.

    The label is hashed into the spawn key so that adding a new component to
    a system model does not perturb the random streams of existing ones —
    important when comparing runs that differ only by one emitter. The hash
    must be collision-resistant across arbitrary label strings (a weak
    positional hash once collided for two falt labels, silently giving two
    measurements identical noise), so SHA-256 it is. Python's built-in
    ``hash()`` is salted per process and would break reproducibility.
    """
    import hashlib

    digest = hashlib.sha256(label.encode("utf-8")).digest()
    key = int.from_bytes(digest[:8], "little")
    seed_seq = np.random.SeedSequence(entropy=rng.bit_generator.seed_seq.entropy, spawn_key=(key,))
    return np.random.default_rng(seed_seq)


def ensure_rng(rng_or_seed):
    """Accept either a Generator or a seed and return a Generator."""
    if isinstance(rng_or_seed, np.random.Generator):
        return rng_or_seed
    return make_rng(rng_or_seed)
