"""Survey shards: one (machine, pair, band) work unit per process.

A shard is the survey engine's unit of distribution. Each shard runs the
*entire* existing pipeline — campaign → heuristic → detection → harmonic
grouping — via :func:`~repro.core.run_fase` in its own interpreter, and
every input it needs travels in one picklable :class:`ShardSpec`:

* the machine is named by its preset key and rebuilt inside the worker
  from a seed-derived generator keyed by the machine name alone, so every
  shard of the same machine measures the *same* system model;
* the campaign draws from a child generator keyed by the shard id, so
  shards are statistically independent and each one's result is a pure
  function of ``(seed, shard_id)`` — which is exactly why a process-pool
  run and a serial run of the same plan produce identical detections;
* fault plans are named by class (rebuilt in-process), durable journals
  live under ``checkpoint_dir/<shard>``, and telemetry streams to a
  per-shard JSONL whose final :class:`~repro.telemetry.MetricsSnapshot`
  rides back to the parent in :attr:`ShardResult.metrics` (the
  ``to_dict`` form — the cross-process snapshot protocol).

:func:`run_shard` is a module-level function so a
``ProcessPoolExecutor`` can pickle it by reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.pipeline import is_memory_pair, pair_label, run_fase
from ..errors import SurveyError
from .dataplane import pickle_campaign, publish_campaign
from ..faults import FaultPlan
from ..io import _config_from_dict, _config_to_dict
from ..rng import child_rng, make_rng
from ..runner import journal_dirname
from ..system import ALL_PRESETS
from ..telemetry import JsonlSink, Telemetry
from ..uarch.isa import MicroOp


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker process needs to run one survey shard.

    ``pair`` holds micro-op *names* (e.g. ``("LDM", "LDL1")``) and
    ``fault_classes`` fault-class names — plain strings travel across the
    process boundary; the worker rebuilds the real objects. ``config``
    already carries this shard's band as its span.
    """

    shard_id: str
    machine: str  # ALL_PRESETS key
    pair: tuple  # (op_x.value, op_y.value)
    config: object  # FaseConfig narrowed to this shard's band
    band: str  # human-readable band label, e.g. "0-2 MHz"
    seed: int
    fault_classes: object = None  # tuple of names | None (clean run)
    checkpoint_dir: object = None  # survey root; shard journal below it
    resume: bool = True
    telemetry_jsonl: object = None  # per-shard JSONL path | None
    block: object = None  # BlockRef into the parent's TraceArena | None
    keep_spectra: bool = False  # ship spectra by pickle when no block (shm fallback)
    heartbeat_path: object = None  # stall-watchdog heartbeat file | None


@dataclass(frozen=True)
class ShardResult:
    """What a finished shard sends back to the survey engine.

    ``activity`` is the shard's full
    :class:`~repro.core.report.ActivityReport` (detections, harmonic
    sets, robustness); ``metrics`` is the shard pipeline's final metrics
    snapshot in :meth:`~repro.telemetry.MetricsSnapshot.to_dict` form,
    revived and merged by the parent.

    Everything here is compact — O(detections), never O(bins). When the
    shard was given a shared-memory ``block``, the campaign's spectra
    were written into it in place and ``spectra`` carries only the
    :class:`~repro.survey.dataplane.SpectraMeta` describing the rows;
    the trace bytes themselves never ride the pickle stream.
    """

    shard_id: str
    machine: str
    machine_name: str
    config_description: str
    pair_label: str
    band: str
    is_memory_pair: bool
    activity: object
    metrics: dict
    spectra: object = None  # SpectraMeta (block) | PickledSpectra (shm fallback) | None


def shard_journal_dir(checkpoint_dir, shard_id):
    """The durable journal root for one shard under the survey's root."""
    return str(Path(checkpoint_dir) / journal_dirname(shard_id))


def shard_spec_to_dict(spec):
    """The JSON wire form of a :class:`ShardSpec` for remote workers.

    Only the *portable* fields travel — the ones that make the shard a
    pure function of ``(seed, shard_id)``. Host-local plumbing
    (``checkpoint_dir``, ``telemetry_jsonl``, ``heartbeat_path``, the
    shared-memory ``block``) is deliberately dropped: those are paths
    and handles in the *sender's* filesystem/address space, and a
    worker host re-derives its own.
    """
    return {
        "shard_id": spec.shard_id,
        "machine": spec.machine,
        "pair": list(spec.pair),
        "config": _config_to_dict(spec.config),
        "band": spec.band,
        "seed": int(spec.seed),
        "fault_classes": (
            None if spec.fault_classes is None else list(spec.fault_classes)
        ),
        "resume": bool(spec.resume),
    }


def shard_spec_from_dict(data):
    """Revive a wire-form shard spec (see :func:`shard_spec_to_dict`)."""
    fault_classes = data.get("fault_classes")
    return ShardSpec(
        shard_id=data["shard_id"],
        machine=data["machine"],
        pair=tuple(data["pair"]),
        config=_config_from_dict(dict(data["config"])),
        band=data["band"],
        seed=int(data.get("seed", 0)),
        fault_classes=None if fault_classes is None else tuple(fault_classes),
        resume=bool(data.get("resume", True)),
    )


def beat_heartbeat(path):
    """Bump the shard's heartbeat file mtime (advisory, never fails).

    The engine's stall watchdog extends a shard's wall-clock deadline
    from the latest heartbeat, so a slow-but-alive worker is not killed
    as hung. Heartbeats are best effort: a worker that cannot touch the
    file just falls back to the submit-time deadline.
    """
    if path is None:
        return
    try:
        Path(path).touch()
    except OSError:
        pass


def run_shard(spec):
    """Run one survey shard end to end; returns a :class:`ShardResult`.

    Pure function of the spec: no ambient state flows in (the worker
    builds its own machine, RNG streams, fault plan, and telemetry
    pipeline), so results are identical whether this runs inline in the
    parent or in a pool worker, and re-running a requeued shard is safe.
    """
    preset = ALL_PRESETS.get(spec.machine)
    if preset is None:
        raise SurveyError(
            f"unknown preset machine {spec.machine!r}; choose from {sorted(ALL_PRESETS)}"
        )
    root = make_rng(spec.seed)
    # Keyed by machine name only: every shard of this machine rebuilds the
    # identical system model, so per-machine results merge coherently.
    machine = preset(rng=child_rng(root, f"machine:{spec.machine}"))
    op_x, op_y = (MicroOp(value) for value in spec.pair)
    fault_plan = None
    if spec.fault_classes is not None:
        fault_plan = FaultPlan.default(tuple(spec.fault_classes))
    checkpoint_dir = None
    if spec.checkpoint_dir is not None:
        checkpoint_dir = shard_journal_dir(spec.checkpoint_dir, spec.shard_id)
    sinks = [JsonlSink(spec.telemetry_jsonl)] if spec.telemetry_jsonl else []
    telemetry = Telemetry(sinks=sinks)
    beat_heartbeat(spec.heartbeat_path)
    published = {}
    campaign_hook = None
    if spec.block is not None:
        # Zero-copy data plane: write the campaign's trace rows straight
        # into the parent-owned shared block while they are still alive;
        # only the compact SpectraMeta rides back in the pickled result.
        def campaign_hook(label, result):
            published["meta"] = publish_campaign(spec.block, result)
            beat_heartbeat(spec.heartbeat_path)

    elif spec.keep_spectra:
        # Degraded data plane: the parent could not allocate this shard's
        # shared block (/dev/shm exhausted), so the rows ride the pickle
        # stream instead of failing the shard.
        def campaign_hook(label, result):
            published["meta"] = pickle_campaign(result)
            beat_heartbeat(spec.heartbeat_path)

    try:
        report = run_fase(
            machine,
            pairs=((op_x, op_y),),
            config=spec.config,
            rng=child_rng(root, f"shard:{spec.shard_id}"),
            n_workers=1,  # parallelism lives at the process level
            fault_plan=fault_plan,
            checkpoint_dir=checkpoint_dir,
            resume=spec.resume,
            telemetry=telemetry,
            campaign_hook=campaign_hook,
        )
    finally:
        telemetry.close()
    label = pair_label(op_x, op_y)
    return ShardResult(
        shard_id=spec.shard_id,
        machine=spec.machine,
        machine_name=machine.name,
        config_description=spec.config.describe(),
        pair_label=label,
        band=spec.band,
        is_memory_pair=is_memory_pair(op_x, op_y),
        activity=report.activities[label],
        metrics=telemetry.snapshot().to_dict(),
        spectra=published.get("meta"),
    )
