"""Budgeted adaptive survey planning: spend captures where the evidence is.

An exhaustive survey (Section 5) measures every (machine, pair, band)
shard at full resolution, yet most bands of Figures 11 and 17 contain no
activity-modulated carrier at all — the paper's own plots are mostly
noise floor between a handful of source combs. This module turns that
asymmetry into saved captures with three mechanisms layered on the
existing shard plan:

1. **Pre-scan** (:func:`prescan_shard`): a cheap low-resolution pass
   per shard — coarser RBW, the same Eq. 1/2 heuristic — whose peak
   combined z-score becomes the shard's *promise*. The pre-scan draws
   from its own seed-derived child stream (``prescan:{shard_id}``) on a
   fresh machine instance, so it is a pure function of
   ``(seed, shard_id)`` and cannot perturb the full-resolution run.
2. **Budgeted allocation** (:class:`CaptureBudget` inside
   :func:`run_planned`): full-resolution captures are granted to shards
   in promise order, round by round, under a global budget and optional
   per-machine quotas. Shards the budget never reaches are ledgered
   ``budget-exhausted`` instead of silently skipped.
3. **Early stop** (:func:`run_shard_adaptive`): a funded shard scores
   its running Eq. 1 product after every capture via
   :class:`~repro.core.heuristic.IncrementalEvidence`; when the prefix
   evidence plus the most the remaining factors could contribute is
   provably below the detection threshold, the shard stops and refunds
   its unused captures to the budget. Because the serial capture stream
   is consumed strictly in order
   (:meth:`~repro.core.campaign.MeasurementCampaign.iter_captures`),
   the captures an early-stopped shard *did* take are byte-identical to
   the exhaustive run's prefix.

Every terminal state is accounted: captures used plus captures saved
always equals the exhaustive total, and the
:class:`~repro.survey.report.SurveyLedger` carries one planner decision
per shard that did not complete at full resolution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from ..core.campaign import MeasurementCampaign
from ..core.detect import CarrierDetector
from ..core.harmonics import group_harmonics
from ..core.heuristic import HeuristicScorer, IncrementalEvidence
from ..core.pipeline import is_memory_pair, pair_label
from ..core.report import ActivityReport
from ..errors import SurveyError
from ..rng import child_rng, make_rng
from ..system import ALL_PRESETS
from ..telemetry import JsonlSink, Telemetry, record_campaign_ledger, use_telemetry
from ..uarch.isa import MicroOp
from .report import BUDGET_EXHAUSTED, EARLY_STOPPED, PRESCAN_SKIPPED
from .shards import ShardResult, beat_heartbeat

#: Statuses a funded adaptive shard can finish with.
COMPLETED = "completed"


@dataclass(frozen=True)
class AdaptivePlanner:
    """Tunables of the budgeted adaptive scheduler (picklable, immutable).

    ``capture_budget`` caps full-resolution captures survey-wide:
    ``None`` means unlimited, a value ``>= 1`` is an absolute capture
    count, and a fraction in ``(0, 1)`` means that share of the
    exhaustive total. ``machine_budgets`` maps preset keys to per-machine
    capture quotas. ``prescan_rbw`` is the pre-scan resolution bandwidth
    in Hz (default: 5x the campaign RBW); ``prescan_averages`` its
    averaging count (default: the campaign's own — fewer averages lose
    the populated/empty separation on realistic noise floors).
    ``min_promise`` optionally skips shards whose pre-scan z-score falls
    below it without spending any budget on them.

    The early-stop rule kills a shard after ``k >= min_prefix_falts``
    captures when ``prefix_evidence + (n - k) * per_falt_cap_decades``
    is below ``stop_threshold_decades`` — i.e. even if every remaining
    Eq. 2 factor came in at the cap, the final Eq. 1 product could not
    reach the threshold. The defaults are deliberately conservative:
    they only kill clearly empty bands and never out-run the detector on
    the paper-figure fixtures.
    """

    capture_budget: object = None  # None | int | fraction of exhaustive
    machine_budgets: object = None  # {preset key: captures} | None
    prescan_rbw: object = None  # Hz | None -> 5x campaign RBW
    prescan_averages: object = None  # int | None -> campaign averages
    min_promise: object = None  # z-score floor | None
    stop_threshold_decades: float = 2.3
    per_falt_cap_decades: float = 0.45
    min_prefix_falts: int = 2

    def __post_init__(self):
        if self.capture_budget is not None and self.capture_budget <= 0:
            raise SurveyError("capture_budget must be positive (or None for unlimited)")
        if self.stop_threshold_decades <= 0:
            raise SurveyError("stop_threshold_decades must be positive")
        if self.per_falt_cap_decades < 0:
            raise SurveyError("per_falt_cap_decades must be >= 0")
        if self.min_prefix_falts < 2:
            raise SurveyError("min_prefix_falts must be >= 2 (Eq. 2 needs two spectra)")

    # ------------------------------------------------------------------

    def prescan_config(self, config):
        """The derived low-resolution pre-scan campaign for ``config``.

        The RBW coarsens (default 5x), and ``f_delta`` widens to at
        least four pre-scan bins so the achieved falts stay two bins
        apart after quantization (the campaign validator's floor).
        """
        fres = float(self.prescan_rbw) if self.prescan_rbw is not None else config.fres * 5.0
        if fres < config.fres:
            raise SurveyError(
                f"prescan RBW {fres:g}Hz is finer than the campaign RBW "
                f"{config.fres:g}Hz; the pre-scan must be the cheap pass"
            )
        averages = (
            int(self.prescan_averages)
            if self.prescan_averages is not None
            else config.n_averages
        )
        return replace(
            config,
            fres=fres,
            f_delta=max(config.f_delta, 4.0 * fres),
            n_averages=averages,
            n_workers=1,
            name=(config.name or "survey") + " prescan",
        )

    def prescan_cost(self, config):
        """Pre-scan cost in full-resolution capture equivalents.

        Dwell per capture scales with averages over RBW, so one pre-scan
        capture costs ``(pre_avg / avg) * (fres / pre_fres)`` of a full
        capture; multiplied by the pre-scan's falt count.
        """
        pre = self.prescan_config(config)
        per_capture = (pre.n_averages / config.n_averages) * (config.fres / pre.fres)
        return pre.n_alternations * per_capture

    def budget_for(self, specs):
        """The :class:`CaptureBudget` this planner grants a shard plan."""
        exhaustive = sum(len(spec.config.falts()) for spec in specs)
        if self.capture_budget is None:
            total = math.inf
        elif self.capture_budget < 1:
            total = self.capture_budget * exhaustive
        else:
            total = float(self.capture_budget)
        per_machine = dict(self.machine_budgets) if self.machine_budgets else {}
        return CaptureBudget(total=total, per_machine=per_machine)

    def should_stop(self, evidence, n_total):
        """Early-stop verdict for the current prefix; ``(stop, bound)``.

        Sound by construction: the bound is an upper limit on what the
        finished campaign's evidence could be, so stopping can only kill
        shards whose final Eq. 1 product would have stayed below the
        threshold — provided ``per_falt_cap_decades`` truly caps the
        per-factor contribution (see the planner tier's soundness
        property test).
        """
        if evidence.n_captures < self.min_prefix_falts:
            return False, None
        if evidence.n_captures >= n_total:
            return False, None
        bound = evidence.bound_decades(n_total, self.per_falt_cap_decades)
        return bound < self.stop_threshold_decades, bound


@dataclass
class CaptureBudget:
    """A mutable meter of full-resolution captures the planner may spend.

    ``total`` may be ``math.inf`` (unlimited); ``per_machine`` maps
    preset keys to quotas, absent keys being unlimited. Charges are
    all-or-nothing per shard; early-stopped shards refund their unused
    captures, which can fund further shards in later rounds.
    """

    total: float = math.inf
    per_machine: dict = field(default_factory=dict)
    spent_total: float = 0.0
    spent_by_machine: dict = field(default_factory=dict)

    def spent(self, machine=None):
        if machine is None:
            return self.spent_total
        return self.spent_by_machine.get(machine, 0.0)

    def remaining(self, machine=None):
        if machine is None:
            return self.total - self.spent_total
        return self.per_machine.get(machine, math.inf) - self.spent(machine)

    def can_fund(self, machine, captures):
        return captures <= self.remaining() and captures <= self.remaining(machine)

    def charge(self, machine, captures):
        if not self.can_fund(machine, captures):
            raise SurveyError(
                f"cannot charge {captures} capture(s) for {machine!r}: "
                f"{self.remaining():g} remain survey-wide, "
                f"{self.remaining(machine):g} for the machine"
            )
        self.spent_total += captures
        self.spent_by_machine[machine] = self.spent(machine) + captures

    def refund(self, machine, captures):
        self.spent_total = max(self.spent_total - captures, 0.0)
        self.spent_by_machine[machine] = max(self.spent(machine) - captures, 0.0)

    def restore(self, machine, captures):
        """Re-apply a prior run's net spend without ``can_fund`` validation.

        Resume-only: the original run already funded these captures and
        the manifest proved they were spent, so re-validating against the
        quota could refuse history (charge + refund sequencing can differ
        from a single up-front charge).
        """
        self.spent_total += captures
        self.spent_by_machine[machine] = self.spent(machine) + captures


@dataclass(frozen=True)
class ShardPromise:
    """One shard's pre-scan verdict.

    ``promise`` is the peak combined z-score of the low-resolution pass
    (``-inf`` when the pre-scan errored), ``evidence`` its peak decades
    of combined Eq. 1 evidence, ``captures`` the shard's full-resolution
    capture count, and ``cost_equivalent`` what the pre-scan itself cost
    in full-capture equivalents.
    """

    shard_id: str
    machine: str
    promise: float
    evidence: float
    captures: int
    prescan_captures: int
    cost_equivalent: float
    error: object = None  # str | None


@dataclass(frozen=True)
class AdaptiveShardOutcome:
    """What :func:`run_shard_adaptive` sends back to the engine.

    ``status`` is :data:`COMPLETED` or
    :data:`~repro.survey.report.EARLY_STOPPED`; either way ``result`` is
    a full :class:`~repro.survey.shards.ShardResult` (an early-stopped
    shard legitimately reports zero detections — the stop rule proved no
    completion of the campaign could cross the threshold).
    """

    shard_id: str
    status: str
    result: object  # ShardResult
    captures_used: int
    captures_total: int
    stopped_after: object = None  # int | None
    evidence_bound: object = None  # float | None


@dataclass(frozen=True)
class PlanAccounting:
    """Where every capture of an adaptive survey went.

    The invariant the planner tier asserts:
    ``captures_used + captures_saved == exhaustive_captures``. Pre-scan
    work is metered separately (``prescan_captures`` raw low-resolution
    captures, ``prescan_cost_equivalent`` in full-capture units) so the
    headline saving cannot hide the scouting cost.
    """

    n_shards: int
    exhaustive_captures: int
    captures_used: int
    captures_saved: int
    prescan_captures: int
    prescan_cost_equivalent: float
    budget_total: float
    n_completed: int
    n_early_stopped: int
    n_budget_exhausted: int
    n_prescan_skipped: int
    promises: tuple  # ShardPromise, promise-ranked

    def to_text(self):
        budget = "unlimited" if math.isinf(self.budget_total) else f"{self.budget_total:g}"
        return (
            f"adaptive plan: {self.captures_used}/{self.exhaustive_captures} "
            f"full-resolution captures used, {self.captures_saved} saved "
            f"(budget {budget}; prescan {self.prescan_captures} coarse captures "
            f"~= {self.prescan_cost_equivalent:g} full); "
            f"shards: {self.n_completed} completed, "
            f"{self.n_early_stopped} early-stopped, "
            f"{self.n_budget_exhausted} budget-exhausted, "
            f"{self.n_prescan_skipped} prescan-skipped"
        )


# ----------------------------------------------------------------------
# Per-shard workers (module-level: picklable by reference for the pool).


def _shard_setup(spec):
    """Shared shard preamble: preset, root stream, ops, label."""
    preset = ALL_PRESETS.get(spec.machine)
    if preset is None:
        raise SurveyError(
            f"unknown preset machine {spec.machine!r}; choose from {sorted(ALL_PRESETS)}"
        )
    root = make_rng(spec.seed)
    op_x, op_y = (MicroOp(value) for value in spec.pair)
    return preset, root, op_x, op_y, pair_label(op_x, op_y)


def prescan_shard(spec, planner):
    """The cheap low-resolution pass; returns a :class:`ShardPromise`.

    Runs on a *fresh* machine instance built from the same
    ``machine:{name}`` child stream as the full run, with its own
    ``prescan:{shard_id}`` campaign stream — a pure function of
    ``(seed, shard_id)`` that leaves the full-resolution streams
    untouched.
    """
    preset, root, op_x, op_y, label = _shard_setup(spec)
    config = planner.prescan_config(spec.config)
    telemetry = Telemetry()
    try:
        with use_telemetry(telemetry):
            with telemetry.span("prescan", shard=spec.shard_id, fres=config.fres):
                machine = preset(rng=child_rng(root, f"machine:{spec.machine}"))
                campaign = MeasurementCampaign(
                    machine, config, rng=child_rng(root, f"prescan:{spec.shard_id}")
                )
                result = campaign.run(op_x, op_y, label=label)
                scorer = HeuristicScorer()
                scores = scorer.all_scores(result)
                promise = float(np.max(scorer.combined_zscore(result, scores=scores)))
                evidence = float(np.max(scorer.combined_score(result, scores=scores)))
    finally:
        telemetry.close()
    return ShardPromise(
        shard_id=spec.shard_id,
        machine=spec.machine,
        promise=promise,
        evidence=evidence,
        captures=len(spec.config.falts()),
        prescan_captures=len(result.measurements),
        cost_equivalent=planner.prescan_cost(spec.config),
    )


def run_shard_adaptive(spec, planner, detector=None):
    """One funded shard with per-capture early stopping.

    Replicates :func:`~repro.survey.shards.run_shard`'s clean path
    capture for capture — same machine stream, same ``shard:{shard_id}``
    campaign stream, same serial shared analyzer — but scores the
    running Eq. 1 product after every capture and stops as soon as the
    planner's bound proves the detection threshold unreachable. A
    completed shard's detections are therefore identical to
    ``run_shard``'s; an early-stopped shard reports zero detections plus
    how many captures it left unspent.
    """
    gates = {
        "fault_classes": spec.fault_classes is not None,
        "checkpoint_dir": spec.checkpoint_dir is not None,
        "keep_spectra": bool(spec.keep_spectra),
    }
    active = [name for name, triggered in gates.items() if triggered]
    if active:
        raise SurveyError(
            "adaptive shards support clean, non-durable runs only; "
            f"incompatible with: {', '.join(active)}"
        )
    preset, root, op_x, op_y, label = _shard_setup(spec)
    detector = detector or CarrierDetector()
    scorer = HeuristicScorer()
    sinks = [JsonlSink(spec.telemetry_jsonl)] if spec.telemetry_jsonl else []
    telemetry = Telemetry(sinks=sinks)
    beat_heartbeat(spec.heartbeat_path)
    n_total = len(spec.config.falts())
    try:
        with use_telemetry(telemetry):
            with telemetry.span(
                "adaptive-shard", shard=spec.shard_id, n_falts=n_total
            ):
                machine = preset(rng=child_rng(root, f"machine:{spec.machine}"))
                campaign = MeasurementCampaign(
                    machine, spec.config, rng=child_rng(root, f"shard:{spec.shard_id}")
                )
                activities = campaign.activities_for(op_x, op_y, label=label)
                evidence = IncrementalEvidence(
                    config=spec.config,
                    machine_name=machine.name,
                    activity_label=label,
                    scorer=scorer,
                )
                stopped_after = None
                bound = None
                with telemetry.span("campaign", label=label, n_falts=n_total):
                    for measurement in campaign.iter_captures(activities, label=label):
                        evidence.add(measurement)
                        beat_heartbeat(spec.heartbeat_path)
                        stop, bound = planner.should_stop(evidence, n_total)
                        if stop:
                            stopped_after = evidence.n_captures
                            break
                    record_campaign_ledger(
                        telemetry, evidence.result.measurements, None
                    )
                if stopped_after is None:
                    result = evidence.result.validate()
                    detections = detector.detect(result)
                else:
                    detections = []
                    telemetry.count("captures_saved", n_total - stopped_after)
                    telemetry.event(
                        "shard-early-stopped",
                        shard=spec.shard_id,
                        after=stopped_after,
                        of=n_total,
                        bound=bound,
                    )
                activity = ActivityReport(
                    activity_label=label,
                    detections=detections,
                    harmonic_sets=group_harmonics(detections),
                    robustness=None,
                )
    finally:
        telemetry.close()
    shard_result = ShardResult(
        shard_id=spec.shard_id,
        machine=spec.machine,
        machine_name=machine.name,
        config_description=spec.config.describe(),
        pair_label=label,
        band=spec.band,
        is_memory_pair=is_memory_pair(op_x, op_y),
        activity=activity,
        metrics=telemetry.snapshot().to_dict(),
    )
    used = stopped_after if stopped_after is not None else n_total
    return AdaptiveShardOutcome(
        shard_id=spec.shard_id,
        status=EARLY_STOPPED if stopped_after is not None else COMPLETED,
        result=shard_result,
        captures_used=used,
        captures_total=n_total,
        stopped_after=stopped_after,
        evidence_bound=bound,
    )


# ----------------------------------------------------------------------
# The allocator.


def _prescan_all(specs, planner, workers, telemetry):
    """Pre-scan every shard; errors become ``-inf``-promise entries.

    Parallel pre-scans recompute nothing the serial path would not —
    :func:`prescan_shard` is pure — so a shard whose parallel future
    failed (including pool breaks) is simply retried inline, keeping the
    promise table invariant to ``workers``.
    """
    outcomes = {}
    if workers > 1 and len(specs) > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
                futures = {
                    spec.shard_id: pool.submit(prescan_shard, spec, planner)
                    for spec in specs
                }
                for shard_id, future in futures.items():
                    try:
                        outcomes[shard_id] = future.result()
                    except Exception:  # noqa: BLE001 - retried inline below
                        pass
        except Exception:  # noqa: BLE001 - broken pool: fall back to inline
            pass
    for spec in specs:
        if spec.shard_id in outcomes:
            continue
        try:
            outcomes[spec.shard_id] = prescan_shard(spec, planner)
        except Exception as exc:  # noqa: BLE001 - ledgered as a skip
            telemetry.event("prescan-error", shard=spec.shard_id, error=str(exc))
            outcomes[spec.shard_id] = ShardPromise(
                shard_id=spec.shard_id,
                machine=spec.machine,
                promise=-math.inf,
                evidence=0.0,
                captures=len(spec.config.falts()),
                prescan_captures=0,
                cost_equivalent=0.0,
                error=str(exc),
            )
    return outcomes


def _restore_promise(payload):
    """Rebuild a :class:`ShardPromise` from its manifest payload."""
    return ShardPromise(
        shard_id=payload["shard_id"],
        machine=payload["machine"],
        promise=float(payload["promise"]),
        evidence=float(payload["evidence"]),
        captures=int(payload["captures"]),
        prescan_captures=int(payload["prescan_captures"]),
        cost_equivalent=float(payload["cost_equivalent"]),
        error=payload.get("error"),
    )


def run_planned(
    specs,
    planner,
    workers,
    telemetry,
    ledger,
    results,
    max_shard_retries,
    max_pool_breaks,
    manifest=None,
    restored_promises=None,
    restored_outcomes=None,
    shard_timeout_s=None,
):
    """Drive a shard plan through the budgeted adaptive schedule.

    Three phases: (1) pre-scan every shard for its promise; (2) filter
    shards below ``min_promise`` (and pre-scan failures) into the
    ``prescan-skipped`` ledger state; (3) fund and run shards in promise
    order, round by round — each round funds every still-fundable shard
    greedily by rank, runs the round through the engine's shared-pool
    machinery (worker death, retries, stall kills, and isolation behave
    exactly as in an exhaustive survey), then applies early-stop refunds
    so later rounds can spend them. Shards the budget never reaches are
    ledgered ``budget-exhausted``.

    Completed and early-stopped shards land in ``results`` as ordinary
    :class:`~repro.survey.shards.ShardResult`s for the engine's
    aggregation; the returned :class:`PlanAccounting` reconciles every
    capture. Deterministic in ``(specs, planner)``: the round structure
    puts a barrier between funding decisions and parallel execution, so
    the allocation — and with it every result — is invariant to
    ``workers``.

    With a :class:`~repro.survey.manifest.SurveyManifest` the plan is
    durable: fresh pre-scan promises and every funded shard's accounting
    (``outcome`` records, written before their shard records) are
    journaled. On resume, ``restored_promises`` skips those pre-scans,
    ``restored_outcomes`` replays each restored shard's net capture
    spend into the budget (:meth:`CaptureBudget.restore`), and the
    accounting invariant ``used + saved == exhaustive`` holds across the
    interruption. ``shard_timeout_s`` arms the engine's stall watchdog
    for each round.
    """
    from .engine import (
        _restore_failure_counts,
        _run_isolated,
        _run_parallel,
        _run_serial,
        _ShardQueue,
    )

    restored_promises = restored_promises or {}
    restored_outcomes = restored_outcomes or {}
    with telemetry.span("plan_survey", n_shards=len(specs), workers=workers):
        promises = {
            shard_id: _restore_promise(payload)
            for shard_id, payload in restored_promises.items()
        }
        need_prescan = [spec for spec in specs if spec.shard_id not in promises]
        if need_prescan:
            with telemetry.span("prescan-sweep", n_shards=len(need_prescan)):
                fresh = _prescan_all(need_prescan, planner, workers, telemetry)
            promises.update(fresh)
            if manifest is not None:
                for spec in need_prescan:
                    manifest.append_promise(fresh[spec.shard_id])
        order = sorted(
            range(len(specs)),
            key=lambda i: (-promises[specs[i].shard_id].promise, i),
        )
        ranked = tuple(promises[specs[i].shard_id] for i in order)

        # Shards a previous run already settled: completed/early-stopped
        # results were restored into ``results``; abandoned shards were
        # replayed into the ledger. Neither re-runs.
        done = set(results) | set(ledger.abandoned)
        pending = []
        skipped = []
        for index in order:
            spec = specs[index]
            if spec.shard_id in done:
                continue
            promise = promises[spec.shard_id]
            if promise.error is not None:
                skipped.append((spec, f"pre-scan failed: {promise.error}"))
            elif planner.min_promise is not None and promise.promise < planner.min_promise:
                skipped.append(
                    (
                        spec,
                        f"pre-scan promise z={promise.promise:.2f} below "
                        f"min_promise={planner.min_promise:g}",
                    )
                )
            else:
                pending.append(spec)
        for spec, detail in skipped:
            # A resumed plan recomputes the same skips from the same
            # promises; re-recording a replayed decision would only
            # duplicate its manifest record.
            if spec.shard_id not in ledger.planned:
                ledger.record_planned(spec.shard_id, PRESCAN_SKIPPED, detail)
                telemetry.event("shard-prescan-skipped", shard=spec.shard_id)

        budget = planner.budget_for(specs)
        exhaustive = sum(len(spec.config.falts()) for spec in specs)
        used = 0
        saved = sum(len(spec.config.falts()) for spec, _ in skipped)
        n_completed = n_early_stopped = 0
        for spec in specs:
            # Fold the restored shards back into the meter and the tally:
            # a shard's net spend is its captures_used (the original run
            # charged in full, then refunded the unused remainder).
            captures = len(spec.config.falts())
            if spec.shard_id in results:
                outcome = restored_outcomes.get(spec.shard_id)
                if outcome is not None:
                    restored_used = int(outcome["captures_used"])
                    status = outcome["status"]
                else:
                    # Orphan shard record (its outcome line was damaged):
                    # assume the full spend — never undercount.
                    restored_used = captures
                    status = COMPLETED
                budget.restore(spec.machine, restored_used)
                used += restored_used
                if status == EARLY_STOPPED:
                    saved += captures - restored_used
                    n_early_stopped += 1
                else:
                    n_completed += 1
            elif spec.shard_id in ledger.abandoned:
                saved += captures
        while pending:
            funded = []
            held = []
            for spec in pending:
                captures = len(spec.config.falts())
                if budget.can_fund(spec.machine, captures):
                    budget.charge(spec.machine, captures)
                    funded.append(spec)
                else:
                    held.append(spec)
            if not funded:
                break
            pending = held
            round_results = {}
            queue = _ShardQueue(funded, max_shard_retries, ledger, telemetry)
            _restore_failure_counts(queue, ledger)
            shard_fn = partial(run_shard_adaptive, planner=planner)
            with telemetry.span("plan-round", n_funded=len(funded)):
                if workers == 1 and shard_timeout_s is None:
                    _run_serial(queue, shard_fn, round_results, telemetry)
                elif workers == 1:
                    import multiprocessing

                    queue.suspects, queue.pending = queue.pending, []
                    _run_isolated(
                        queue,
                        shard_fn,
                        round_results,
                        telemetry,
                        multiprocessing.get_context("fork"),
                        shard_timeout_s=shard_timeout_s,
                    )
                else:
                    _run_parallel(
                        queue,
                        shard_fn,
                        round_results,
                        telemetry,
                        workers,
                        max_pool_breaks,
                        shard_timeout_s=shard_timeout_s,
                    )
            # Refunds are applied only after the round barrier, so the
            # funding sequence is a pure function of (specs, planner).
            for spec in funded:
                outcome = round_results.get(spec.shard_id)
                captures = len(spec.config.falts())
                if outcome is None:
                    # Abandoned after retries; the ledger already says why.
                    budget.refund(spec.machine, captures)
                    saved += captures
                    continue
                if manifest is not None:
                    # Outcome before result: a kill between the two leaves
                    # an orphaned outcome resume ignores, never a shard
                    # whose spend is unknown.
                    manifest.append_outcome(outcome)
                results[spec.shard_id] = outcome.result
                used += outcome.captures_used
                if outcome.status == EARLY_STOPPED:
                    unused = outcome.captures_total - outcome.captures_used
                    budget.refund(spec.machine, unused)
                    saved += unused
                    n_early_stopped += 1
                    ledger.record_planned(
                        spec.shard_id,
                        EARLY_STOPPED,
                        f"stopped after {outcome.captures_used}/"
                        f"{outcome.captures_total} captures; evidence bound "
                        f"{outcome.evidence_bound:.2f} < "
                        f"{planner.stop_threshold_decades:g} decades",
                    )
                else:
                    n_completed += 1
        for spec in pending:
            captures = len(spec.config.falts())
            saved += captures
            if spec.shard_id not in ledger.planned:
                ledger.record_planned(
                    spec.shard_id,
                    BUDGET_EXHAUSTED,
                    f"capture budget exhausted before this shard's {captures} "
                    f"capture(s) could be funded",
                )
                telemetry.event("shard-budget-exhausted", shard=spec.shard_id)

    return PlanAccounting(
        n_shards=len(specs),
        exhaustive_captures=exhaustive,
        captures_used=used,
        captures_saved=saved,
        prescan_captures=sum(p.prescan_captures for p in ranked),
        prescan_cost_equivalent=sum(p.cost_equivalent for p in ranked),
        budget_total=budget.total,
        n_completed=n_completed,
        n_early_stopped=n_early_stopped,
        n_budget_exhausted=len(pending),
        n_prescan_skipped=len(skipped),
        promises=ranked,
    )
