"""Survey-level reports: per-machine results, cross-machine comparison,
and the robustness ledger of the survey run itself.

The paper's end goal (Section 5, Figures 11-17) is a *survey*: the same
FASE procedure over many machines, activity pairs, and bands, then a
comparison of which emanation sources recur across systems (Figure 17's
AMD-laptop column next to the desktop's). :class:`SurveyReport` is that
product: one :class:`~repro.core.report.FaseReport` per machine, a
cross-machine :func:`~repro.core.classify.classify_sources` comparison,
the merged telemetry snapshot of every shard, and a
:class:`SurveyLedger` accounting for every shard failure — worker
processes dying mid-shard included — so a survey that lost work says so
instead of silently thinning its results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.detect import CarrierDetection
from ..core.harmonics import HarmonicSet
from ..core.report import ActivityReport, FaseReport
from ..core.classify import ClassifiedSource

#: Failure kinds recorded in the ledger.
WORKER_DEATH = "worker-death"  # the shard's worker process died (isolated)
POOL_BREAK = "pool-break"  # a shared pool broke; shard requeued, not charged
SHARD_ERROR = "error"  # the shard raised inside the worker
POOL_BREAK_CAP = "pool-break-cap"  # survey-wide shared-pool break budget spent
SHARD_STALLED = "shard-stalled"  # the shard blew its wall-clock deadline; worker killed
CANCELLED = "cancelled"  # cooperative cancellation reached the shard before it ran

#: Degradation note kinds recorded in the ledger (graceful fallbacks).
SHM_FALLBACK = "shm-fallback"  # /dev/shm allocation failed; spectra ride the pickle
DURABILITY_DEGRADED = "durability-degraded"  # manifest writes failed; running non-durable

#: Planner decision kinds recorded in the ledger (adaptive surveys).
EARLY_STOPPED = "early-stopped"  # Eq. 1 bound fell below threshold mid-shard
BUDGET_EXHAUSTED = "budget-exhausted"  # the capture budget never reached it
PRESCAN_SKIPPED = "prescan-skipped"  # pre-scan promise below the floor (or errored)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard execution.

    ``charged`` distinguishes failures that consumed the shard's retry
    budget from pool-break collateral: when a worker dies in a *shared*
    pool every in-flight shard fails with ``BrokenProcessPool``, and only
    the subsequent isolated re-runs can attribute guilt.
    """

    shard_id: str
    kind: str  # WORKER_DEATH | POOL_BREAK | SHARD_ERROR | POOL_BREAK_CAP
    detail: str
    failures: int  # charged failures for this shard so far (incl. this one)
    charged: bool = True

    def describe(self):
        budget = f"failure {self.failures}" if self.charged else "not charged"
        return f"{self.shard_id}: {self.kind} ({budget}) - {self.detail}"


@dataclass
class SurveyLedger:
    """The survey's own robustness ledger (shards, not captures).

    Capture-level damage (drops, timeouts, screen exclusions) stays on
    each activity's :class:`~repro.faults.RobustnessReport`; this ledger
    records what happened to whole shards: every failure event, how often
    each shard was requeued, and the shards abandoned after exhausting
    ``max_shard_retries``.
    """

    failures: list = field(default_factory=list)  # ShardFailure, in order
    requeues: dict = field(default_factory=dict)  # shard_id -> requeue count
    abandoned: dict = field(default_factory=dict)  # shard_id -> final detail
    planned: dict = field(default_factory=dict)  # shard_id -> (kind, detail)
    notes: list = field(default_factory=list)  # (scope, kind, detail), in order
    cancelled: dict = field(default_factory=dict)  # shard_id -> detail

    @property
    def n_failures(self):
        return len(self.failures)

    def failures_for(self, shard_id):
        return [f for f in self.failures if f.shard_id == shard_id]

    def record_failure(self, shard_id, kind, detail, failures, charged=True):
        self.failures.append(
            ShardFailure(
                shard_id=shard_id, kind=kind, detail=detail, failures=failures, charged=charged
            )
        )

    def record_requeue(self, shard_id):
        self.requeues[shard_id] = self.requeues.get(shard_id, 0) + 1

    def record_abandoned(self, shard_id, detail):
        self.abandoned[shard_id] = detail

    def record_planned(self, shard_id, kind, detail):
        """One terminal planner decision for a shard an adaptive survey
        did not run to full resolution (early stop, budget, pre-scan
        skip). Distinct from failures: nothing went wrong — the planner
        chose not to spend the captures, and says why."""
        self.planned[shard_id] = (kind, detail)

    def record_note(self, scope, kind, detail):
        """One graceful-degradation event (:data:`SHM_FALLBACK`,
        :data:`DURABILITY_DEGRADED`). ``scope`` is a shard id, or ``None``
        for a survey-wide event. Notes are not failures: the survey kept
        running, just with one guarantee weakened — and says which."""
        self.notes.append((scope, kind, detail))

    def record_cancelled(self, shard_id, detail):
        """One shard cooperative cancellation reached before it started.

        Distinct from failures and abandonment: nothing went wrong and no
        retry budget was spent — the caller asked the survey to stop, and
        this shard was still waiting. A cancelled shard re-runs normally
        when the same plan is resumed without the cancellation."""
        self.cancelled[shard_id] = detail

    def to_text(self):
        if not self.failures and not self.abandoned:
            if self.cancelled:
                lines = [
                    "survey ledger: cancelled with "
                    f"{len(self.cancelled)} shard(s) never run"
                ]
            else:
                lines = ["survey ledger: all shards completed cleanly"]
        else:
            lines = [
                f"survey ledger: {self.n_failures} shard failure(s), "
                f"{sum(self.requeues.values())} requeue(s), {len(self.abandoned)} abandoned"
            ]
            for failure in self.failures:
                lines.append(f"  {failure.describe()}")
            for shard_id, detail in self.abandoned.items():
                lines.append(f"  abandoned {shard_id}: {detail}")
        if self.cancelled:
            lines.append(f"cancelled: {len(self.cancelled)} shard(s)")
            for shard_id, detail in self.cancelled.items():
                lines.append(f"  cancelled {shard_id}: {detail}")
        if self.planned:
            lines.append(f"planner decisions: {len(self.planned)} shard(s)")
            for shard_id, (kind, detail) in self.planned.items():
                lines.append(f"  {kind} {shard_id}: {detail}")
        if self.notes:
            lines.append(f"degradation notes: {len(self.notes)} event(s)")
            for scope, kind, detail in self.notes:
                lines.append(f"  {kind} {scope or 'survey'}: {detail}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON serialization. Values round-trip exactly (JSON floats are
# repr-based), so restored detections compare equal to the originals —
# the same fidelity contract the survey manifest relies on for resume,
# and what lets the service API ship reports as JSON instead of pickle.


def _detection_to_dict(detection):
    return {
        "frequency": float(detection.frequency),
        "combined_score": float(detection.combined_score),
        "harmonic_scores": {
            str(int(h)): float(score) for h, score in detection.harmonic_scores.items()
        },
        "magnitude_dbm": float(detection.magnitude_dbm),
        "modulation_depth": float(detection.modulation_depth),
        "activity_label": detection.activity_label,
    }


def _detection_from_dict(data):
    return CarrierDetection(
        frequency=float(data["frequency"]),
        combined_score=float(data["combined_score"]),
        harmonic_scores={int(h): float(s) for h, s in data["harmonic_scores"].items()},
        magnitude_dbm=float(data["magnitude_dbm"]),
        modulation_depth=float(data["modulation_depth"]),
        activity_label=data.get("activity_label", ""),
    )


def _harmonic_set_to_dict(harmonic_set, detections):
    """Members referencing the activity's detections serialize as indices."""
    members = []
    for order, detection in harmonic_set.members:
        index = next((i for i, d in enumerate(detections) if d is detection), None)
        entry = {"order": int(order)}
        if index is not None:
            entry["index"] = index
        else:
            entry["detection"] = _detection_to_dict(detection)
        members.append(entry)
    return {"fundamental": float(harmonic_set.fundamental), "members": members}


def _harmonic_set_from_dict(data, detections):
    members = []
    for entry in data["members"]:
        if "index" in entry:
            detection = detections[int(entry["index"])]
        else:
            detection = _detection_from_dict(entry["detection"])
        members.append((int(entry["order"]), detection))
    return HarmonicSet(fundamental=float(data["fundamental"]), members=tuple(members))


def _activity_report_to_dict(activity):
    from ..io import _robustness_to_dict

    detections = list(activity.detections)
    return {
        "activity_label": activity.activity_label,
        "detections": [_detection_to_dict(d) for d in detections],
        "harmonic_sets": [
            _harmonic_set_to_dict(s, detections) for s in activity.harmonic_sets
        ],
        "robustness": _robustness_to_dict(activity.robustness),
    }


def _activity_report_from_dict(data):
    from ..io import _robustness_from_dict

    detections = [_detection_from_dict(d) for d in data["detections"]]
    return ActivityReport(
        activity_label=data["activity_label"],
        detections=detections,
        harmonic_sets=[
            _harmonic_set_from_dict(s, detections) for s in data["harmonic_sets"]
        ],
        robustness=_robustness_from_dict(data.get("robustness")),
    )


def _source_to_dict(source):
    # Sources reference harmonic sets across activities; embedding the
    # members outright keeps each source self-contained in JSON.
    return {
        "harmonic_set": _harmonic_set_to_dict(source.harmonic_set, []),
        "fingerprint": source.fingerprint,
        "mechanism": source.mechanism,
        "modulating_labels": list(source.modulating_labels),
    }


def _source_from_dict(data):
    return ClassifiedSource(
        harmonic_set=_harmonic_set_from_dict(data["harmonic_set"], []),
        fingerprint=data["fingerprint"],
        mechanism=data["mechanism"],
        modulating_labels=tuple(data["modulating_labels"]),
    )


def _fase_report_to_dict(report):
    return {
        "machine_name": report.machine_name,
        "config_description": report.config_description,
        "activities": {
            label: _activity_report_to_dict(activity)
            for label, activity in report.activities.items()
        },
        "sources": [_source_to_dict(s) for s in report.sources],
        "telemetry": report.telemetry,
    }


def _fase_report_from_dict(data):
    return FaseReport(
        machine_name=data["machine_name"],
        config_description=data["config_description"],
        activities={
            label: _activity_report_from_dict(entry)
            for label, entry in data["activities"].items()
        },
        sources=[_source_from_dict(s) for s in data.get("sources", [])],
        telemetry=data.get("telemetry"),
    )


def _ledger_to_dict(ledger):
    return {
        "failures": [
            {
                "shard_id": f.shard_id,
                "kind": f.kind,
                "detail": f.detail,
                "failures": int(f.failures),
                "charged": bool(f.charged),
            }
            for f in ledger.failures
        ],
        "requeues": dict(ledger.requeues),
        "abandoned": dict(ledger.abandoned),
        "planned": {
            shard_id: [kind, detail] for shard_id, (kind, detail) in ledger.planned.items()
        },
        "notes": [[scope, kind, detail] for scope, kind, detail in ledger.notes],
        "cancelled": dict(ledger.cancelled),
    }


def _ledger_from_dict(data):
    ledger = SurveyLedger()
    for entry in data.get("failures", []):
        ledger.failures.append(
            ShardFailure(
                shard_id=entry["shard_id"],
                kind=entry["kind"],
                detail=entry["detail"],
                failures=int(entry["failures"]),
                charged=bool(entry.get("charged", True)),
            )
        )
    ledger.requeues = {k: int(v) for k, v in data.get("requeues", {}).items()}
    ledger.abandoned = dict(data.get("abandoned", {}))
    ledger.planned = {
        shard_id: (kind, detail) for shard_id, (kind, detail) in data.get("planned", {}).items()
    }
    ledger.notes = [tuple(note) for note in data.get("notes", [])]
    ledger.cancelled = dict(data.get("cancelled", {}))
    return ledger


#: Format marker of the JSON report, for forward compatibility.
REPORT_JSON_FORMAT = "fase-survey-report-v1"


@dataclass
class SurveyReport:
    """Everything a multi-machine survey produced.

    ``machines`` maps machine *name* (the model's display name) to its
    merged :class:`~repro.core.report.FaseReport`; ``comparison`` holds
    the cross-machine :class:`~repro.core.classify.ClassifiedSource` list
    where ``modulating_labels`` names the machines sharing each source.
    ``telemetry`` is the merge of every shard's metrics snapshot (plain
    dict form); ``n_shards``/``n_completed`` summarize coverage, and
    ``ledger`` explains any gap between the two.

    A ``keep_spectra`` survey additionally fills ``spectra`` with one
    :class:`~repro.survey.dataplane.ShardSpectra` per completed shard —
    zero-copy views into the engine's shared-memory arena. The report
    then *owns* that arena: call :meth:`close` (or use the report as a
    context manager) when the spectra are no longer needed, after which
    the views are invalid. Reports without spectra close as a no-op.
    """

    config_description: str
    machines: dict = field(default_factory=dict)  # machine name -> FaseReport
    comparison: list = field(default_factory=list)  # cross-machine sources
    ledger: SurveyLedger = field(default_factory=SurveyLedger)
    telemetry: object = None
    n_shards: int = 0
    n_completed: int = 0
    spectra: dict = field(default_factory=dict)  # shard_id -> ShardSpectra
    arena: object = field(default=None, repr=False)  # TraceArena | None
    planning: object = None  # PlanAccounting | None (adaptive surveys)

    def detections_for(self, machine_name, label):
        return self.machines[machine_name].detections_for(label)

    def close(self):
        """Release the shared-memory arena behind ``spectra`` (idempotent)."""
        self.spectra.clear()
        if self.arena is not None:
            self.arena.release()
            self.arena = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def to_dict(self):
        """JSON-serializable form of the whole report.

        Everything semantic survives — detections, harmonic sets,
        sources, cross-machine comparison, ledger, merged metrics —
        detection-for-detection (frozen dataclasses compare equal after
        the round trip). Deliberately excluded: ``spectra``/``arena``
        (live shared-memory views) and ``planning`` (in-process adaptive
        accounting); both are run artifacts, not results.
        """
        return {
            "format": REPORT_JSON_FORMAT,
            "config_description": self.config_description,
            "n_shards": int(self.n_shards),
            "n_completed": int(self.n_completed),
            "machines": {
                name: _fase_report_to_dict(fase) for name, fase in self.machines.items()
            },
            "comparison": [_source_to_dict(s) for s in self.comparison],
            "ledger": _ledger_to_dict(self.ledger),
            "telemetry": self.telemetry,
        }

    def to_json(self, indent=None):
        """The report as a JSON string (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data):
        report = cls(
            config_description=data.get("config_description", ""),
            machines={
                name: _fase_report_from_dict(entry)
                for name, entry in data.get("machines", {}).items()
            },
            comparison=[_source_from_dict(s) for s in data.get("comparison", [])],
            ledger=_ledger_from_dict(data.get("ledger", {})),
            telemetry=data.get("telemetry"),
            n_shards=int(data.get("n_shards", 0)),
            n_completed=int(data.get("n_completed", 0)),
        )
        return report

    @classmethod
    def from_json(cls, text):
        """Rebuild a report from :meth:`to_json` output (str or dict)."""
        data = json.loads(text) if isinstance(text, (str, bytes)) else text
        return cls.from_dict(data)

    def to_text(self):
        lines = [
            f"FASE survey over {len(self.machines)} machine(s) "
            f"({self.n_completed}/{self.n_shards} shards)",
            f"  {self.config_description}",
            "",
        ]
        for report in self.machines.values():
            lines.append(report.to_text())
            lines.append("")
        if self.comparison:
            lines.append("cross-machine sources:")
            for source in self.comparison:
                machines = ", ".join(source.modulating_labels)
                lines.append(f"  {source.harmonic_set.describe()} seen on: {machines}")
        if self.planning is not None:
            lines.append(self.planning.to_text())
        lines.append(self.ledger.to_text())
        return "\n".join(lines)
