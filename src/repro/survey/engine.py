"""The process-parallel survey engine.

Every existing parallel path in this library (``FaseConfig.n_workers``,
``run_fase``'s pair pool) is a thread pool, so capture synthesis and
scoring — pure Python + numpy — never use more than ~one core of real
work. A survey is embarrassingly parallel at a coarser grain: the
(machine, pair, band) shards share nothing, so this engine fans
:class:`~repro.survey.shards.ShardSpec` units across a
``ProcessPoolExecutor`` and merges the picklable results.

Fault model
-----------

A worker *process* can die mid-shard (OOM kill, segfaulting native code,
an operator's ``kill -9``). ``ProcessPoolExecutor`` then fails **every**
in-flight future with ``BrokenProcessPool`` and the pool is unusable —
the innocent shards' failures say nothing about who killed the worker.
The engine therefore runs in rounds:

1. a shared pool round submits all pending shards with ``workers``
   processes; shards that raise ordinary exceptions are charged a
   failure and requeued (bounded by ``max_shard_retries``);
2. if the pool breaks, only the shards *in flight at the break* become
   suspects — they are requeued *uncharged* (ledgered as ``pool-break``)
   into an isolation queue, where each runs alone in a fresh
   single-worker pool so a worker death is attributable: *that* shard is
   charged, retried in isolation while budget remains, and finally
   abandoned with the failure recorded in the
   :class:`~repro.survey.report.SurveyLedger`. Shards that were not in
   flight return to the shared pool in the next round — one bad shard no
   longer collapses the whole survey to single-worker throughput;
3. shared-pool breaks themselves are budgeted survey-wide by
   ``max_pool_breaks``: once spent, shards still waiting for a shared
   pool are abandoned with the distinct ``pool-break-cap`` ledger kind
   (suspects keep their isolated runs — those are attributable), so a
   systematically hostile environment terminates instead of cycling
   break/requeue forever.

A shard result is a pure function of ``(seed, shard_id)`` (see
:mod:`~repro.survey.shards`), so ``workers=1`` — which runs shards
inline, no pool — produces detections identical to any process-parallel
run of the same plan, and re-running a requeued shard is always safe.

With ``keep_spectra=True`` the engine also owns the zero-copy data
plane (:mod:`~repro.survey.dataplane`): one shared-memory block per
shard, allocated before any worker starts and released in a ``finally``
unless ownership transfers to the returned report — so no exit path
(shard error, worker SIGKILL, pool break, engine exception) can leak a
``/dev/shm`` segment.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import replace
from pathlib import Path

from ..core.classify import classify_sources
from ..core.config import campaign_low_band
from ..core.pipeline import pair_label
from ..core.report import FaseReport
from ..errors import ManifestError, SurveyError
from ..faults import FAULT_CLASSES
from ..runner import journal_dirname
from ..system import ALL_PRESETS
from ..telemetry import (
    MetricsSnapshot,
    current_telemetry,
    record_planner_ledger,
    record_survey_resume,
    use_telemetry,
)
from ..uarch.isa import MicroOp
from .dataplane import PickledSpectra, ShardSpectra, TraceArena
from .manifest import (
    JournaledLedger,
    SurveyManifest,
    plan_fingerprint,
    replay_ledger,
)
from .report import (
    DURABILITY_DEGRADED,
    POOL_BREAK,
    POOL_BREAK_CAP,
    SHARD_ERROR,
    SHARD_STALLED,
    SHM_FALLBACK,
    WORKER_DEATH,
    SurveyLedger,
    SurveyReport,
)

from .shards import ShardSpec, run_shard

#: Ledger detail for shards a cooperative cancellation reached first.
_CANCEL_DETAIL = "survey cancelled before this shard started"

#: The two pairs the paper's survey focuses on: memory modulation
#: (Figure 11) and on-chip modulation (Figure 13).
DEFAULT_PAIRS = ((MicroOp.LDM, MicroOp.LDL1), (MicroOp.LDL2, MicroOp.LDL1))

#: Named band splits accepted by ``--bands`` and :func:`parse_bands`.
BAND_PRESETS = {
    "full": 1,
    "halves": 2,
    "quarters": 4,
    "eighths": 8,
    "sixteenths": 16,
}


def parse_bands(text):
    """Parse a ``--bands`` value into what :func:`plan_shards` accepts.

    Accepts an integer count (``"8"``), a preset name (``"quarters"``),
    or comma-separated MHz ranges (``"0-2,2-4"``). ``None``/empty means
    no banding. Errors name the valid presets, mirroring the micro-op
    pair parser.
    """
    if text is None:
        return None
    if isinstance(text, int):
        return text
    value = str(text).strip()
    if not value:
        return None
    if value.lower() in BAND_PRESETS:
        return BAND_PRESETS[value.lower()]
    try:
        return int(value)
    except ValueError:
        pass
    spans = []
    try:
        for part in value.split(","):
            low, sep, high = part.partition("-")
            if not sep:
                raise ValueError(part)
            spans.append((float(low) * 1e6, float(high) * 1e6))
    except ValueError:
        presets = ", ".join(sorted(BAND_PRESETS))
        raise SurveyError(
            f"invalid bands value {text!r}; use a band count, one of the presets "
            f"({presets}), or comma-separated MHz ranges like '0-2,2-4'"
        ) from None
    return tuple(spans)


def _coerce_pair(pair):
    try:
        op_x, op_y = pair
        return (MicroOp(getattr(op_x, "value", op_x)), MicroOp(getattr(op_y, "value", op_y)))
    except (TypeError, ValueError) as exc:
        valid = ", ".join(sorted(op.value for op in MicroOp))
        raise SurveyError(f"invalid activity pair {pair!r}; each op must be one of: {valid}") from exc


def _band_spans(config, bands):
    """Normalize ``bands`` into labeled (low, high) spans.

    ``None`` → the config's full span as one band; an int ``n`` → ``n``
    equal contiguous sub-spans; otherwise an iterable of (low, high)
    pairs. Labels are human-readable MHz ranges and double as shard-id
    components.
    """
    if bands is None:
        spans = [(config.span_low, config.span_high)]
    elif isinstance(bands, int):
        if bands < 1:
            raise SurveyError("bands must be >= 1")
        width = (config.span_high - config.span_low) / bands
        spans = [
            (config.span_low + i * width, config.span_low + (i + 1) * width)
            for i in range(bands)
        ]
    else:
        spans = [(float(low), float(high)) for low, high in bands]
        if not spans:
            raise SurveyError("bands must be non-empty")
    for low, high in spans:
        if high <= low:
            raise SurveyError(f"band ({low:g}, {high:g}) has non-positive width")
    return [(f"{low / 1e6:g}-{high / 1e6:g}MHz", (low, high)) for low, high in spans]


def _normalize_fault_classes(fault_classes):
    """``None`` → clean run; ``"all"`` → every class; else validated names."""
    if fault_classes is None:
        return None
    if isinstance(fault_classes, str):
        if fault_classes.strip().lower() in ("all", ""):
            return tuple(FAULT_CLASSES)
        fault_classes = [name.strip() for name in fault_classes.split(",") if name.strip()]
    classes = tuple(fault_classes)
    unknown = [name for name in classes if name not in FAULT_CLASSES]
    if unknown:
        raise SurveyError(f"unknown fault classes {unknown}; choose from {sorted(FAULT_CLASSES)}")
    return classes


def plan_shards(
    machines=None,
    pairs=DEFAULT_PAIRS,
    config=None,
    bands=None,
    seed=0,
    fault_classes=None,
    checkpoint_dir=None,
    resume=True,
    telemetry_dir=None,
):
    """The survey's work plan: one :class:`ShardSpec` per (machine, pair, band).

    Deterministic in its inputs — the plan order is the aggregation order,
    so reports read the same regardless of which shard finished first.
    """
    config = config or campaign_low_band()
    if machines is None:
        machines = sorted(ALL_PRESETS)
    machines = tuple(machines)
    if not machines:
        raise SurveyError("survey needs at least one machine")
    unknown = [name for name in machines if name not in ALL_PRESETS]
    if unknown:
        raise SurveyError(f"unknown preset machines {unknown}; choose from {sorted(ALL_PRESETS)}")
    pairs = tuple(_coerce_pair(pair) for pair in pairs)
    if not pairs:
        raise SurveyError("survey needs at least one activity pair")
    classes = _normalize_fault_classes(fault_classes)
    spans = _band_spans(config, bands)
    specs = []
    for machine in machines:
        for op_x, op_y in pairs:
            for band_label, (low, high) in spans:
                shard_id = f"{machine}:{pair_label(op_x, op_y)}:{band_label}"
                shard_config = replace(
                    config,
                    span_low=low,
                    span_high=high,
                    n_workers=1,
                    name=config.name or "survey",
                )
                telemetry_jsonl = None
                if telemetry_dir is not None:
                    telemetry_jsonl = str(
                        Path(telemetry_dir) / f"{journal_dirname(shard_id)}.jsonl"
                    )
                specs.append(
                    ShardSpec(
                        shard_id=shard_id,
                        machine=machine,
                        pair=(op_x.value, op_y.value),
                        config=shard_config,
                        band=band_label,
                        seed=seed,
                        fault_classes=classes,
                        checkpoint_dir=None if checkpoint_dir is None else str(checkpoint_dir),
                        resume=resume,
                        telemetry_jsonl=telemetry_jsonl,
                    )
                )
    return tuple(specs)


class _ShardQueue:
    """Pending + suspect specs plus the per-shard failure accounting.

    ``pending`` holds shards eligible for shared-pool rounds; ``suspects``
    holds shards that were in flight when a shared pool broke — they run
    alone (attributably) before the shared pool resumes. ``pool_breaks``
    counts shared-pool breaks against the survey-wide ``max_pool_breaks``
    budget.
    """

    def __init__(self, specs, max_shard_retries, ledger, telemetry):
        self.pending = list(specs)
        self.suspects = []
        self.failures = {spec.shard_id: 0 for spec in specs}
        self.max_shard_retries = max_shard_retries
        self.pool_breaks = 0
        self.ledger = ledger
        self.telemetry = telemetry

    def charge(self, spec, kind, detail, isolate=False):
        """Charge a failure; requeue while budget remains, else abandon.

        ``isolate=True`` sends the requeue back to the suspect queue (the
        shard already proved fatal once, so it keeps running alone);
        otherwise it returns to the shared-pool rounds.
        """
        self.failures[spec.shard_id] += 1
        n = self.failures[spec.shard_id]
        self.ledger.record_failure(spec.shard_id, kind, detail, failures=n)
        if n <= self.max_shard_retries:
            self.ledger.record_requeue(spec.shard_id)
            (self.suspects if isolate else self.pending).append(spec)
            self.telemetry.event("shard-requeued", shard=spec.shard_id, kind=kind, failures=n)
        else:
            reason = f"{kind} after {n} failure(s): {detail}"
            self.ledger.record_abandoned(spec.shard_id, reason)
            self.telemetry.event("shard-abandoned", shard=spec.shard_id, kind=kind, failures=n)

    def requeue_uncharged(self, spec, detail, isolate=False):
        """Pool-break collateral: requeue without consuming budget."""
        self.ledger.record_failure(
            spec.shard_id,
            POOL_BREAK,
            detail,
            failures=self.failures[spec.shard_id],
            charged=False,
        )
        self.ledger.record_requeue(spec.shard_id)
        (self.suspects if isolate else self.pending).append(spec)
        self.telemetry.event("shard-requeued", shard=spec.shard_id, kind=POOL_BREAK)

    def cancel_remaining(self, detail=_CANCEL_DETAIL):
        """Cooperative cancellation: ledger every not-yet-started shard.

        Cancellation is checked *between* shard executions only — an
        in-flight shard always finishes (and persists to the manifest),
        so completed-shard results stay byte-identical to an
        uninterrupted run. Cancelled shards spend no retry budget and
        re-run normally when the plan is resumed without the
        cancellation.
        """
        remaining, self.pending, self.suspects = self.pending + self.suspects, [], []
        for spec in remaining:
            self.ledger.record_cancelled(spec.shard_id, detail)
            self.telemetry.event("shard-cancelled", shard=spec.shard_id)
        return len(remaining)

    def abandon_for_pool_break_cap(self, max_pool_breaks):
        """Abandon every shard still waiting on a shared pool.

        Called when the survey-wide shared-pool break budget is spent.
        Suspects are *not* abandoned here — their isolated runs are
        attributable and individually bounded by ``max_shard_retries``.
        """
        abandoned, self.pending = self.pending, []
        for spec in abandoned:
            detail = (
                f"survey hit its shared-pool break budget "
                f"(max_pool_breaks={max_pool_breaks}) before this shard could run"
            )
            self.ledger.record_failure(
                spec.shard_id,
                POOL_BREAK_CAP,
                detail,
                failures=self.failures[spec.shard_id],
                charged=False,
            )
            self.ledger.record_abandoned(spec.shard_id, detail)
            self.telemetry.event("shard-abandoned", shard=spec.shard_id, kind=POOL_BREAK_CAP)
        return len(abandoned)


class _ManifestResults(dict):
    """The results sink of a durable survey: completion implies a record.

    Dropping in for the plain results dict keeps every scheduler path
    (serial, shared-pool, isolation, planner rounds) manifest-aware
    without threading a journal through their signatures: the first time
    a shard's result lands here it is appended to the manifest before it
    is visible in memory, so the in-memory state never runs ahead of the
    durable state.
    """

    def __init__(self, manifest):
        super().__init__()
        self.manifest = manifest

    def __setitem__(self, key, value):
        if key not in self:
            self.manifest.append_shard(value)
        super().__setitem__(key, value)

    def restore(self, mapping):
        """Pre-populate restored results without re-appending them."""
        for key, value in mapping.items():
            dict.__setitem__(self, key, value)


# ----------------------------------------------------------------------
# The stall watchdog. A *hung* worker (SIGSTOP, a wedged syscall, an
# NFS stall) never breaks the pool, so without deadlines it wedges the
# survey forever — only worker *death* raises BrokenProcessPool.


class _ShardStalled(Exception):
    """Internal: an isolated shard blew its wall-clock deadline."""


def _shard_deadline(spec, started_at, shard_timeout_s):
    """Epoch deadline: ``shard_timeout_s`` past the latest heartbeat.

    Workers touch ``spec.heartbeat_path`` as they make progress (shard
    start, campaign publication), so a slow-but-alive shard keeps
    extending its own deadline; a hung one stops beating and expires.
    """
    base = started_at
    if spec.heartbeat_path is not None:
        try:
            base = max(base, os.path.getmtime(spec.heartbeat_path))
        except OSError:
            pass
    return base + shard_timeout_s


def _kill_pool_workers(pool):
    """SIGKILL every worker process of a pool.

    SIGKILL works on a SIGSTOP'd process where cancellation cannot, and
    deliberately breaks the pool — the engine's existing break machinery
    then salvages finished futures and requeues the innocent in-flight
    shards.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.kill()
        except Exception:  # noqa: BLE001 - already-reaped workers are fine
            pass


def _stall_detail(shard_timeout_s):
    return (
        f"no heartbeat within the {shard_timeout_s:g}s shard deadline; worker killed"
    )


def _await_or_kill(future, spec, pool, shard_timeout_s):
    """``future.result()`` bounded by the heartbeat-extended deadline."""
    started = time.time()
    while True:
        remaining = _shard_deadline(spec, started, shard_timeout_s) - time.time()
        if remaining <= 0:
            if future.done():
                return future.result()
            _kill_pool_workers(pool)
            raise _ShardStalled(_stall_detail(shard_timeout_s))
        try:
            return future.result(timeout=remaining)
        except FuturesTimeoutError:
            continue


def _restore_failure_counts(queue, ledger):
    """Carry a resumed survey's charged failure counts into the queue.

    A shard that burned retries before the crash must not get a fresh
    ``max_shard_retries`` budget on resume; the replayed ledger already
    knows how many charged failures each shard accumulated.
    """
    for failure in ledger.failures:
        if failure.charged and failure.shard_id in queue.failures:
            queue.failures[failure.shard_id] = max(
                queue.failures[failure.shard_id], failure.failures
            )


def _is_cancelled(cancel_event):
    return cancel_event is not None and cancel_event.is_set()


def _run_serial(queue, shard_fn, results, telemetry, cancel_event=None):
    while queue.pending:
        if _is_cancelled(cancel_event):
            queue.cancel_remaining()
            return
        spec = queue.pending.pop(0)
        try:
            result = shard_fn(spec)
        except Exception as exc:  # noqa: BLE001 - every shard error is ledgered
            queue.charge(spec, SHARD_ERROR, str(exc))
        else:
            results[spec.shard_id] = result
            telemetry.event("shard-finished", shard=spec.shard_id)


def _run_isolated(
    queue, shard_fn, results, telemetry, context, shard_timeout_s=None, cancel_event=None
):
    """Drain the suspect queue: one fresh single-worker pool per shard.

    A death here is attributable, so the shard is charged
    ``worker-death`` and — unlike shared-pool collateral — requeued back
    into isolation until its retry budget runs out. With a
    ``shard_timeout_s`` the wait is bounded by the heartbeat-extended
    deadline; a hung worker is killed and the shard charged
    ``shard-stalled`` against the same budget.
    """
    while queue.suspects:
        if _is_cancelled(cancel_event):
            queue.cancel_remaining()
            return
        spec = queue.suspects.pop(0)
        try:
            with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
                future = pool.submit(shard_fn, spec)
                if shard_timeout_s is None:
                    result = future.result()
                else:
                    result = _await_or_kill(future, spec, pool, shard_timeout_s)
        except _ShardStalled as exc:
            queue.charge(spec, SHARD_STALLED, str(exc), isolate=True)
            telemetry.count("shards_stalled")
            telemetry.event("shard-stalled", shard=spec.shard_id, isolated=True)
        except BrokenProcessPool:
            queue.charge(
                spec, WORKER_DEATH, "worker process died running this shard", isolate=True
            )
        except Exception as exc:  # noqa: BLE001 - ledgered
            queue.charge(spec, SHARD_ERROR, str(exc), isolate=True)
        else:
            results[spec.shard_id] = result
            telemetry.event("shard-finished", shard=spec.shard_id)


def _run_parallel(
    queue,
    shard_fn,
    results,
    telemetry,
    workers,
    max_pool_breaks,
    shard_timeout_s=None,
    cancel_event=None,
):
    # fork keeps worker startup cheap and lets test-injected shard
    # functions resolve in the children without re-import.
    context = multiprocessing.get_context("fork")
    while queue.pending or queue.suspects:
        if _is_cancelled(cancel_event):
            queue.cancel_remaining()
            return
        # Suspects first: the shards in flight at the last break re-run
        # alone so guilt is attributable before the shared pool resumes.
        _run_isolated(
            queue,
            shard_fn,
            results,
            telemetry,
            context,
            shard_timeout_s=shard_timeout_s,
            cancel_event=cancel_event,
        )
        if not queue.pending:
            continue
        # Shared-pool round. Submission is windowed to the worker count:
        # only the shards actually executing at a break become suspects;
        # the unsubmitted remainder stays eligible for the next shared
        # round instead of collapsing the whole survey into isolation.
        batch, queue.pending = queue.pending, []
        broke = False
        stall_killed = False
        outstanding = {}  # future -> spec
        started = {}  # future -> submit epoch (watchdog deadline base)
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:

            def submit_next():
                # Cancellation lands between submissions, never mid-shard:
                # nothing new is submitted, the in-flight window drains
                # normally, and the unsubmitted remainder is cancelled
                # after the pool closes.
                while batch and len(outstanding) < workers and not _is_cancelled(cancel_event):
                    spec = batch.pop(0)
                    try:
                        future = pool.submit(shard_fn, spec)
                    except BrokenProcessPool:
                        batch.insert(0, spec)
                        return False
                    outstanding[future] = spec
                    started[future] = time.time()
                return True

            broke = not submit_next()
            while outstanding and not broke:
                timeout = None
                if shard_timeout_s is not None:
                    # The windowed submission means every outstanding
                    # future is actually executing, so each one carries a
                    # live deadline; wake at the earliest.
                    now = time.time()
                    timeout = max(
                        0.0,
                        min(
                            _shard_deadline(spec, started[future], shard_timeout_s)
                            for future, spec in outstanding.items()
                        )
                        - now,
                    )
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED, timeout=timeout)
                for future in done:
                    spec = outstanding.pop(future)
                    started.pop(future, None)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # A worker died; guilt is unattributable in a
                        # shared pool. The in-flight shard becomes a
                        # suspect and will re-run alone.
                        broke = True
                        queue.requeue_uncharged(
                            spec,
                            "a worker process died while this shard was in flight",
                            isolate=True,
                        )
                    except Exception as exc:  # noqa: BLE001 - ledgered
                        queue.charge(spec, SHARD_ERROR, str(exc))
                    else:
                        results[spec.shard_id] = result
                        telemetry.event("shard-finished", shard=spec.shard_id)
                if not broke and shard_timeout_s is not None:
                    # Stall sweep: a hung worker never breaks the pool on
                    # its own, so expired deadlines force the break. The
                    # culprits are known (unlike an unattributable worker
                    # death), so they are charged and isolated here;
                    # everything else in flight is innocent collateral.
                    now = time.time()
                    expired = [
                        future
                        for future, spec in outstanding.items()
                        if now >= _shard_deadline(spec, started[future], shard_timeout_s)
                        and not future.done()
                    ]
                    for future in expired:
                        spec = outstanding.pop(future)
                        started.pop(future, None)
                        queue.charge(
                            spec, SHARD_STALLED, _stall_detail(shard_timeout_s), isolate=True
                        )
                        telemetry.count("shards_stalled")
                        telemetry.event("shard-stalled", shard=spec.shard_id, isolated=True)
                    if expired:
                        _kill_pool_workers(pool)
                        broke = True
                        stall_killed = True
                if not broke:
                    broke = not submit_next()
            # After a break the rest of the window is already failed;
            # salvage any that completed first, suspect the others.
            for future, spec in outstanding.items():
                try:
                    result = future.result()
                except BrokenProcessPool:
                    if stall_killed:
                        # The culprit was charged above; this shard was
                        # merely sharing the killed pool, so it goes back
                        # to the shared rounds uncharged.
                        queue.requeue_uncharged(
                            spec,
                            "the survey killed a stalled worker's pool; "
                            "this shard was innocent collateral",
                        )
                    else:
                        queue.requeue_uncharged(
                            spec,
                            "a worker process died while this shard was in flight",
                            isolate=True,
                        )
                except Exception as exc:  # noqa: BLE001 - ledgered
                    queue.charge(spec, SHARD_ERROR, str(exc))
                else:
                    results[spec.shard_id] = result
                    telemetry.event("shard-finished", shard=spec.shard_id)
        if _is_cancelled(cancel_event):
            for spec in batch:
                queue.ledger.record_cancelled(spec.shard_id, _CANCEL_DETAIL)
                telemetry.event("shard-cancelled", shard=spec.shard_id)
            batch = []
        for spec in batch:
            # Never submitted, so not a suspect: back to the shared pool.
            queue.requeue_uncharged(spec, "the pool broke before this shard was submitted")
        if broke:
            if stall_killed:
                # A stall-kill is the survey's own doing, charged to the
                # stalled shard's retry budget — it does not spend the
                # environment-hostility budget.
                telemetry.event("survey-stall-kill")
            else:
                queue.pool_breaks += 1
                telemetry.event(
                    "survey-pool-broke",
                    pool_breaks=queue.pool_breaks,
                    max_pool_breaks=max_pool_breaks,
                )
                if queue.pool_breaks > max_pool_breaks:
                    n = queue.abandon_for_pool_break_cap(max_pool_breaks)
                    telemetry.event("survey-pool-break-cap", n_abandoned=n)


def _aggregate(specs, results, ledger, base_description):
    """Merge shard results into one :class:`SurveyReport`, in plan order."""
    report = SurveyReport(
        config_description=base_description,
        ledger=ledger,
        n_shards=len(specs),
        n_completed=len(results),
    )
    per_machine = {}  # preset key -> (FaseReport, sets_by_activity, memory, onchip)
    merged_metrics = MetricsSnapshot(counters={}, gauges={}, histograms={})
    multi_band = len({spec.band for spec in specs}) > 1
    for spec in specs:
        shard = results.get(spec.shard_id)
        if shard is None:
            continue
        merged_metrics = merged_metrics.merge(MetricsSnapshot.from_dict(shard.metrics))
        entry = per_machine.get(shard.machine)
        if entry is None:
            fase = FaseReport(
                machine_name=shard.machine_name, config_description=base_description
            )
            entry = per_machine[shard.machine] = (fase, {}, [], [])
        fase, sets_by_activity, memory_labels, onchip_labels = entry
        label = f"{shard.pair_label} [{shard.band}]" if multi_band else shard.pair_label
        activity = shard.activity
        activity.activity_label = label
        fase.activities[label] = activity
        sets_by_activity[label] = activity.harmonic_sets
        (memory_labels if shard.is_memory_pair else onchip_labels).append(label)
    for fase, sets_by_activity, memory_labels, onchip_labels in per_machine.values():
        fase.sources = classify_sources(
            sets_by_activity,
            memory_labels=tuple(memory_labels),
            onchip_labels=tuple(onchip_labels),
        )
        report.machines[fase.machine_name] = fase
    if report.machines:
        # Section 5's cross-machine view: one pseudo-activity per machine;
        # a source's modulating_labels become the machines sharing it.
        report.comparison = classify_sources(
            {name: fase.all_harmonic_sets() for name, fase in report.machines.items()},
            memory_labels=(),
            onchip_labels=(),
        )
    report.telemetry = merged_metrics.to_dict()
    return report, merged_metrics


def run_survey(
    machines=None,
    pairs=DEFAULT_PAIRS,
    config=None,
    bands=None,
    seed=0,
    workers=1,
    fault_classes=None,
    checkpoint_dir=None,
    resume=True,
    telemetry_dir=None,
    telemetry=None,
    max_shard_retries=2,
    max_pool_breaks=3,
    keep_spectra=False,
    shard_fn=None,
    planner=None,
    manifest_dir=None,
    shard_timeout_s=None,
    cancel_event=None,
):
    """Survey many machines with process-level parallelism.

    ``machines`` are preset keys (default: all four of the paper's test
    systems); ``pairs`` X/Y micro-op pairs; ``bands`` optionally splits
    the config's span (int → equal sub-bands, or explicit (low, high)
    pairs). ``workers`` > 1 fans shards across that many *processes*;
    ``workers=1`` runs them inline — detections are identical either way
    for the same plan and seed.

    ``fault_classes`` (``"all"`` or names) runs every shard degraded;
    ``checkpoint_dir`` gives each shard a durable journal under
    ``<dir>/<shard>`` so a killed survey resumes; ``telemetry_dir``
    streams each shard's records to ``<dir>/<shard>.jsonl``, and every
    shard's metrics snapshot is merged into ``report.telemetry``.
    ``telemetry`` (a parent-side :class:`~repro.telemetry.Telemetry`)
    additionally receives survey lifecycle events and the merged
    snapshot. A shard whose worker process dies is requeued at most
    ``max_shard_retries`` times, then abandoned with the failure in
    ``report.ledger``; shared-pool breaks are additionally budgeted
    survey-wide by ``max_pool_breaks`` — once spent, shards still
    waiting for a shared pool are abandoned with the ``pool-break-cap``
    ledger kind instead of cycling break/requeue forever.

    ``keep_spectra=True`` turns on the zero-copy data plane: every shard
    gets a parent-owned shared-memory block, workers write their
    campaign's trace rows into it in place (nothing O(bins) crosses the
    pickle boundary), and the returned report carries
    ``report.spectra[shard_id]`` views plus ownership of the arena —
    call ``report.close()`` (or use the report as a context manager)
    when done. Every failure path releases the blocks in a ``finally``,
    so worker death, pool breaks, and engine exceptions cannot leak
    ``/dev/shm`` segments.

    ``shard_fn`` replaces :func:`~repro.survey.shards.run_shard` in
    tests; it must be a module-level (picklable) callable.

    ``planner`` (an :class:`~repro.survey.planner.AdaptivePlanner`)
    switches the survey onto the budgeted adaptive schedule: every shard
    is pre-scanned at low resolution, full-resolution captures go to
    high-promise shards first under the planner's budget, and funded
    shards early-stop as soon as their Eq. 1 evidence provably cannot
    reach the detection threshold. The returned report carries the
    reconciled :class:`~repro.survey.planner.PlanAccounting` in
    ``report.planning`` and one ledger decision per shard the planner
    cut short. Adaptive *shards* support clean, non-durable runs only —
    ``fault_classes``, ``checkpoint_dir``, ``keep_spectra``, and
    ``shard_fn`` are incompatible with a planner — but adaptive
    *surveys* are durable through ``manifest_dir``, which journals the
    planner's pre-scan promises and per-shard budget accounting
    alongside the results.

    ``manifest_dir`` makes the whole survey crash-safe: every shard
    outcome, ledger event, and planner decision is appended to a
    checksummed journal (:mod:`~repro.survey.manifest`) as it happens,
    and re-running the same plan with ``resume=True`` skips completed
    shards byte-identically, replays the ledger, and resumes an adaptive
    plan's budget mid-round. A manifest that stops being writable
    (``ENOSPC``) degrades the survey to non-durable execution — ledgered
    as ``durability-degraded`` — instead of crashing it.

    ``shard_timeout_s`` arms the stall watchdog: each shard must either
    finish or touch its heartbeat file within that many seconds, or its
    worker is killed, the shard is charged a ``shard-stalled`` failure
    against ``max_shard_retries``, and it retries in isolation. Stall
    kills are the survey's own doing and never spend ``max_pool_breaks``;
    innocent shards sharing the killed pool are requeued uncharged. With
    ``workers=1`` the watchdog routes shards through single-worker pools
    (an inline call cannot be killed).

    ``cancel_event`` (a ``threading.Event`` or ``multiprocessing.Event``)
    arms cooperative cancellation: the engine checks it between shard
    submissions — never mid-shard — so in-flight shards finish (and
    persist to the manifest) while every not-yet-started shard is
    ledgered as ``cancelled``. A cancelled survey returns a normal
    report with the coverage gap in ``n_completed``; re-running the same
    plan with ``manifest_dir``/``resume=True`` and no cancellation
    completes exactly the remaining shards.
    """
    if workers < 1:
        raise SurveyError("workers must be >= 1")
    if planner is not None:
        incompatible = {
            "fault_classes": fault_classes is not None,
            "checkpoint_dir": checkpoint_dir is not None,
            "keep_spectra": keep_spectra,
            "shard_fn": shard_fn is not None,
            "cancel_event": cancel_event is not None,
        }
        clashes = [name for name, clash in incompatible.items() if clash]
        if clashes:
            raise SurveyError(
                f"adaptive planning supports clean, non-durable surveys only; "
                f"incompatible with: {', '.join(clashes)}"
            )
    if max_shard_retries < 0:
        raise SurveyError("max_shard_retries must be >= 0")
    if max_pool_breaks < 0:
        raise SurveyError("max_pool_breaks must be >= 0")
    if shard_timeout_s is not None:
        try:
            shard_timeout_s = float(shard_timeout_s)
        except (TypeError, ValueError):
            shard_timeout_s = -1.0
        if shard_timeout_s <= 0:
            raise SurveyError(
                "shard_timeout_s must be a positive number of seconds "
                "(or None to disable the stall watchdog)"
            )
    config = config or campaign_low_band()
    specs = plan_shards(
        machines=machines,
        pairs=pairs,
        config=config,
        bands=bands,
        seed=seed,
        fault_classes=fault_classes,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        telemetry_dir=telemetry_dir,
    )
    if telemetry_dir is not None:
        Path(telemetry_dir).mkdir(parents=True, exist_ok=True)
    shard_fn = shard_fn or run_shard
    manifest = None
    state = None
    if manifest_dir is not None:
        manifest = SurveyManifest(manifest_dir)
        fingerprint = plan_fingerprint(specs, planner=planner)
        if manifest.exists():
            if not resume:
                raise ManifestError(
                    f"a survey manifest already exists at {str(manifest_dir)!r}; "
                    "pass resume=True to continue it or remove the directory"
                )
            manifest.open(fingerprint)
            state = manifest.load()
        else:
            manifest.create(fingerprint, specs, description=config.describe())
    heartbeat_tmp = None
    if shard_timeout_s is not None:
        # Heartbeat files live next to the manifest when there is one
        # (same lifetime as the survey's durable state), else in a
        # private temporary directory cleaned up on exit.
        if manifest_dir is not None:
            heartbeat_dir = Path(manifest_dir) / "heartbeats"
        else:
            heartbeat_tmp = tempfile.TemporaryDirectory(prefix="fase-heartbeats-")
            heartbeat_dir = Path(heartbeat_tmp.name)
        heartbeat_dir.mkdir(parents=True, exist_ok=True)
        specs = tuple(
            replace(
                spec,
                heartbeat_path=str(heartbeat_dir / f"{journal_dirname(spec.shard_id)}.hb"),
            )
            for spec in specs
        )
    results = _ManifestResults(manifest) if manifest is not None else {}
    ledger = JournaledLedger(manifest) if manifest is not None else SurveyLedger()
    arena = None
    try:
        with ExitStack() as stack:
            if telemetry is not None:
                stack.enter_context(use_telemetry(telemetry))
            tel = current_telemetry()
            if manifest is not None:

                def _on_degrade(reason):
                    ledger.record_note(
                        None,
                        DURABILITY_DEGRADED,
                        f"{reason}; the survey continues non-durably",
                    )
                    tel.event("survey-durability-degraded", reason=reason)

                manifest.on_degrade = _on_degrade
                if manifest.degraded is not None:
                    # create() failed before the hook was attached.
                    _on_degrade(manifest.degraded)
            restored_promises = {}
            restored_outcomes = {}
            if state is not None:
                replay_ledger(ledger, state.ledger_events)
                results.restore(state.results)
                restored_promises = state.promises
                restored_outcomes = state.outcomes
                record_survey_resume(tel, len(state.results), len(ledger.abandoned))
                tel.event(
                    "survey-resumed",
                    n_restored=len(state.results),
                    n_abandoned=len(ledger.abandoned),
                    torn_tail=state.torn_tail,
                    n_damaged=state.n_damaged,
                )
            done = set(results) | set(ledger.abandoned)
            # A prior run's cancellations are not terminal state: the
            # resumed run re-runs those shards, so their replayed ledger
            # entries would be stale the moment they complete.
            for shard_id in list(ledger.cancelled):
                if shard_id not in done:
                    ledger.cancelled.pop(shard_id)
            if keep_spectra:
                # Allocate every pending shard's block up front, before
                # any worker exists: the parent is the sole owner, so no
                # worker fate can leak a segment. A shard whose block
                # cannot be allocated (/dev/shm exhausted) degrades to
                # the pickle stream instead of failing the survey.
                arena = TraceArena()
                planned = []
                for spec in specs:
                    if spec.shard_id in done:
                        planned.append(spec)
                        continue
                    try:
                        block = arena.allocate(
                            spec.shard_id,
                            capacity=len(spec.config.falts()),
                            n_bins=spec.config.grid().n_bins,
                        )
                    except (OSError, MemoryError) as exc:
                        ledger.record_note(
                            spec.shard_id,
                            SHM_FALLBACK,
                            f"shared-memory allocation failed ({exc}); "
                            "this shard's spectra ride the pickle stream",
                        )
                        tel.event("shard-shm-fallback", shard=spec.shard_id)
                        planned.append(replace(spec, keep_spectra=True))
                    else:
                        planned.append(replace(spec, block=block))
                specs = tuple(planned)
            pending = [spec for spec in specs if spec.shard_id not in done]
            with tel.span("run_survey", n_shards=len(specs), workers=workers):
                if planner is not None:
                    from .planner import run_planned

                    accounting = run_planned(
                        specs,
                        planner,
                        workers=workers,
                        telemetry=tel,
                        ledger=ledger,
                        results=results,
                        max_shard_retries=max_shard_retries,
                        max_pool_breaks=max_pool_breaks,
                        manifest=manifest,
                        restored_promises=restored_promises,
                        restored_outcomes=restored_outcomes,
                        shard_timeout_s=shard_timeout_s,
                    )
                elif workers == 1 and shard_timeout_s is None:
                    queue = _ShardQueue(pending, max_shard_retries, ledger, tel)
                    _restore_failure_counts(queue, ledger)
                    _run_serial(queue, shard_fn, results, tel, cancel_event=cancel_event)
                elif workers == 1:
                    # An inline call cannot be killed, so the watchdog
                    # routes every shard through the isolated
                    # single-worker pool path.
                    queue = _ShardQueue(pending, max_shard_retries, ledger, tel)
                    _restore_failure_counts(queue, ledger)
                    queue.suspects, queue.pending = queue.pending, []
                    _run_isolated(
                        queue,
                        shard_fn,
                        results,
                        tel,
                        multiprocessing.get_context("fork"),
                        shard_timeout_s=shard_timeout_s,
                        cancel_event=cancel_event,
                    )
                else:
                    queue = _ShardQueue(pending, max_shard_retries, ledger, tel)
                    _restore_failure_counts(queue, ledger)
                    _run_parallel(
                        queue,
                        shard_fn,
                        results,
                        tel,
                        workers,
                        max_pool_breaks,
                        shard_timeout_s=shard_timeout_s,
                        cancel_event=cancel_event,
                    )
                report, merged = _aggregate(specs, results, ledger, config.describe())
                if planner is not None:
                    report.planning = accounting
                    record_planner_ledger(tel, accounting)
            if telemetry is not None and telemetry.enabled:
                telemetry.emit_external_snapshot(merged, label="survey-metrics")
        if arena is not None:
            for spec in specs:
                shard = results.get(spec.shard_id)
                if shard is None or shard.spectra is None:
                    continue
                if isinstance(shard.spectra, PickledSpectra):
                    report.spectra[spec.shard_id] = ShardSpectra(
                        spec.config.grid(),
                        shard.spectra.power,
                        shard.spectra.meta,
                    )
                else:
                    report.spectra[spec.shard_id] = ShardSpectra(
                        spec.config.grid(),
                        arena.view(spec.shard_id, shard.spectra.n_rows),
                        shard.spectra,
                    )
            # Ownership transfers to the report; the caller closes it.
            report.arena, arena = arena, None
        return report
    finally:
        if arena is not None:
            arena.release()
        if heartbeat_tmp is not None:
            heartbeat_tmp.cleanup()
