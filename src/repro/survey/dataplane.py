"""The survey's zero-copy data plane: shared-memory trace blocks.

Shipping spectra across a ``ProcessPoolExecutor`` boundary by pickling
costs a serialize + copy + deserialize per trace — enough to erase the
process-parallel win for capture-heavy shards (the PR 5 survey benchmark
measured 1.02x). This module moves the payload out of the pickle stream:
the *parent* owns one ``multiprocessing.shared_memory`` block per shard,
workers attach and write their campaign's trace rows in place, and the
only things that ride the pool boundary are compact
:class:`~repro.survey.shards.ShardResult` fields (detections, ledgers,
metrics snapshots) plus a few bytes of :class:`SpectraMeta`.

Ownership is deliberately one-sided. The parent creates every block
before the first worker starts, passes each block's *name* inside the
:class:`~repro.survey.shards.ShardSpec`, and releases every block in a
``finally`` — so a worker that dies mid-write (SIGKILL included), a pool
that breaks, or a shard that raises can never leak a ``/dev/shm``
segment: workers never own anything. Worker attachments are short-lived
(attach, write rows, close) and never unlink.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import SurveyError
from ..spectrum.trace import SpectrumTrace

#: The one dtype the plane ships — what every analyzer produces.
_DTYPE = np.dtype(np.float64)


@dataclass(frozen=True)
class BlockRef:
    """Picklable handle to one shared trace block.

    ``capacity`` rows of ``n_bins`` float64 bins; the worker writes its
    measurements into the leading rows and reports how many it used in
    :class:`SpectraMeta`. The ref is all a worker ever holds — the
    segment itself belongs to the parent.
    """

    name: str
    capacity: int
    n_bins: int

    @property
    def nbytes(self):
        return int(self.capacity) * int(self.n_bins) * _DTYPE.itemsize


@dataclass(frozen=True)
class SpectraMeta:
    """Compact description of what a worker published into its block."""

    n_rows: int
    falts: tuple
    labels: tuple
    flagged: tuple


def _release_blocks(blocks):
    """Close + unlink every (ref, shm) pair; idempotent and best-effort."""
    while blocks:
        _, (_ref, shm) = blocks.popitem()
        try:
            shm.close()
        except OSError:
            pass
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass


class TraceArena:
    """Parent-side owner of every shard's shared trace block.

    Blocks are created eagerly (:meth:`allocate`), viewed zero-copy
    (:meth:`view`), and all released together by :meth:`release` — which
    the survey engine calls in a ``finally``, and which a
    ``weakref.finalize`` repeats at garbage collection as a backstop, so
    no exit path leaks a segment.
    """

    def __init__(self):
        self._blocks = {}  # shard_id -> (BlockRef, SharedMemory)
        self._finalizer = weakref.finalize(self, _release_blocks, self._blocks)

    def allocate(self, shard_id, capacity, n_bins):
        """Create the block for one shard; returns its :class:`BlockRef`."""
        if shard_id in self._blocks:
            raise SurveyError(f"shard {shard_id!r} already has a shared trace block")
        if capacity < 1 or n_bins < 1:
            raise SurveyError(
                f"shared trace block for {shard_id!r} needs positive dimensions "
                f"(got {capacity} rows x {n_bins} bins)"
            )
        size = int(capacity) * int(n_bins) * _DTYPE.itemsize
        shm = shared_memory.SharedMemory(create=True, size=size)
        ref = BlockRef(name=shm.name, capacity=int(capacity), n_bins=int(n_bins))
        self._blocks[shard_id] = (ref, shm)
        return ref

    def ref(self, shard_id):
        return self._blocks[shard_id][0]

    def view(self, shard_id, n_rows=None):
        """A zero-copy ``(rows, n_bins)`` array over one shard's block."""
        ref, shm = self._blocks[shard_id]
        rows = ref.capacity if n_rows is None else int(n_rows)
        if rows < 0 or rows > ref.capacity:
            raise SurveyError(
                f"shard {shard_id!r} block holds at most {ref.capacity} rows, "
                f"asked for {rows}"
            )
        full = np.ndarray((ref.capacity, ref.n_bins), dtype=_DTYPE, buffer=shm.buf)
        return full[:rows]

    def __contains__(self, shard_id):
        return shard_id in self._blocks

    def __len__(self):
        return len(self._blocks)

    def release(self):
        """Close and unlink every block. Safe to call more than once."""
        _release_blocks(self._blocks)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False


@contextmanager
def attached(ref):
    """Worker-side view of a parent-owned block: attach, yield, close.

    Never unlinks — the parent owns the segment's lifetime. Under the
    survey's fork pool the worker shares the parent's resource tracker,
    so attaching registers nothing new and a SIGKILL mid-write simply
    drops the mapping with the process.
    """
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError as exc:
        raise SurveyError(
            f"shared trace block {ref.name!r} is gone; the survey parent "
            "released it (or never created it)"
        ) from exc
    try:
        yield np.ndarray((ref.capacity, ref.n_bins), dtype=_DTYPE, buffer=shm.buf)
    finally:
        shm.close()


def publish_campaign(ref, result):
    """Write a campaign's trace rows into the shard's shared block.

    Called inside the worker with the shard's finished
    :class:`~repro.core.campaign.CampaignResult`; copies each
    measurement's power row into the block (the one unavoidable copy —
    the pool boundary itself then costs nothing) and returns the
    :class:`SpectraMeta` that rides home in the pickled result.
    """
    measurements = result.measurements
    if len(measurements) > ref.capacity:
        raise SurveyError(
            f"campaign produced {len(measurements)} measurements but the shared "
            f"block {ref.name!r} holds {ref.capacity} rows"
        )
    with attached(ref) as rows:
        for i, measurement in enumerate(measurements):
            rows[i, :] = measurement.trace.power_mw
    return SpectraMeta(
        n_rows=len(measurements),
        falts=tuple(float(m.falt) for m in measurements),
        labels=tuple(m.trace.label for m in measurements),
        flagged=tuple(bool(m.flagged) for m in measurements),
    )


@dataclass(frozen=True)
class PickledSpectra:
    """Degraded-mode spectra payload: the rows ride the pickle stream.

    The graceful fallback when a shard's shared block could not be
    allocated (``/dev/shm`` exhausted): the worker stacks its trace rows
    into an ordinary array and ships them back the expensive way instead
    of failing the shard. Same information as a block + ``meta``, minus
    the zero-copy property — the engine ledgers the downgrade
    (``shm-fallback``) so the slow path is never silent.
    """

    meta: SpectraMeta
    power: object  # np.ndarray of shape (n_rows, n_bins)


def pickle_campaign(result):
    """Pack a campaign's trace rows for the pickle-fallback path."""
    measurements = result.measurements
    power = np.stack([np.asarray(m.trace.power_mw, dtype=_DTYPE) for m in measurements])
    meta = SpectraMeta(
        n_rows=len(measurements),
        falts=tuple(float(m.falt) for m in measurements),
        labels=tuple(m.trace.label for m in measurements),
        flagged=tuple(bool(m.flagged) for m in measurements),
    )
    return PickledSpectra(meta=meta, power=power)


class ShardSpectra:
    """Parent-side zero-copy view of one shard's published spectra.

    ``power`` is a ``(n_rows, n_bins)`` array aliasing the shared block
    (no copy); :meth:`trace` wraps one row as a
    :class:`~repro.spectrum.SpectrumTrace` for the ordinary analysis
    APIs. Views die when the owning :class:`TraceArena` is released —
    call :meth:`~repro.survey.SurveyReport.close` when done, or copy out
    what must outlive the report.
    """

    def __init__(self, grid, power, meta):
        self.grid = grid
        self.power = power
        self.falts = meta.falts
        self.labels = meta.labels
        self.flagged = meta.flagged

    @property
    def n_rows(self):
        return self.power.shape[0]

    def trace(self, i):
        """Row ``i`` as a :class:`SpectrumTrace` (still zero-copy)."""
        return SpectrumTrace(self.grid, self.power[i], label=self.labels[i])
