"""Chaos injectors for the survey's crash-safety guarantees.

The durable-orchestration contract — any kill point resumes to identical
detections, a hung worker never wedges a survey, degraded modes finish
with the downgrade ledgered — is only worth stating if something hostile
exercises it. This module is that something: picklable shard functions
that kill or hang their own worker, manifest mutilators that reproduce
kill-mid-write damage, and context managers that inject ``/dev/shm``
exhaustion and full-disk manifest failures. The ``chaos`` test tier
(``tests/test_chaos.py``) drives them.

Everything here follows the survey test idiom: shard functions are
module-level (pool workers pickle them by reference), the victim is the
``corei7_desktop`` shard, and the scratch directory rides into the
worker through ``config.name`` — the one free-form string on a
:class:`~repro.survey.shards.ShardSpec`.
"""

from __future__ import annotations

import errno
import os
import signal
from contextlib import contextmanager
from pathlib import Path

from ..core.report import ActivityReport
from ..runner import journal_dirname
from .shards import ShardResult, beat_heartbeat

#: The machine whose shards misbehave in every chaos scenario.
VICTIM_MACHINE = "corei7_desktop"


def is_victim(spec):
    return spec.machine == VICTIM_MACHINE


def _scratch(spec):
    return Path(spec.config.name)


def log_attempt(spec):
    """Durably count one execution attempt of this shard."""
    path = _scratch(spec) / f"{journal_dirname(spec.shard_id)}.attempts"
    with open(path, "a") as handle:
        handle.write("attempt\n")
        handle.flush()
        os.fsync(handle.fileno())


def count_attempts(base, shard_id):
    path = Path(base) / f"{journal_dirname(shard_id)}.attempts"
    if not path.exists():
        return 0
    return len(path.read_text().splitlines())


def stub_result(spec):
    """A minimal, deterministic :class:`ShardResult` for stub shards."""
    return ShardResult(
        shard_id=spec.shard_id,
        machine=spec.machine,
        machine_name=spec.machine,
        config_description=spec.config.describe(),
        pair_label="/".join(spec.pair),
        band=spec.band,
        is_memory_pair=True,
        activity=ActivityReport(
            activity_label="/".join(spec.pair), detections=[], harmonic_sets=[]
        ),
        metrics={"counters": {"captures_total": 5}, "gauges": {}, "histograms": {}},
    )


# ----------------------------------------------------------------------
# Hostile shard functions (module-level: picklable by reference).


def well_behaved_shard(spec):
    log_attempt(spec)
    return stub_result(spec)


def kill_worker_once_shard(spec):
    """The victim SIGKILLs its worker on the first attempt only."""
    log_attempt(spec)
    if is_victim(spec):
        sentinel = _scratch(spec) / "killed-once"
        if not sentinel.exists():
            sentinel.touch()
            os.kill(os.getpid(), signal.SIGKILL)
    return stub_result(spec)


def hang_worker_once_shard(spec):
    """The victim SIGSTOPs its worker on the first attempt only.

    A stopped process neither finishes nor dies, so nothing but the
    stall watchdog can unwedge the survey — SIGSTOP cannot be caught,
    and the pool never breaks on its own. The heartbeat is beaten once
    *before* stopping, proving the watchdog acts on silence after a
    beat, not just on shards that never started.
    """
    beat_heartbeat(spec.heartbeat_path)
    log_attempt(spec)
    if is_victim(spec):
        sentinel = _scratch(spec) / "hung-once"
        if not sentinel.exists():
            sentinel.touch()
            os.kill(os.getpid(), signal.SIGSTOP)
    return stub_result(spec)


def hang_worker_always_shard(spec):
    """The victim SIGSTOPs its worker on every attempt (never recovers)."""
    beat_heartbeat(spec.heartbeat_path)
    log_attempt(spec)
    if is_victim(spec):
        os.kill(os.getpid(), signal.SIGSTOP)
    return stub_result(spec)


# ----------------------------------------------------------------------
# Manifest mutilators: reproduce kill-mid-write damage byte for byte.


def _log_path(manifest_dir):
    return Path(manifest_dir) / "manifest.jsonl"


def count_records(manifest_dir):
    """Lines currently in the manifest log (0 when absent)."""
    path = _log_path(manifest_dir)
    if not path.exists():
        return 0
    return len([line for line in path.read_bytes().split(b"\n") if line.strip()])


def truncate_manifest(manifest_dir, keep_records):
    """Keep only the first ``keep_records`` lines of the manifest log.

    Simulates a parent killed after exactly that many durable appends —
    any kill point leaves some record prefix, so sweeping
    ``keep_records`` over the full range enumerates every kill point.
    """
    path = _log_path(manifest_dir)
    lines = [line for line in path.read_bytes().split(b"\n") if line.strip()]
    kept = lines[: int(keep_records)]
    data = b"".join(line + b"\n" for line in kept)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    return len(kept)


def torn_manifest_tail(manifest_dir, garbage=b'{"record": {"kind": "shard", "sha'):
    """Append a torn (half-written, unterminated) line to the log.

    The on-disk signature of a kill mid-``write``: the loader must drop
    exactly this tail, report ``torn_tail``, and trust everything before
    it.
    """
    path = _log_path(manifest_dir)
    with open(path, "ab") as handle:
        handle.write(garbage)
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Resource-failure injectors.


@contextmanager
def shm_exhausted(after=0):
    """Make shared-memory *creation* fail with ``ENOSPC`` after ``after``
    successful allocations — the /dev/shm-full scenario. Worker-side
    attachment (``create`` absent) passes through untouched.
    """
    from . import dataplane

    real = dataplane.shared_memory
    state = {"allocations": 0}

    class _ExhaustedSharedMemory:
        @staticmethod
        def SharedMemory(*args, **kwargs):
            if kwargs.get("create"):
                if state["allocations"] >= after:
                    raise OSError(
                        errno.ENOSPC, "No space left on device (chaos-injected)"
                    )
                state["allocations"] += 1
            return real.SharedMemory(*args, **kwargs)

    dataplane.shared_memory = _ExhaustedSharedMemory
    try:
        yield state
    finally:
        dataplane.shared_memory = real


@contextmanager
def manifest_disk_full(after=0):
    """Make manifest appends fail after ``after`` successful records.

    Reproduces the full-disk end state — the manifest degrades on the
    first failed append — without actually filling a filesystem.
    """
    from .manifest import SurveyManifest

    real_append = SurveyManifest._append
    state = {"appends": 0}

    def failing_append(self, record):
        if self.degraded is not None:
            return False
        if state["appends"] >= after:
            self._degrade(
                "appending to the manifest failed: "
                "[Errno 28] No space left on device (chaos-injected)"
            )
            return False
        state["appends"] += 1
        return real_append(self, record)

    SurveyManifest._append = failing_append
    try:
        yield state
    finally:
        SurveyManifest._append = real_append
