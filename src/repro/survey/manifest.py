"""The survey-level manifest: a crash-safe journal of shard outcomes.

PR 3 made the *capture* durable (:mod:`repro.runner.journal`); this
module makes the *survey* durable. A killed survey used to forget every
completed shard, lose its :class:`~repro.survey.report.SurveyLedger`,
and discard the adaptive planner's budget state. The manifest records
each of those as soon as it happens, so
``run_survey(manifest_dir=..., resume=True)`` skips completed shards
byte-identically, replays their ledger and metrics into the final
:class:`~repro.survey.report.SurveyReport`, and resumes an adaptive plan
mid-round with its accounting intact.

Durability model
----------------

The manifest is a directory holding two things:

* ``HEADER.json`` — written once through the runner's
  :func:`~repro.runner.journal.atomic_write` (tmp sibling + fsync +
  rename + directory fsync). It carries the format marker, the **plan
  fingerprint** (a SHA-256 over every shard's identity: machine, pair,
  band, seed, and the capture-relevant config fields shared with the
  campaign journal), and the plan order, so a foreign manifest can never
  be spliced into the wrong survey.
* ``manifest.jsonl`` — append-only, one fsync'd line per record, each
  line carrying a SHA-256 checksum of its payload. Appends are not
  atomic (that is the point of an append-only log); instead the *loader*
  tolerates damage: a torn final line (the kill-mid-write case) is
  dropped, a corrupt interior line is skipped, and in both cases the
  affected shards simply re-run — always safe, because a shard result is
  a pure function of ``(seed, shard_id)``.

Record kinds: ``shard`` (a full serialized
:class:`~repro.survey.shards.ShardResult`, spectra stripped), ``ledger``
(one :class:`~repro.survey.report.SurveyLedger` event), ``promise`` (one
pre-scan :class:`~repro.survey.planner.ShardPromise`), and ``outcome``
(one funded shard's adaptive accounting — written *before* its shard
record, so a kill between the two leaves an orphaned outcome that resume
ignores, never a shard whose capture spend is unknown).

Graceful degradation: when an append fails (``ENOSPC``, a yanked
volume), the manifest flips to non-durable mode — every later append is
a no-op, the ``on_degrade`` hook fires exactly once (the engine turns it
into a ``durability-degraded`` ledger note and telemetry event) — and
the survey finishes in memory rather than crashing half-done.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

from ..core.report import ActivityReport
from ..errors import ManifestError
from ..io import _config_to_dict, _robustness_from_dict, _robustness_to_dict
from ..journalutil import (
    append_line,
    atomic_write,
    checksum_record,
    decode_line,
    ensure_line_boundary,
)
from ..runner.journal import CAPTURE_FIELDS
from .report import (
    SurveyLedger,
    _detection_from_dict,
    _detection_to_dict,
    _harmonic_set_from_dict,
    _harmonic_set_to_dict,
)
from .shards import ShardResult

#: Format marker of the manifest header, for forward compatibility.
MANIFEST_FORMAT = "fase-survey-manifest-v1"

_HEADER_NAME = "HEADER.json"
_LOG_NAME = "manifest.jsonl"


# ----------------------------------------------------------------------
# Plan identity.


def plan_fingerprint(specs, planner=None):
    """Identity of one survey plan: what it measures and from which seeds.

    Covers every shard's (machine, pair, band, seed, fault classes) plus
    the capture-relevant config fields — the same field set the campaign
    journal fingerprints, so the two layers agree on what "the same
    measurement" means — and the planner's tunables when adaptive.
    Runtime knobs (workers, timeouts, checkpoint/telemetry paths,
    ``keep_spectra``) are deliberately excluded: tuning them between runs
    never orphans a manifest.
    """
    shards = []
    for spec in specs:
        config = _config_to_dict(spec.config)
        shards.append(
            {
                "shard_id": spec.shard_id,
                "machine": spec.machine,
                "pair": list(spec.pair),
                "band": spec.band,
                "seed": int(spec.seed),
                "config": {name: config[name] for name in CAPTURE_FIELDS},
                "fault_classes": (
                    None if spec.fault_classes is None else sorted(spec.fault_classes)
                ),
            }
        )
    payload = {"format": MANIFEST_FORMAT, "shards": shards}
    if planner is not None:
        from dataclasses import asdict

        payload["planner"] = asdict(planner)
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# ShardResult (de)serialization. Values round-trip exactly: JSON floats
# are repr-based, so restored detections compare equal to the originals
# — which is what lets resume assert byte-identical reports. The
# detection/harmonic-set helpers live in :mod:`repro.survey.report`
# (shared with ``SurveyReport.to_json``) and are re-exported here.


def shard_result_to_dict(result):
    """JSON form of a :class:`~repro.survey.shards.ShardResult`.

    ``spectra`` is deliberately stripped: block metadata points into a
    shared-memory arena that did not survive the crash, and pickled rows
    are O(bins). A resumed ``keep_spectra`` survey restores detections
    and ledgers exactly but not the restored shards' trace rows.
    """
    activity = result.activity
    detections = list(activity.detections)
    return {
        "shard_id": result.shard_id,
        "machine": result.machine,
        "machine_name": result.machine_name,
        "config_description": result.config_description,
        "pair_label": result.pair_label,
        "band": result.band,
        "is_memory_pair": bool(result.is_memory_pair),
        "activity": {
            "activity_label": activity.activity_label,
            "detections": [_detection_to_dict(d) for d in detections],
            "harmonic_sets": [
                _harmonic_set_to_dict(s, detections) for s in activity.harmonic_sets
            ],
            "robustness": _robustness_to_dict(activity.robustness),
        },
        "metrics": result.metrics,
    }


def shard_result_from_dict(data):
    activity_data = data["activity"]
    detections = [_detection_from_dict(d) for d in activity_data["detections"]]
    activity = ActivityReport(
        activity_label=activity_data["activity_label"],
        detections=detections,
        harmonic_sets=[
            _harmonic_set_from_dict(s, detections)
            for s in activity_data["harmonic_sets"]
        ],
        robustness=_robustness_from_dict(activity_data.get("robustness")),
    )
    return ShardResult(
        shard_id=data["shard_id"],
        machine=data["machine"],
        machine_name=data["machine_name"],
        config_description=data["config_description"],
        pair_label=data["pair_label"],
        band=data["band"],
        is_memory_pair=bool(data["is_memory_pair"]),
        activity=activity,
        metrics=data["metrics"],
        spectra=None,
    )


# ----------------------------------------------------------------------
# The manifest itself. The line-level discipline (checksummed envelopes,
# fsync'd appends, torn-tail sealing) is the shared
# :mod:`repro.journalutil`; this class owns the manifest's record
# vocabulary and degradation policy.

_checksum = checksum_record


@dataclass
class ManifestState:
    """Everything a previous run made durable, decoded and verified.

    ``results`` maps shard id to restored
    :class:`~repro.survey.shards.ShardResult`; ``ledger_events`` is every
    ledger record in append order (feed to :func:`replay_ledger`);
    ``promises``/``outcomes`` carry the adaptive planner's pre-scan and
    per-shard accounting records. ``torn_tail`` reports whether the log
    ended mid-line (the kill-mid-write signature) and ``n_damaged``
    counts interior records that failed checksum or decode — both are
    tolerated, never fatal.
    """

    results: dict = field(default_factory=dict)
    ledger_events: list = field(default_factory=list)
    promises: dict = field(default_factory=dict)  # shard_id -> promise payload
    outcomes: dict = field(default_factory=dict)  # shard_id -> outcome payload
    n_records: int = 0
    n_damaged: int = 0
    torn_tail: bool = False


def replay_ledger(ledger, events):
    """Apply restored ledger events to ``ledger`` via the base recorders.

    Uses the unbound :class:`~repro.survey.report.SurveyLedger` methods
    so replaying into a :class:`JournaledLedger` does not re-append the
    events to the manifest. Unknown event kinds are ignored (forward
    compatibility).
    """
    for event in events:
        kind = event.get("event")
        if kind == "failure":
            SurveyLedger.record_failure(
                ledger,
                event["shard_id"],
                event["failure_kind"],
                event["detail"],
                failures=int(event["failures"]),
                charged=bool(event.get("charged", True)),
            )
        elif kind == "requeue":
            SurveyLedger.record_requeue(ledger, event["shard_id"])
        elif kind == "abandoned":
            SurveyLedger.record_abandoned(ledger, event["shard_id"], event["detail"])
        elif kind == "planned":
            SurveyLedger.record_planned(
                ledger, event["shard_id"], event["decision"], event["detail"]
            )
        elif kind == "note":
            SurveyLedger.record_note(
                ledger, event.get("scope"), event["note_kind"], event["detail"]
            )
        elif kind == "cancelled":
            SurveyLedger.record_cancelled(ledger, event["shard_id"], event["detail"])


class SurveyManifest:
    """On-disk, append-only journal of one survey's shard outcomes.

    :meth:`create` starts a fresh manifest (atomic header write),
    :meth:`open` validates an existing one (format marker, fingerprint
    match), the ``append_*`` methods make one record durable each, and
    :meth:`load` returns the damage-tolerant :class:`ManifestState`.

    Append failures never propagate: the first one flips the manifest to
    ``degraded`` (see :attr:`on_degrade`) and every subsequent append is
    a no-op — a half-finished survey keeps running non-durably instead
    of crashing on a full disk.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        self.log_path = self.directory / _LOG_NAME
        self._header = None
        self._tail_checked = False
        self.degraded = None  # str reason | None
        self.on_degrade = None  # callable(reason) | None, fired once

    # -- header -------------------------------------------------------

    @property
    def header(self):
        if self._header is None:
            raise ManifestError(f"manifest at {str(self.directory)!r} is not open")
        return self._header

    def exists(self):
        return (self.directory / _HEADER_NAME).is_file()

    def create(self, fingerprint, specs, description=""):
        """Start a fresh manifest. Degrades (never raises) on write failure."""
        header = {
            "format": MANIFEST_FORMAT,
            "fingerprint": fingerprint,
            "config_description": description,
            "n_shards": len(specs),
            "shards": [{"shard_id": spec.shard_id, "band": spec.band} for spec in specs],
        }
        self._header = header
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # A header can only be absent with records present if someone
            # deleted it; never splice a fresh plan onto stale records.
            if self.log_path.exists():
                self.log_path.unlink()
            atomic_write(
                self.directory / _HEADER_NAME,
                json.dumps(header, indent=2, sort_keys=True).encode("utf-8"),
            )
        except OSError as exc:
            self._degrade(f"creating the manifest failed: {exc}")
        return self

    def open(self, fingerprint=None):
        """Load and validate an existing manifest header.

        With ``fingerprint`` given, a mismatch (different plan, seed, or
        config in the same directory) raises :class:`ManifestError`
        rather than silently splicing a foreign survey into this run.
        """
        path = self.directory / _HEADER_NAME
        if not path.is_file():
            raise ManifestError(f"no survey manifest at {str(self.directory)!r}")
        try:
            header = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ManifestError(
                f"manifest header at {str(path)!r} is unreadable: {exc}"
            ) from exc
        if header.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"unsupported manifest format {header.get('format')!r} at {str(path)!r}"
            )
        if fingerprint is not None and header.get("fingerprint") != fingerprint:
            raise ManifestError(
                f"manifest at {str(self.directory)!r} belongs to a different survey "
                "plan (machines/pairs/bands/seed/config fingerprint mismatch); "
                "remove the directory or point manifest_dir elsewhere"
            )
        self._header = header
        return self

    # -- appends ------------------------------------------------------

    def _degrade(self, reason):
        if self.degraded is not None:
            return
        self.degraded = reason
        if self.on_degrade is not None:
            self.on_degrade(reason)

    def _ensure_line_boundary(self):
        """Seal a torn tail before the first append of this run
        (:func:`repro.journalutil.ensure_line_boundary`, once per open)."""
        if self._tail_checked:
            return
        self._tail_checked = True
        ensure_line_boundary(self.log_path)

    def _append(self, record):
        """One durable record; returns False when running degraded."""
        if self.degraded is not None:
            return False
        try:
            self._ensure_line_boundary()
            append_line(self.log_path, record)
        except OSError as exc:
            self._degrade(f"appending to the manifest failed: {exc}")
            return False
        return True

    def append_shard(self, result):
        return self._append({"kind": "shard", "shard": shard_result_to_dict(result)})

    def append_ledger(self, payload):
        return self._append({"kind": "ledger", **payload})

    def append_promise(self, promise):
        return self._append(
            {
                "kind": "promise",
                "promise": {
                    "shard_id": promise.shard_id,
                    "machine": promise.machine,
                    "promise": float(promise.promise),
                    "evidence": float(promise.evidence),
                    "captures": int(promise.captures),
                    "prescan_captures": int(promise.prescan_captures),
                    "cost_equivalent": float(promise.cost_equivalent),
                    "error": promise.error,
                },
            }
        )

    def append_outcome(self, outcome):
        """The adaptive accounting of one funded shard.

        Written *before* the shard record: a kill between the two leaves
        an outcome resume ignores (its shard re-runs), never a restored
        shard whose capture spend is unknown.
        """
        return self._append(
            {
                "kind": "outcome",
                "outcome": {
                    "shard_id": outcome.shard_id,
                    "status": outcome.status,
                    "captures_used": int(outcome.captures_used),
                    "captures_total": int(outcome.captures_total),
                    "stopped_after": outcome.stopped_after,
                    "evidence_bound": (
                        None
                        if outcome.evidence_bound is None
                        else float(outcome.evidence_bound)
                    ),
                },
            }
        )

    # -- load ---------------------------------------------------------

    def load(self):
        """Decode the log into a :class:`ManifestState`, skipping damage.

        The first valid ``shard`` record per shard id wins (re-appends
        after a resume are byte-identical anyway); ``promise``/``outcome``
        records take the latest. Only a *fully durable* line counts: the
        trailing line of a log killed mid-append fails its checksum or
        decode and is counted in ``torn_tail`` instead of trusted.
        """
        state = ManifestState()
        if not self.log_path.exists():
            return state
        try:
            raw_lines = self.log_path.read_bytes().split(b"\n")
        except OSError as exc:
            raise ManifestError(
                f"manifest log at {str(self.log_path)!r} is unreadable: {exc}"
            ) from exc
        lines = [line for line in raw_lines if line.strip()]
        for position, line in enumerate(lines):
            record = self._decode(line)
            if record is None:
                if position == len(lines) - 1:
                    state.torn_tail = True
                else:
                    state.n_damaged += 1
                continue
            state.n_records += 1
            kind = record.get("kind")
            if kind == "shard":
                try:
                    result = shard_result_from_dict(record["shard"])
                except (KeyError, TypeError, ValueError, IndexError):
                    state.n_damaged += 1
                    continue
                state.results.setdefault(result.shard_id, result)
            elif kind == "ledger":
                state.ledger_events.append(record)
            elif kind == "promise":
                payload = record.get("promise") or {}
                if "shard_id" in payload:
                    state.promises[payload["shard_id"]] = payload
            elif kind == "outcome":
                payload = record.get("outcome") or {}
                if "shard_id" in payload:
                    state.outcomes[payload["shard_id"]] = payload
            # Unknown kinds: written by a future version; ignore.
        return state

    @staticmethod
    def _decode(line):
        return decode_line(line)


class JournaledLedger(SurveyLedger):
    """A :class:`~repro.survey.report.SurveyLedger` whose every record is
    mirrored into a :class:`SurveyManifest` as it happens — so a killed
    survey's ledger replays exactly, requeue counts and abandonments
    included. Restored events go through :func:`replay_ledger` (the base
    recorders), never back through these mirrors.
    """

    def __init__(self, manifest):
        super().__init__()
        self.manifest = manifest

    def record_failure(self, shard_id, kind, detail, failures, charged=True):
        super().record_failure(shard_id, kind, detail, failures=failures, charged=charged)
        self.manifest.append_ledger(
            {
                "event": "failure",
                "shard_id": shard_id,
                "failure_kind": kind,
                "detail": detail,
                "failures": int(failures),
                "charged": bool(charged),
            }
        )

    def record_requeue(self, shard_id):
        super().record_requeue(shard_id)
        self.manifest.append_ledger({"event": "requeue", "shard_id": shard_id})

    def record_abandoned(self, shard_id, detail):
        super().record_abandoned(shard_id, detail)
        self.manifest.append_ledger(
            {"event": "abandoned", "shard_id": shard_id, "detail": detail}
        )

    def record_planned(self, shard_id, kind, detail):
        super().record_planned(shard_id, kind, detail)
        self.manifest.append_ledger(
            {"event": "planned", "shard_id": shard_id, "decision": kind, "detail": detail}
        )

    def record_note(self, scope, kind, detail):
        super().record_note(scope, kind, detail)
        self.manifest.append_ledger(
            {"event": "note", "scope": scope, "note_kind": kind, "detail": detail}
        )

    def record_cancelled(self, shard_id, detail):
        super().record_cancelled(shard_id, detail)
        self.manifest.append_ledger(
            {"event": "cancelled", "shard_id": shard_id, "detail": detail}
        )


def recover_survey_report(manifest_dir):
    """Rebuild a :class:`~repro.survey.report.SurveyReport` from a manifest.

    Offline recovery (``repro analyze --manifest``): no shard re-runs,
    no fingerprint needed — whatever outcomes the manifest holds are
    aggregated exactly as the engine would have, ledger included. Shards
    the killed run never finished simply appear in the
    ``n_completed``/``n_shards`` gap.
    """
    manifest = SurveyManifest(manifest_dir)
    manifest.open()
    state = manifest.load()
    ledger = SurveyLedger()
    replay_ledger(ledger, state.ledger_events)
    header = manifest.header
    specs = [
        SimpleNamespace(shard_id=entry["shard_id"], band=entry["band"])
        for entry in header.get("shards", [])
    ]
    from .engine import _aggregate

    report, _ = _aggregate(specs, state.results, ledger, header.get("config_description", ""))
    report.n_shards = int(header.get("n_shards", len(specs)))
    return report
