"""repro.survey: the sharded, process-parallel survey engine.

The paper's results are a *survey* — the same FASE procedure over four
test systems, two activity pairs, and three bands (Figure 10), compared
across machines (Figure 17). This package scales that workload past the
GIL: the plan is decomposed into (machine, pair, band) **shards**, each
shard runs the full existing pipeline (campaign → heuristic → detection
→ grouping) in its own worker process, and the engine survives worker
death with bounded, ledgered requeues.

* :mod:`~repro.survey.shards` — :class:`ShardSpec`/:class:`ShardResult`
  and the pure per-process worker :func:`run_shard`;
* :mod:`~repro.survey.engine` — :func:`run_survey` (and
  :func:`plan_shards`), the round-based process-pool scheduler with the
  stall watchdog (``shard_timeout_s``);
* :mod:`~repro.survey.planner` — the budgeted adaptive scheduler
  (:class:`AdaptivePlanner`): low-resolution pre-scan promise scoring,
  promise-ordered capture budgeting with per-machine quotas, and
  provable per-shard early stopping
  (``run_survey(planner=AdaptivePlanner(...))``);
* :mod:`~repro.survey.dataplane` — the zero-copy data plane: per-shard
  shared-memory trace blocks (:class:`TraceArena`, :class:`BlockRef`)
  workers write into in place, so no O(bins) payload ever rides the
  pickle stream (``run_survey(keep_spectra=True)``), plus the
  :class:`PickledSpectra` fallback when ``/dev/shm`` is exhausted;
* :mod:`~repro.survey.manifest` — the survey-level crash-safe journal
  (:class:`SurveyManifest`): ``run_survey(manifest_dir=...,
  resume=True)`` skips completed shards byte-identically and
  :func:`recover_survey_report` rebuilds a report offline;
* :mod:`~repro.survey.chaos` — kill/hang/torn-tail/disk-full injectors
  behind the ``chaos`` test tier;
* :mod:`~repro.survey.report` — :class:`SurveyReport`,
  :class:`SurveyLedger`, :class:`ShardFailure`.

Entry points: :func:`run_survey` directly, or ``repro survey`` on the
command line (``--machines``, ``--workers``, ``--bands``,
``--manifest-dir``, ``--shard-timeout``, plus the standard
campaign/fault/durability/telemetry flags).
"""

from .dataplane import (
    BlockRef,
    PickledSpectra,
    ShardSpectra,
    SpectraMeta,
    TraceArena,
    pickle_campaign,
    publish_campaign,
)
from .engine import BAND_PRESETS, DEFAULT_PAIRS, parse_bands, plan_shards, run_survey
from .manifest import (
    MANIFEST_FORMAT,
    ManifestState,
    SurveyManifest,
    plan_fingerprint,
    recover_survey_report,
    replay_ledger,
)
from .planner import (
    AdaptivePlanner,
    AdaptiveShardOutcome,
    CaptureBudget,
    PlanAccounting,
    ShardPromise,
    prescan_shard,
    run_planned,
    run_shard_adaptive,
)
from .report import (
    BUDGET_EXHAUSTED,
    CANCELLED,
    DURABILITY_DEGRADED,
    EARLY_STOPPED,
    POOL_BREAK,
    POOL_BREAK_CAP,
    PRESCAN_SKIPPED,
    REPORT_JSON_FORMAT,
    SHARD_ERROR,
    SHARD_STALLED,
    SHM_FALLBACK,
    WORKER_DEATH,
    ShardFailure,
    SurveyLedger,
    SurveyReport,
)
from .shards import ShardResult, ShardSpec, beat_heartbeat, run_shard, shard_journal_dir

__all__ = [
    "AdaptivePlanner",
    "AdaptiveShardOutcome",
    "BAND_PRESETS",
    "BUDGET_EXHAUSTED",
    "BlockRef",
    "CANCELLED",
    "CaptureBudget",
    "DEFAULT_PAIRS",
    "DURABILITY_DEGRADED",
    "EARLY_STOPPED",
    "MANIFEST_FORMAT",
    "ManifestState",
    "POOL_BREAK",
    "POOL_BREAK_CAP",
    "PRESCAN_SKIPPED",
    "PickledSpectra",
    "PlanAccounting",
    "REPORT_JSON_FORMAT",
    "SHARD_ERROR",
    "SHARD_STALLED",
    "SHM_FALLBACK",
    "ShardFailure",
    "ShardPromise",
    "ShardResult",
    "ShardSpec",
    "ShardSpectra",
    "SpectraMeta",
    "SurveyLedger",
    "SurveyManifest",
    "SurveyReport",
    "TraceArena",
    "WORKER_DEATH",
    "beat_heartbeat",
    "parse_bands",
    "pickle_campaign",
    "plan_fingerprint",
    "plan_shards",
    "prescan_shard",
    "publish_campaign",
    "recover_survey_report",
    "replay_ledger",
    "run_planned",
    "run_shard",
    "run_shard_adaptive",
    "run_survey",
    "shard_journal_dir",
]
