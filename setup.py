"""Setup shim: lets ``pip install -e .`` work on environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package)."""

from setuptools import setup

setup()
