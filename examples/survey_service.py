"""Survey-as-a-service: a durable, multi-tenant campaign service.

``repro.service`` wraps the survey engine in a long-lived service: jobs
from many tenants land in a journaled store (every submit / claim /
progress / cancel transition is an fsync'd, checksummed record, so a
SIGKILLed service restarts with zero lost or duplicated work), a
weighted fair-share scheduler decides whose shard runs next, a worker
fleet drains the claims through the same pure shard function the survey
tiers prove byte-identical under re-runs, and a stdlib-only HTTP API
serves results as JSON — never a pickle.

This demo starts the service in-process on a loopback port, submits
campaigns for two tenants (alice carries twice bob's fair-share
weight), cancels a third job mid-queue, and fetches the finished
reports back through the typed client.

Run:  python examples/survey_service.py
"""

import tempfile

from repro import FaseConfig
from repro.service import FaseService, ServiceClient, TenantPolicy

CONFIG = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="service demo",
)
PAIR = [["LDM", "LDL1"]]


def main():
    tenants = [TenantPolicy("alice", weight=2.0), TenantPolicy("bob")]
    with tempfile.TemporaryDirectory() as root:
        with FaseService(root, tenants=tenants, workers=2) as service:
            host, port = service.start()
            print(f"service listening on http://{host}:{port}")
            client = ServiceClient(f"http://{host}:{port}")

            alice_job = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR, config=CONFIG, seed=3
            )
            bob_job = client.submit(
                "bob", machines=["turionx2_laptop"], pairs=PAIR, config=CONFIG, seed=3
            )
            doomed = client.submit(
                "bob", machines=["corei7_desktop", "turionx2_laptop"],
                pairs=PAIR, config=CONFIG,
            )
            print(f"submitted {alice_job} (alice), {bob_job} (bob), {doomed} (bob)")

            cancelled = client.cancel(doomed)
            print(f"cancelled {doomed}: state={cancelled['state']}")

            for job_id in (alice_job, bob_job):
                status = client.wait(job_id, timeout_s=300.0)
                print(
                    f"{job_id}: {status['state']} "
                    f"({status['n_completed']}/{status['n_shards']} shards)"
                )

            report = client.result(alice_job)
            for name, fase in report.machines.items():
                n = sum(len(a.detections) for a in fase.activities.values())
                print(f"alice's report: {n} detection(s) on {name}")

            usage = client.tenant("alice")
            print(
                f"alice's accounting: weight={usage['weight']:g}, "
                f"charged_shards={usage['charged_shards']}"
            )
            events = [event["name"] for event in client.events(alice_job)]
            print(f"{alice_job} lifecycle: {' -> '.join(events)}")


if __name__ == "__main__":
    main()
