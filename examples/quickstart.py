"""Quickstart: run FASE on the modeled Intel Core i7 desktop.

This reproduces the paper's core experiment in one call: sweep five
alternation frequencies for the LDM/LDL1 (memory) and LDL2/LDL1 (on-chip)
micro-benchmarks over 0-4 MHz, score the spectra with the Eq. 1/2
heuristic, detect the modulated carriers, group them into harmonic sets,
and classify each source.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import corei7_desktop, run_fase


def main():
    machine = corei7_desktop(rng=np.random.default_rng(0))
    print(f"Running FASE on: {machine.name}")
    print("This is the paper's Figure 11 + Figure 13 experiment (0-4 MHz,")
    print("falt = 43.3..45.3 kHz, four averaged captures per falt).\n")

    report = run_fase(machine, rng=np.random.default_rng(1))
    print(report.to_text())

    print("\nSummary (compare with the paper's Figure 11/13 legends):")
    print(report.summary())


if __name__ == "__main__":
    main()
