"""Causation workflow: from detected carrier to physical component.

Reproduces Section 4's source-identification process:

1. run FASE to find the activity-modulated carriers,
2. scan a near-field probe over the board to localize each carrier,
3. sweep steady activity levels to identify the modulation mechanism
   (regulators strengthen with load; refresh *weakens* — the paper's
   key clue that the 512 kHz comb was refresh, not a clock).

Run:  python examples/locate_leaky_components.py
"""

import numpy as np

from repro import MicroOp, corei7_desktop, run_fase
from repro.analysis import localize_carrier, modulation_depth_sweep
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment
from repro.system.domains import DRAM_POWER, MEMORY_UTILIZATION
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import activity_levels


def main():
    machine = corei7_desktop(rng=np.random.default_rng(0))
    report = run_fase(machine, pairs=((MicroOp.LDM, MicroOp.LDL1),), rng=np.random.default_rng(1))

    print("Step 1 - FASE detections (LDM/LDL1):")
    for harmonic_set in report.sets_for("LDM/LDL1"):
        print("  ", harmonic_set.describe())

    print("\nStep 2 - near-field localization of each set's fundamental:")
    steady_memory = AlternationActivity.constant(
        activity_levels(MicroOp.LDM), label="steady memory traffic"
    )
    idle = AlternationActivity.constant(activity_levels(MicroOp.LDL1), label="idle")
    for harmonic_set in report.sets_for("LDM/LDL1"):
        # probe the refresh comb while idle (it is strongest then!)
        activity = idle if abs(harmonic_set.fundamental - 512e3) < 5e3 else steady_memory
        result = localize_carrier(machine, harmonic_set.fundamental, activity)
        print("  ", result.describe())

    print("\nStep 3 - modulation mechanism via steady activity sweeps:")
    quiet = corei7_desktop(environment=build_environment(4e6, kind="quiet"),
                           rng=np.random.default_rng(0))
    regulator_sweep = modulation_depth_sweep(
        quiet, DRAM_POWER, 315e3, FrequencyGrid(250e3, 400e3, 50.0)
    )
    refresh_sweep = modulation_depth_sweep(
        quiet, MEMORY_UTILIZATION, 512e3, FrequencyGrid(450e3, 600e3, 50.0)
    )
    print(f"  {'activity':>9} {'315k regulator':>15} {'512k refresh':>14}")
    for regulator, refresh in zip(regulator_sweep, refresh_sweep):
        print(
            f"  {regulator.level:>9.2f} {regulator.carrier_dbm:>13.1f}dB {refresh.carrier_dbm:>12.1f}dB"
        )
    print("\n  -> the regulator carrier strengthens with load (PWM duty rises);")
    print("     the refresh carrier WEAKENS (accesses disrupt refresh timing),")
    print("     the inverted response that identified the mechanism in Sec. 4.2.")


if __name__ == "__main__":
    main()
