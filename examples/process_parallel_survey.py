"""Process-parallel survey: fan (machine, pair) shards across worker processes.

``repro.survey.run_survey`` shards a Section 5-style survey — many
machines x activity pairs x bands — across a ``ProcessPoolExecutor``,
where each shard runs the full campaign/score/detect/group pipeline in
its own interpreter. Shard results are pure functions of (seed, shard id),
so the inline ``workers=1`` run and the process-pool run below produce
identical detections; the engine also merges every shard's telemetry
snapshot and keeps a ledger of any shard whose worker process died.

Run:  python examples/process_parallel_survey.py
"""

from repro import FaseConfig
from repro.survey import run_survey

CONFIG = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="parallel survey demo",
)
MACHINES = ("corei7_desktop", "turionx2_laptop")


def main():
    serial = run_survey(machines=MACHINES, config=CONFIG, seed=3, workers=1)
    parallel = run_survey(machines=MACHINES, config=CONFIG, seed=3, workers=2)

    print(parallel.to_text())

    same = all(
        [d.frequency for d in serial.machines[name].activities[label].detections]
        == [d.frequency for d in parallel.machines[name].activities[label].detections]
        for name, fase in serial.machines.items()
        for label in fase.activities
    )
    print(f"\nserial and process-parallel detections identical: {same}")
    print(f"merged captures across shards: {parallel.telemetry['counters']['captures_total']}")


if __name__ == "__main__":
    main()
