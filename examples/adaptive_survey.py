"""Adaptive survey: spend a capture budget where the evidence points.

An exhaustive survey captures every falt of every (machine, pair, band)
shard — most of it spent proving empty bands empty. The adaptive
planner (``run_survey(planner=AdaptivePlanner(...))``) first runs a
cheap low-resolution pre-scan of every shard, ranks shards by their
pre-scan Eq. 1/2 promise, funds full-resolution captures from a budget
in promise order, and stops a running shard early once its Eq. 1
evidence provably cannot reach the detection threshold. The result: the
identical carrier set as the exhaustive survey, at a fraction of the
captures — with every spent, saved, and pre-scan capture reconciled in
the plan accounting.

Run:  python examples/adaptive_survey.py
"""

from repro import FaseConfig, MicroOp
from repro.survey import AdaptivePlanner, run_survey

CONFIG = FaseConfig(
    span_low=0.0, span_high=4e6, fres=50.0, falt1=43.3e3, f_delta=0.5e3,
    name="adaptive survey demo",
)
PLAN = dict(
    machines=("corei7_desktop",),
    pairs=((MicroOp.LDM, MicroOp.LDL1),),
    config=CONFIG,
    bands=32,
    seed=5,
)


def carriers(report):
    return {
        name: sorted(
            round(d.frequency) for a in fase.activities.values() for d in a.detections
        )
        for name, fase in report.machines.items()
    }


def main():
    exhaustive = run_survey(**PLAN)
    adaptive = run_survey(**PLAN, planner=AdaptivePlanner(capture_budget=64))

    print(adaptive.to_text())

    acc = adaptive.planning
    identical = carriers(adaptive) == carriers(exhaustive)
    print(f"\ncarrier set identical to the exhaustive survey: {identical}")
    print(
        f"captures: {acc.captures_used}/{acc.exhaustive_captures} used "
        f"({acc.captures_saved} saved; pre-scan cost "
        f"~{acc.prescan_cost_equivalent:.0f} full-capture equivalents)"
    )
    print(
        f"shards: {acc.n_completed} completed, {acc.n_early_stopped} early-stopped, "
        f"{acc.n_budget_exhausted} left unfunded"
    )


if __name__ == "__main__":
    main()
