"""Robustness audit: confirm FASE rejected everything it should have.

Reproduces the paper's validation pass (Section 1): list every rejected
signal at least as strong as the weakest reported carrier, and check each
against the model's ground truth — stations, long-wave transmitters,
spurious tones, unmodulated system clocks, and the core regulator (which
LDM/LDL1 does not modulate) must all be rejections; none may be a missed
carrier.

Run:  python examples/validate_rejections.py
"""

import numpy as np

from repro import MicroOp, campaign_low_band, corei7_desktop
from repro.analysis import validate_rejections
from repro.core import CarrierDetector, MeasurementCampaign


def main():
    machine = corei7_desktop(rng=np.random.default_rng(0))
    campaign = MeasurementCampaign(machine, campaign_low_band(), rng=np.random.default_rng(1))
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    detections = CarrierDetector().detect(result)
    print(f"FASE reported {len(detections)} carriers; auditing the rejections...\n")

    checks = validate_rejections(machine, result, detections)
    missed = [c for c in checks if c.is_missed_carrier]
    harmonics = [c for c in checks if not c.is_truly_unmodulated and not c.is_missed_carrier]
    environment = [c for c in checks if c.is_truly_unmodulated]

    print(f"strong rejected signals inspected: {len(checks)}")
    print(f"  genuinely unmodulated (stations/spurs/core reg): {len(environment)}")
    print(f"  unmarked harmonics of reported sets:             {len(harmonics)}")
    print(f"  MISSED carriers:                                 {len(missed)}")

    print("\nA few examples:")
    for check in checks[:12]:
        print("  ", check.describe())

    if not missed:
        print("\n-> validation passed: every strong rejected signal is accounted for,")
        print("   matching the paper's manual-inspection result.")
    else:
        print("\n-> WARNING: missed carriers found:")
        for check in missed:
            print("  ", check.describe())


if __name__ == "__main__":
    main()
