"""Spread-spectrum clock detection (Section 4.3, Figures 14-16).

Shows (1) the swept DRAM clock's pedestal-with-horns spectrum and its
dependence on memory activity, (2) why a small falt buries side-bands
inside the pedestal, and (3) how FASE still finds the clock — reported as
two carriers at the band edges — once falt moves the side-bands outside
the carrier's own spectrum.

Run:  python examples/spread_spectrum_clock.py
"""

import numpy as np

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector
from repro.system import build_environment, corei7_desktop
from repro.uarch.isa import activity_levels


def main():
    machine = corei7_desktop(
        environment=build_environment(340e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    config = FaseConfig(
        span_low=329e6, span_high=336e6, fres=2e3,
        falt1=180e3, f_delta=10e3, name="DRAM clock window",
    )
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    grid = config.grid()

    print("Figure 14: DRAM clock pedestal vs memory activity")
    idle = campaign.capture_steady(activity_levels(MicroOp.LDL1), label="0% memory")
    busy = campaign.capture_steady(activity_levels(MicroOp.LDM), label="100% memory")
    for f in (330e6, 332.02e6, 332.5e6, 332.98e6, 335e6):
        i = grid.index_of(f)
        print(f"  {f / 1e6:8.2f} MHz: idle {idle.dbm[i]:7.1f} dBm   busy {busy.dbm[i]:7.1f} dBm")
    print("  -> twin edge horns at 332 / 333 MHz; busy ~9 dB above idle.\n")

    print("Figures 15/16: FASE with falt large enough to clear the pedestal")
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    detections = CarrierDetector(min_separation_hz=150e3).detect(result)
    for detection in detections:
        print("  ", detection.describe())
    print("  -> the spread clock is reported as two carriers at the edges")
    print("     of the swept band, exactly as in the paper's Figure 16.")


if __name__ == "__main__":
    main()
