"""Durable execution: kill a campaign mid-run, resume it, lose nothing.

A real FASE survey records spectra for hours, and a crash at capture 4
of 5 used to waste the whole run. This example walks the durable
execution layer end to end on the Figure 11 memory campaign (LDM/LDL1,
Core i7 desktop):

1. a reference run records the uninterrupted result,
2. a second run over a checkpoint journal is killed after 3 captures
   (simulated by a machine wrapper that raises ``KeyboardInterrupt``),
3. re-invoking the same campaign over the same journal resumes from the
   last good capture — durable captures are pure functions of
   (seed, index, attempt),
4. the resumed result reproduces the reference byte-for-byte, proven by
   comparing the saved archives,
5. finally the archive is truncated in place and recovered from the
   journal alone (``load_campaign(..., journal=...)``).

Run:  python examples/resumable_campaign.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import DurableCampaign, FaseConfig, MicroOp
from repro.io import load_campaign, save_campaign
from repro.system import build_environment, corei7_desktop


def make_machine():
    # The same seeds every time: durable resume requires (and this example
    # demonstrates) that re-invocation reproduces the original run.
    return corei7_desktop(
        environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
    )


class KilledMidRun:
    """Wrap a machine; die with KeyboardInterrupt after ``n`` captures."""

    def __init__(self, machine, n):
        self._machine = machine
        self._n = n
        self._captures = 0

    @property
    def name(self):
        return self._machine.name

    def scene(self, activity):
        if self._captures >= self._n:
            raise KeyboardInterrupt(f"simulated crash after {self._n} captures")
        self._captures += 1
        return self._machine.scene(activity)


def run_campaign(machine, journal_dir):
    config = FaseConfig(
        span_low=0.0, span_high=1e6, fres=100.0,
        capture_timeout_s=300.0,       # watchdog deadline per capture attempt
        retry_backoff_s=0.5,           # base of the bounded exponential backoff
        name="resumable demo",
    )
    campaign = DurableCampaign(
        machine, config, journal_dir=journal_dir, rng=np.random.default_rng(1)
    )
    return campaign, campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


def main():
    workdir = Path(tempfile.mkdtemp(prefix="fase-resumable-"))
    print(f"working under {workdir}")

    print("\nStep 1 - uninterrupted reference run:")
    _, reference = run_campaign(make_machine(), workdir / "reference-journal")
    reference_path = save_campaign(reference, workdir / "reference")
    print(f"  {len(reference.measurements)} captures -> {reference_path.name}")

    print("\nStep 2 - the same campaign, killed after 3 of 5 captures:")
    journal_dir = workdir / "journal"
    try:
        run_campaign(KilledMidRun(make_machine(), 3), journal_dir)
    except KeyboardInterrupt as exc:
        print(f"  run died: {exc}")
    records = sorted(p.name for p in journal_dir.glob("record-*.npz"))
    print(f"  journal kept {len(records)} checkpointed captures: {records}")

    print("\nStep 3 - re-invoke over the same journal:")
    campaign, resumed = run_campaign(make_machine(), journal_dir)
    print(f"  resumed captures {campaign.resumed_indices} from the journal,")
    print(f"  recaptured the rest; {len(resumed.measurements)} measurements total")

    print("\nStep 4 - the resumed result is byte-identical to the reference:")
    resumed_path = save_campaign(resumed, workdir / "resumed")
    identical = resumed_path.read_bytes() == reference_path.read_bytes()
    print(f"  archives byte-identical: {identical}")
    assert identical

    print("\nStep 5 - corrupt the archive, recover it from the journal:")
    resumed_path.write_bytes(resumed_path.read_bytes()[:1000])  # truncate
    recovered = load_campaign(resumed_path, journal=journal_dir)
    print(
        f"  recovered {len(recovered.measurements)} captures for "
        f"{recovered.machine_name} / {recovered.activity_label}"
    )

    print("\nThe CLI equivalent:")
    print("  python -m repro record --checkpoint-dir ckpt out.npz   # first run")
    print("  python -m repro record --checkpoint-dir ckpt --resume out.npz")
    print("  python -m repro analyze out.npz --journal ckpt")


if __name__ == "__main__":
    main()
