"""The complete Section 4 workflow in one call.

``investigate()`` chains everything the paper's evaluation does per
machine: the two-pair FASE campaign, harmonic grouping, activity
fingerprinting, near-field localization of every source, and the
steady-activity response probe that distinguishes mechanisms (regulators
strengthen with load; memory refresh weakens).

Run:  python examples/full_investigation.py
"""

import numpy as np

from repro.analysis import investigate
from repro.system import build_environment, corei7_desktop


def main():
    machine = corei7_desktop(
        environment=build_environment(4e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    print(f"Investigating: {machine.name}\n")
    investigation = investigate(machine, rng=np.random.default_rng(1))

    print(investigation.report.to_text())
    print()
    print(investigation.to_text())
    print()
    print("Compare with the paper's Section 4: the regulator carriers localize")
    print("to their supplies and strengthen with load; the 512 kHz comb")
    print("localizes to the DIMMs and WEAKENS with memory activity — the clue")
    print("that identified it as memory refresh.")


if __name__ == "__main__":
    main()
