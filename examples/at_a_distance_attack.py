"""From FASE finding to working attack — and back to mitigation.

Section 4.1: regulator emanations "allow attackers to carry out the
equivalent of power side-channel attacks from a distance". This example
closes the loop for a defender:

1. FASE finds the DRAM regulator carrier (Figure 11),
2. a demodulation attack on that carrier recovers a victim's secret
   exponent bits from the square-and-multiply power pattern,
3. the refresh-randomization / pacing mitigations are evaluated with the
   same campaign machinery to show the leak closing.

Run:  python examples/at_a_distance_attack.py
"""

import numpy as np

from repro import FaseConfig, MicroOp, run_fase
from repro.analysis.attack import attack_carrier
from repro.analysis.leakage import rank_leaks
from repro.core import CarrierDetector, MeasurementCampaign
from repro.mitigation import RandomizedRefreshEmitter, evaluate_mitigation, replace_emitter
from repro.system import build_environment, corei7_desktop


def main():
    machine = corei7_desktop(rng=np.random.default_rng(0))

    print("Step 1 - find the leaks (FASE, LDM/LDL1):")
    report = run_fase(machine, pairs=((MicroOp.LDM, MicroOp.LDL1),), rng=np.random.default_rng(1))
    detections = report.detections_for("LDM/LDL1")
    campaign = MeasurementCampaign(
        machine, report_config(), rng=np.random.default_rng(1)
    )
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    for estimate in rank_leaks(result, detections)[:4]:
        print("  ", estimate.describe())

    print("\nStep 2 - exploit the strongest carrier (simulated victim running")
    print("binary exponentiation; attacker AM-demodulates the 315 kHz carrier):")
    secret = tuple(int(b) for b in np.random.default_rng(42).integers(0, 2, size=48))
    outcome = attack_carrier(secret, rng=np.random.default_rng(7))
    print("  ", outcome.describe())
    recovered = "".join(map(str, outcome.recovered_bits))
    truth = "".join(map(str, secret))
    print(f"   secret:    {truth}")
    print(f"   recovered: {recovered}")

    print("\nStep 3 - close the refresh leak (randomized refresh issue, Sec. 4.2):")
    quiet = corei7_desktop(
        environment=build_environment(2e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    mitigated = replace_emitter(
        quiet,
        "memory refresh",
        RandomizedRefreshEmitter(
            "memory refresh", randomization=1.0, refresh_frequency=128e3,
            fundamental_dbm=-118.0, coherence_loss=2.0, n_ranks=4,
            rank_imbalance=0.15, position=(22.0, 8.0),
        ),
    )
    config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="mitigation eval")
    evaluation = evaluate_mitigation(quiet, mitigated, 512e3, config, rng=np.random.default_rng(9))
    print("  ", evaluation.describe())


def report_config():
    from repro import campaign_low_band

    return campaign_low_band()


if __name__ == "__main__":
    main()
