"""Fault injection: run the Figure 11 campaign through a hostile capture path.

Real FASE measurements run for hours in an unshielded metropolitan lab;
captures get hit by transient interference bursts, ADC clipping, LO
drift, outright capture drops, and glitched bins. This example enables
all five fault classes on the paper's memory campaign (LDM/LDL1 over
0-4 MHz on the Core i7 desktop) and shows the degraded-mode pipeline:
every capture is screened against its cohort, failed captures are
retried, persistent failures are excluded from the Eq. 1/2 scoring, and
the run ends with a full fault-accounting ledger — while the 315 kHz
DRAM regulator carrier is still detected.

Run:  python examples/fault_injection_campaign.py
"""

import numpy as np

from repro import FaultPlan, MicroOp, corei7_desktop, run_fase
from repro.system import build_environment


def main():
    machine = corei7_desktop(
        environment=build_environment(4e6, kind="metropolitan", rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    plan = FaultPlan.default()
    print(f"Running FASE on: {machine.name}")
    print(f"Fault plan: {plan.describe()}")
    print("Every capture attempt can be corrupted; the campaign screens,")
    print("retries, and scores leave-one-out around what it cannot repair.\n")

    report = run_fase(
        machine,
        pairs=((MicroOp.LDM, MicroOp.LDL1),),
        rng=np.random.default_rng(7),
        fault_plan=plan,
    )
    print(report.to_text())

    for activity in report.activities.values():
        robustness = activity.robustness
        if robustness is None:
            continue
        print(f"\nRobustness ledger for {activity.activity_label}:")
        print(robustness.to_text())
        print(
            f"  injected {robustness.n_injected} faults, "
            f"retried {robustness.n_retried} captures, "
            f"excluded {robustness.n_excluded} from scoring"
        )
        carrier = next(
            (d for d in activity.detections if abs(d.frequency - 315e3) < 2e3), None
        )
        if carrier is not None:
            print(f"  315 kHz DRAM regulator carrier survived: {carrier.frequency:.0f} Hz")
        else:
            print("  315 kHz carrier lost — try fewer fault classes or more retries")


if __name__ == "__main__":
    main()
