"""Section 4.4 survey: apply FASE to all four modeled systems.

Finds the same three signal families everywhere — switching regulators,
memory refresh (132 kHz on the AMD Turion, 128 kHz elsewhere), and the
spread-spectrum DRAM clock — and demonstrates the AMD system's
frequency-modulated core regulator, which FASE correctly does not report.

Run:  python examples/survey_systems.py
"""

import numpy as np

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.core import CarrierDetector, group_harmonics
from repro.system import ALL_PRESETS, ConstantOnTimeRegulator, DRAMClockEmitter


def survey_low_band(name, machine):
    config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="survey 0-2 MHz")
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    sets = group_harmonics(CarrierDetector().detect(result))
    print(f"  low band: {len(sets)} harmonic sets")
    for harmonic_set in sets:
        print(f"    {harmonic_set.describe()}")


def survey_dram_clock(name, machine):
    clock = next(e for e in machine.emitters if isinstance(e, DRAMClockEmitter))
    low, high = clock.band_edges()
    config = FaseConfig(
        span_low=low - 3e6, span_high=high + 3e6, fres=2e3,
        falt1=1800e3, f_delta=100e3, name="DRAM clock window",
    )
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
    detections = CarrierDetector(min_separation_hz=150e3).detect(result)
    edges = ", ".join(f"{d.frequency / 1e6:.3f} MHz" for d in detections)
    print(f"  DRAM clock ({clock.name} swept {low / 1e6:.0f}-{high / 1e6:.0f} MHz): "
          f"detected at [{edges}]")


def main():
    for name, build in sorted(ALL_PRESETS.items()):
        machine = build(rng=np.random.default_rng(0))
        print(f"\n=== {machine.name} ===")
        survey_low_band(name, machine)
        survey_dram_clock(name, machine)
        fm_regulators = [
            e for e in machine.emitters if isinstance(e, ConstantOnTimeRegulator)
        ]
        for regulator in fm_regulators:
            print(
                f"  note: {regulator.name} is frequency-modulated "
                f"({regulator.frequency_at(0.0) / 1e3:.0f} -> "
                f"{regulator.frequency_at(1.0) / 1e3:.0f} kHz with load); "
                "FASE correctly does not report it."
            )


if __name__ == "__main__":
    main()
