"""Service tier, HTTP edition: the end-to-end JSON API contract.

The headline test is the ISSUE's CI scenario verbatim — serve, submit
jobs for two tenants, cancel one, fetch results — against the *real*
(small) pipeline, asserting the report fetched over HTTP is identical
to running the same plan through ``run_survey`` directly: the service
is a scheduler around the survey engine, never a different computation.
Cancellation runs against a slow stub fleet so the cancel request
deterministically lands mid-campaign. Error-path tests pin the status
codes the client maps back to :class:`ServiceError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import FaseConfig, MicroOp, run_survey
from repro.errors import ServiceError
from repro.service import FaseService, ServiceClient, TenantPolicy, config_from_request
from repro.survey.chaos import stub_result

pytestmark = pytest.mark.service

#: Small but real: 2000-bin grid with a populated low band.
SMALL = FaseConfig(
    span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
    name="service api test",
)
ONE_PAIR = ((MicroOp.LDM, MicroOp.LDL1),)
PAIR_NAMES = [["LDM", "LDL1"]]


def _slow_stub_shard(spec):
    """Module-level (picklable) stub that holds the fleet busy a while."""
    time.sleep(0.3)
    return stub_result(spec)


class TestServiceEndToEnd:
    def test_two_tenants_submit_wait_fetch_results(self, tmp_path):
        tenants = (TenantPolicy("alice", weight=2.0), TenantPolicy("bob"))
        with FaseService(tmp_path / "svc", tenants=tenants, workers=2) as service:
            host, port = service.start()
            client = ServiceClient(f"http://{host}:{port}")
            alice_job = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=SMALL, seed=3,
            )
            bob_job = client.submit(
                "bob", machines=["turionx2_laptop"], pairs=PAIR_NAMES,
                config=SMALL, seed=3,
            )
            assert client.wait(alice_job, timeout_s=120.0)["state"] == "completed"
            assert client.wait(bob_job, timeout_s=120.0)["state"] == "completed"

            report = client.result(alice_job)
            golden = run_survey(
                machines=("corei7_desktop",), pairs=ONE_PAIR, config=SMALL, seed=3
            )
            # Identical to the standalone survey: same detections,
            # sources, ledger. Merged telemetry is excluded — its timing
            # histograms are wall-clock, not results.
            fetched, expected = report.to_dict(), golden.to_dict()
            fetched.pop("telemetry"), expected.pop("telemetry")
            assert fetched == expected
            assert any(
                activity.detections
                for fase in report.machines.values()
                for activity in fase.activities.values()
            )

            bob_report = client.result(bob_job)
            assert sorted(bob_report.machines) == ["AMD Turion X2 laptop"]

            # /jobs lists both; /tenants shows the fairness accounting.
            assert {entry["job_id"] for entry in client.jobs()} == {alice_job, bob_job}
            usage = client.tenant("alice")
            assert usage["weight"] == 2.0
            assert usage["charged_shards"] == 1
            assert usage["jobs"] == [alice_job]

            # The event stream narrates the lifecycle in order.
            names = [event["name"] for event in client.events(alice_job)]
            assert names[0] == "job-submitted"
            assert names[-1] == "job-completed"
            assert "shard-claimed" in names and "shard-finished" in names

    def test_cancel_lands_mid_campaign(self, tmp_path):
        with FaseService(
            tmp_path / "svc", workers=1, shard_fn=_slow_stub_shard
        ) as service:
            host, port = service.start()
            client = ServiceClient(f"http://{host}:{port}")
            doomed = client.submit(
                "alice", machines=["corei7_desktop", "turionx2_laptop"],
                pairs=PAIR_NAMES, config=SMALL,
                bands=[[0.0, 3e5], [3e5, 6e5], [6e5, 9e5]],
            )
            kept = client.submit(
                "bob", machines=["corei7_desktop"], pairs=PAIR_NAMES, config=SMALL
            )
            assert client.cancel(doomed)["state"] in ("cancelling", "cancelled")
            status = client.wait(doomed, timeout_s=30.0)
            assert status["state"] == "cancelled"
            assert status["n_completed"] < status["n_shards"]
            assert client.wait(kept, timeout_s=30.0)["state"] == "completed"
            # A cancelled job still serves its partial report, with the
            # cancellations ledgered.
            report = client.result(doomed)
            assert report.n_completed == status["n_completed"]
            assert report.ledger.cancelled
            assert "job-cancel-requested" in [e["name"] for e in client.events(doomed)]


class TestServiceErrors:
    @pytest.fixture()
    def service(self, tmp_path):
        with FaseService(tmp_path / "svc", workers=1, shard_fn=stub_result) as svc:
            svc.start()
            yield svc

    def _client(self, service):
        host, port = service.address
        return ServiceClient(f"http://{host}:{port}")

    def test_unknown_job_is_404(self, service):
        client = self._client(service)
        with pytest.raises(ServiceError, match="404"):
            client.job("job-999999")
        with pytest.raises(ServiceError, match="404"):
            client.cancel("job-999999")

    def test_unknown_path_is_404(self, service):
        client = self._client(service)
        with pytest.raises(ServiceError, match="404"):
            client._json("GET", "/nonsense")

    def test_unknown_config_field_is_400(self, service):
        client = self._client(service)
        with pytest.raises(ServiceError, match="unknown config field"):
            client.submit("alice", machines=["corei7_desktop"],
                          config={"span_hgih": 1e6})

    def test_unknown_machine_is_400(self, service):
        client = self._client(service)
        with pytest.raises(ServiceError, match="400"):
            client.submit("alice", machines=["pdp11"])

    def test_invalid_json_body_is_400(self, service):
        host, port = service.address
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=b"not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_malformed_scalar_fields_are_400(self, service):
        """A JSON body with the wrong scalar shapes ("seed": "abc", a
        non-list "pairs") must answer a 400 JSON error, not drop the
        connection with a server-side traceback."""
        host, port = service.address
        for body in (
            {"tenant": "alice", "machines": ["corei7_desktop"], "seed": "abc"},
            {"tenant": "alice", "machines": ["corei7_desktop"], "pairs": 7},
            {"tenant": "alice", "machines": ["corei7_desktop"],
             "max_shard_retries": "lots"},
        ):
            request = urllib.request.Request(
                f"http://{host}:{port}/jobs", data=json.dumps(body).encode("utf-8"),
                method="POST", headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 400
            assert "error" in json.loads(excinfo.value.read())

    def test_non_object_body_is_400(self, service):
        host, port = service.address
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=b"[1, 2]", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_address_requires_serving(self, tmp_path):
        service = FaseService(tmp_path / "cold")
        with pytest.raises(ServiceError, match="not serving"):
            service.address


class TestConfigFromRequest:
    def test_none_passes_through(self):
        assert config_from_request(None) is None

    def test_partial_fields_fill_defaults(self):
        config = config_from_request({"span_high": 2e6})
        assert config.span_high == 2e6

    def test_harmonics_become_tuple(self):
        config = config_from_request({"harmonics": [1, 2, 3]})
        assert config.harmonics == (1, 2, 3)

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown config field"):
            config_from_request({"frse": 500.0})
