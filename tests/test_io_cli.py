"""Campaign persistence round-trips and the command-line interface."""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.cli import main
from repro.core import CarrierDetector
from repro.errors import CampaignArchiveError, CampaignError
from repro.io import load_campaign, save_campaign
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def small_result():
    machine = corei7_desktop(
        environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="io test")
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


class TestCampaignIO:
    def test_roundtrip_traces(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.machine_name == small_result.machine_name
        assert loaded.activity_label == "LDM/LDL1"
        assert loaded.falts == small_result.falts
        for original, restored in zip(small_result.measurements, loaded.measurements):
            np.testing.assert_array_equal(original.trace.power_mw, restored.trace.power_mw)
            assert restored.activity.falt == original.activity.falt
            assert restored.activity.levels_x == original.activity.levels_x

    def test_roundtrip_config(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.config == small_result.config

    def test_detection_identical_after_reload(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        before = [d.frequency for d in CarrierDetector().detect(small_result)]
        after = [d.frequency for d in CarrierDetector().detect(loaded)]
        assert before == after

    def test_loaded_grid_identical_to_config_grid(self, small_result, tmp_path):
        """Regression: grid params used to be rebuilt from JSON floats
        independently of the config, so the reloaded grid could fail
        ``==`` against ``config.grid()`` and miss grid-keyed caches."""
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.grid == loaded.config.grid()

    def _rewrite_grid_metadata(self, path, out, **overrides):
        import json

        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            arrays = {key: archive[key] for key in archive.files if key != "metadata"}
        metadata["grid"].update(overrides)
        np.savez_compressed(out, metadata=json.dumps(metadata), **arrays)

    def test_float_drifted_grid_repaired_to_config(self, small_result, tmp_path):
        """Sub-bin float drift in the stored grid is repaired on load."""
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        drifted = tmp_path / "drifted.npz"
        grid = small_result.grid
        self._rewrite_grid_metadata(path, drifted, start=grid.start + 1e-7)
        loaded = load_campaign(drifted)
        assert loaded.grid == loaded.config.grid()
        before = [d.frequency for d in CarrierDetector().detect(small_result)]
        after = [d.frequency for d in CarrierDetector().detect(loaded)]
        assert before == after

    def test_materially_different_grid_rejected(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        broken = tmp_path / "broken.npz"
        self._rewrite_grid_metadata(path, broken, resolution=small_result.grid.resolution * 2)
        with pytest.raises(CampaignError):
            load_campaign(broken)

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "not_a_campaign.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(CampaignError):
            load_campaign(path)

    def test_empty_result_rejected(self, small_result, tmp_path):
        from repro.core.campaign import CampaignResult

        empty = CampaignResult(config=small_result.config, machine_name="x", activity_label="y")
        with pytest.raises(CampaignError):
            save_campaign(empty, tmp_path / "empty.npz")


class TestSavePath:
    def test_missing_suffix_appended_and_returned(self, small_result, tmp_path):
        """Regression: save_campaign used to echo the caller's path verbatim
        while numpy appended ``.npz`` on disk, so the returned path did not
        exist."""
        returned = save_campaign(small_result, tmp_path / "campaign")
        assert returned == tmp_path / "campaign.npz"
        assert returned.exists()
        assert not (tmp_path / "campaign").exists()
        load_campaign(returned)

    def test_explicit_suffix_unchanged(self, small_result, tmp_path):
        returned = save_campaign(small_result, tmp_path / "named.npz")
        assert returned == tmp_path / "named.npz"
        assert returned.exists()

    def test_identical_campaigns_save_identical_bytes(self, small_result, tmp_path):
        first = save_campaign(small_result, tmp_path / "a.npz")
        second = save_campaign(small_result, tmp_path / "b.npz")
        assert first.read_bytes() == second.read_bytes()

    def test_no_tmp_file_left_behind(self, small_result, tmp_path):
        save_campaign(small_result, tmp_path / "clean.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["clean.npz"]


class TestArchiveDamage:
    def _drop_member(self, path, out, member):
        import json

        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            arrays = {
                key: archive[key]
                for key in archive.files
                if key not in ("metadata", member)
            }
        np.savez_compressed(out, metadata=json.dumps(metadata), **arrays)

    def test_missing_trace_member_names_path_and_index(self, small_result, tmp_path):
        """Regression: a missing ``trace_{i}`` member used to surface as a
        raw ``KeyError`` from numpy's archive object."""
        path = save_campaign(small_result, tmp_path / "full.npz")
        damaged = tmp_path / "damaged.npz"
        self._drop_member(path, damaged, "trace_2")
        with pytest.raises(CampaignArchiveError) as info:
            load_campaign(damaged)
        message = str(info.value)
        assert "trace_2" in message
        assert str(damaged) in message

    def test_truncated_archive_detected(self, small_result, tmp_path):
        path = save_campaign(small_result, tmp_path / "whole.npz")
        path.write_bytes(path.read_bytes()[:1000])
        with pytest.raises(CampaignArchiveError):
            load_campaign(path)

    def test_archive_error_is_a_campaign_error(self):
        assert issubclass(CampaignArchiveError, CampaignError)

    def test_truncated_archive_recovered_from_journal(self, small_result, tmp_path):
        from repro import DurableCampaign

        machine = corei7_desktop(
            environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        campaign = DurableCampaign(
            machine, small_result.config, journal_dir=tmp_path / "journal",
            rng=np.random.default_rng(1),
        )
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        path = save_campaign(result, tmp_path / "archived.npz")
        path.write_bytes(path.read_bytes()[:1000])
        recovered = load_campaign(path, journal=tmp_path / "journal")
        assert tuple(recovered.falts) == tuple(result.falts)
        for ours, theirs in zip(recovered.measurements, result.measurements):
            np.testing.assert_array_equal(ours.trace.power_mw, theirs.trace.power_mw)

    def test_journal_does_not_mask_an_intact_archive(self, small_result, tmp_path):
        path = save_campaign(small_result, tmp_path / "good.npz")
        loaded = load_campaign(path, journal=tmp_path / "nonexistent-journal")
        assert tuple(loaded.falts) == tuple(small_result.falts)

    def _rewrite_metadata(self, path, out, edit):
        import json

        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            arrays = {key: archive[key] for key in archive.files if key != "metadata"}
        edit(metadata)
        np.savez_compressed(out, metadata=json.dumps(metadata), **arrays)

    def test_torn_per_capture_lists_name_path_and_counts(self, small_result, tmp_path):
        """Regression: a ``flagged`` list shorter than ``falts`` used to
        surface as a raw ``IndexError`` from the flag lookup mid-load."""
        path = save_campaign(small_result, tmp_path / "full.npz")
        torn = tmp_path / "torn.npz"
        n = len(small_result.falts)

        def tear(metadata):
            metadata["flagged"] = metadata["flagged"][:2]
            metadata["quality_reasons"] = metadata["quality_reasons"][:3]

        self._rewrite_metadata(path, torn, tear)
        with pytest.raises(CampaignArchiveError) as info:
            load_campaign(torn)
        message = str(info.value)
        assert str(torn) in message
        assert f"falts={n}" in message
        assert "flagged=2" in message
        assert "quality_reasons=3" in message


class TestDegradedRoundTrip:
    def _degraded(self, synthetic_campaign):
        import dataclasses

        from repro.faults.screening import CaptureQuality

        result = synthetic_campaign(carrier=500e3, flagged=(1, 3))
        for index in (1, 3):
            result.measurements[index] = dataclasses.replace(
                result.measurements[index],
                quality=CaptureQuality(
                    ok=False, reasons=(f"synthetic damage on capture {index}",)
                ),
            )
        return result

    def test_flags_and_reasons_survive_reload(self, synthetic_campaign, tmp_path):
        result = self._degraded(synthetic_campaign)
        loaded = load_campaign(save_campaign(result, tmp_path / "degraded.npz"))
        assert loaded.excluded_indices == [1, 3]
        for index in (1, 3):
            assert loaded.measurements[index].flagged
            assert loaded.measurements[index].quality.reasons == (
                f"synthetic damage on capture {index}",
            )
        assert not loaded.measurements[0].flagged
        assert loaded.measurements[0].quality is None

    def test_robustness_ledger_survives_reload(self, synthetic_campaign, tmp_path):
        """Regression: ``save_campaign`` silently dropped
        ``result.robustness``, so archiving a degraded run lost the fault
        ledger — fault events, retry counts, exclusions, and the
        naive-vs-degraded detection delta."""
        from repro.faults.injectors import FaultEvent
        from repro.faults.robustness import DetectionDelta, RobustnessReport

        result = self._degraded(synthetic_campaign)
        result.robustness = RobustnessReport(
            plan_description="all fault classes, synthetic ledger",
            events=[
                FaultEvent(fault="dropout", index=1, attempt=0, detail="trace zeroed"),
                FaultEvent(fault="timeout", index=3, attempt=1, detail="capture hung"),
            ],
            retries={3: 2},
            excluded={1: ("synthetic damage on capture 1",)},
            dropped=(4,),
            detection_delta=DetectionDelta(
                n_naive=3, n_degraded=2, gained=(), lost=(123000.0,)
            ),
        )
        loaded = load_campaign(save_campaign(result, tmp_path / "ledgered.npz"))
        ledger = loaded.robustness
        assert ledger is not None
        assert ledger.plan_description == "all fault classes, synthetic ledger"
        assert ledger.events == result.robustness.events
        assert ledger.retries == {3: 2}  # int keys, not JSON strings
        assert ledger.excluded == {1: ("synthetic damage on capture 1",)}
        assert ledger.dropped == (4,)
        assert ledger.detection_delta == result.robustness.detection_delta
        assert ledger.to_text() == result.robustness.to_text()

    def test_clean_archive_has_no_ledger(self, synthetic_campaign, tmp_path):
        result = synthetic_campaign(carrier=500e3)
        loaded = load_campaign(save_campaign(result, tmp_path / "clean.npz"))
        assert loaded.robustness is None

    def test_scoring_view_equivalent_after_reload(self, synthetic_campaign, tmp_path):
        result = self._degraded(synthetic_campaign)
        loaded = load_campaign(save_campaign(result, tmp_path / "degraded.npz"))
        before, after = result.scoring_view(), loaded.scoring_view()
        assert tuple(before.falts) == tuple(after.falts)
        for ours, theirs in zip(before.measurements, after.measurements):
            np.testing.assert_array_equal(ours.trace.power_mw, theirs.trace.power_mw)
        assert [d.frequency for d in CarrierDetector().detect(result)] == [
            d.frequency for d in CarrierDetector().detect(loaded)
        ]


class TestCli:
    def test_scan_prints_report(self, capsys):
        code = main(
            [
                "scan", "--machine", "corei7_desktop", "--seed", "0",
                "--span-high", "1e6", "--fres", "100", "--pair", "LDM/LDL1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FASE report for Intel Core i7 desktop" in out
        assert "LDM/LDL1" in out

    def test_localize(self, capsys):
        code = main(["localize", "--machine", "corei7_desktop", "--memory", "315e3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DRAM DIMM regulator" in out

    def test_record_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "rec.npz"
        code = main(
            [
                "record", "--machine", "corei7_desktop", "--span-high", "1e6",
                "--fres", "100", "--pair", "LDM/LDL1", str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        code = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "carriers" in out
        assert "315" in out

    def test_invalid_pair_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scan", "--pair", "FOO/BAR"])
        message = str(excinfo.value)
        assert "invalid activity pair" in message
        assert "'FOO/BAR'" in message

    def test_invalid_pair_unknown_op_names_valid_ops(self):
        # Regression: an unknown op token must exit with a clean message
        # that lists the valid micro-ops, not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["scan", "--pair", "LDM/BOGUS"])
        message = str(excinfo.value)
        assert "invalid activity pair" in message
        assert "'LDM/BOGUS'" in message
        for op in ("LDM", "LDL1", "LDL2", "STM"):
            assert op in message

    def test_invalid_pair_rejected_on_record(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["record", "--pair", "LDM/BOGUS", str(tmp_path / "out.npz")])
        assert "invalid activity pair" in str(excinfo.value)

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliDurable:
    def _record(self, tmp_path, *extra):
        return main(
            [
                "record", "--machine", "corei7_desktop", "--span-high", "1e6",
                "--fres", "100", "--pair", "LDM/LDL1",
                "--checkpoint-dir", str(tmp_path / "journal"),
                *extra,
                str(tmp_path / "rec.npz"),
            ]
        )

    def test_record_checkpoints_then_resumes(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        assert (tmp_path / "journal" / "HEADER.json").is_file()
        first = (tmp_path / "rec.npz").read_bytes()
        capsys.readouterr()
        assert self._record(tmp_path, "--resume") == 0
        out = capsys.readouterr().out
        assert "resumed 5 capture(s)" in out
        assert (tmp_path / "rec.npz").read_bytes() == first

    def test_record_refuses_stale_journal_without_resume(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        with pytest.raises(SystemExit, match="--resume"):
            self._record(tmp_path)

    def test_analyze_recovers_from_journal(self, tmp_path, capsys):
        assert self._record(tmp_path) == 0
        archive = tmp_path / "rec.npz"
        archive.write_bytes(archive.read_bytes()[:1000])
        with pytest.raises(SystemExit):
            main(["analyze", str(archive)])
        capsys.readouterr()
        code = main(["analyze", str(archive), "--journal", str(tmp_path / "journal")])
        out = capsys.readouterr().out
        assert code == 0
        assert "carriers" in out

    def test_scan_accepts_checkpoint_dir(self, tmp_path, capsys):
        code = main(
            [
                "scan", "--machine", "corei7_desktop", "--span-high", "1e6",
                "--fres", "100", "--pair", "LDM/LDL1",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--capture-timeout", "30", "--retry-backoff", "0.01",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FASE report" in out
        assert (tmp_path / "ckpt" / "LDM-LDL1" / "HEADER.json").is_file()


class TestFormatMarkerDamage:
    """Regression: a mangled format marker used to raise plain
    ``CampaignError`` instead of ``CampaignArchiveError``, so
    ``load_campaign``'s journal-recovery fallback never engaged on that
    damage class and a repairable archive died with a version-skew
    message."""

    def _mangle_marker(self, path, out):
        import json

        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            arrays = {key: archive[key] for key in archive.files if key != "metadata"}
        metadata["format"] = "fase-campaign-v\x00garbled"
        np.savez_compressed(out, metadata=json.dumps(metadata), **arrays)

    def test_marker_mismatch_is_archive_damage(self, small_result, tmp_path):
        path = save_campaign(small_result, tmp_path / "good.npz")
        damaged = tmp_path / "damaged.npz"
        self._mangle_marker(path, damaged)
        with pytest.raises(CampaignArchiveError) as info:
            load_campaign(damaged)
        message = str(info.value)
        assert "format marker" in message
        assert "garbled" in message

    def test_marker_mismatch_engages_journal_recovery(self, small_result, tmp_path):
        from repro import DurableCampaign

        machine = corei7_desktop(
            environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        campaign = DurableCampaign(
            machine, small_result.config, journal_dir=tmp_path / "journal",
            rng=np.random.default_rng(1),
        )
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        path = save_campaign(result, tmp_path / "archived.npz")
        damaged = tmp_path / "damaged.npz"
        self._mangle_marker(path, damaged)
        recovered = load_campaign(damaged, journal=tmp_path / "journal")
        assert tuple(recovered.falts) == tuple(result.falts)
        for ours, theirs in zip(recovered.measurements, result.measurements):
            np.testing.assert_array_equal(ours.trace.power_mw, theirs.trace.power_mw)


class TestFailedWriteCleanup:
    """Regression: when the serializer raised mid-write, ``save_campaign``
    left its ``*.npz.tmp`` sibling on disk; enough failed saves to the
    same directory accumulated stale temporaries forever."""

    def test_failed_write_leaves_no_tmp(self, small_result, tmp_path, monkeypatch):
        import repro.io as campaign_io

        def explode(handle, arrays, compress=True):
            handle.write(b"partial bytes")
            raise OSError("synthetic mid-write failure")

        monkeypatch.setattr(campaign_io, "_write_npz_deterministic", explode)
        with pytest.raises(OSError, match="synthetic mid-write"):
            save_campaign(small_result, tmp_path / "doomed.npz")
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_preserves_previous_archive(
        self, small_result, tmp_path, monkeypatch
    ):
        import repro.io as campaign_io

        path = save_campaign(small_result, tmp_path / "keep.npz")
        before = path.read_bytes()

        def explode(handle, arrays, compress=True):
            raise OSError("synthetic mid-write failure")

        monkeypatch.setattr(campaign_io, "_write_npz_deterministic", explode)
        with pytest.raises(OSError, match="synthetic mid-write"):
            save_campaign(small_result, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["keep.npz"]
        assert path.read_bytes() == before


class TestLazyCli:
    def test_record_uncompressed_then_analyze_lazy(self, tmp_path, capsys):
        out = tmp_path / "campaign.npz"
        code = main(
            [
                "record", "--span-high", "1e5", "--fres", "500", "--f-delta", "2.5e3",
                "--uncompressed", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        capsys.readouterr()
        code = main(["analyze", "--lazy", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "carriers" in text

    def test_uncompressed_recording_is_mmapable(self, tmp_path, capsys):
        from repro.io import mmap_npz_member

        out = tmp_path / "campaign.npz"
        main(
            [
                "record", "--span-high", "1e5", "--fres", "500", "--f-delta", "2.5e3",
                "--uncompressed", str(out),
            ]
        )
        capsys.readouterr()
        assert mmap_npz_member(out, "trace_0") is not None

    def test_lazy_analysis_matches_eager(self, small_result, tmp_path):
        path = save_campaign(small_result, tmp_path / "c.npz", compress=False)
        eager = CarrierDetector().detect(load_campaign(path))
        lazy = CarrierDetector().detect(load_campaign(path, lazy=True))
        assert eager == lazy
