"""Campaign persistence round-trips and the command-line interface."""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp
from repro.cli import main
from repro.core import CarrierDetector
from repro.errors import CampaignError
from repro.io import load_campaign, save_campaign
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def small_result():
    machine = corei7_desktop(
        environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="io test")
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


class TestCampaignIO:
    def test_roundtrip_traces(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.machine_name == small_result.machine_name
        assert loaded.activity_label == "LDM/LDL1"
        assert loaded.falts == small_result.falts
        for original, restored in zip(small_result.measurements, loaded.measurements):
            np.testing.assert_array_equal(original.trace.power_mw, restored.trace.power_mw)
            assert restored.activity.falt == original.activity.falt
            assert restored.activity.levels_x == original.activity.levels_x

    def test_roundtrip_config(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.config == small_result.config

    def test_detection_identical_after_reload(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        before = [d.frequency for d in CarrierDetector().detect(small_result)]
        after = [d.frequency for d in CarrierDetector().detect(loaded)]
        assert before == after

    def test_loaded_grid_identical_to_config_grid(self, small_result, tmp_path):
        """Regression: grid params used to be rebuilt from JSON floats
        independently of the config, so the reloaded grid could fail
        ``==`` against ``config.grid()`` and miss grid-keyed caches."""
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        loaded = load_campaign(path)
        assert loaded.grid == loaded.config.grid()

    def _rewrite_grid_metadata(self, path, out, **overrides):
        import json

        with np.load(path, allow_pickle=False) as archive:
            metadata = json.loads(str(archive["metadata"]))
            arrays = {key: archive[key] for key in archive.files if key != "metadata"}
        metadata["grid"].update(overrides)
        np.savez_compressed(out, metadata=json.dumps(metadata), **arrays)

    def test_float_drifted_grid_repaired_to_config(self, small_result, tmp_path):
        """Sub-bin float drift in the stored grid is repaired on load."""
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        drifted = tmp_path / "drifted.npz"
        grid = small_result.grid
        self._rewrite_grid_metadata(path, drifted, start=grid.start + 1e-7)
        loaded = load_campaign(drifted)
        assert loaded.grid == loaded.config.grid()
        before = [d.frequency for d in CarrierDetector().detect(small_result)]
        after = [d.frequency for d in CarrierDetector().detect(loaded)]
        assert before == after

    def test_materially_different_grid_rejected(self, small_result, tmp_path):
        path = tmp_path / "campaign.npz"
        save_campaign(small_result, path)
        broken = tmp_path / "broken.npz"
        self._rewrite_grid_metadata(path, broken, resolution=small_result.grid.resolution * 2)
        with pytest.raises(CampaignError):
            load_campaign(broken)

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "not_a_campaign.npz"
        np.savez(path, data=np.arange(4))
        with pytest.raises(CampaignError):
            load_campaign(path)

    def test_empty_result_rejected(self, small_result, tmp_path):
        from repro.core.campaign import CampaignResult

        empty = CampaignResult(config=small_result.config, machine_name="x", activity_label="y")
        with pytest.raises(CampaignError):
            save_campaign(empty, tmp_path / "empty.npz")


class TestCli:
    def test_scan_prints_report(self, capsys):
        code = main(
            [
                "scan", "--machine", "corei7_desktop", "--seed", "0",
                "--span-high", "1e6", "--fres", "100", "--pair", "LDM/LDL1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FASE report for Intel Core i7 desktop" in out
        assert "LDM/LDL1" in out

    def test_localize(self, capsys):
        code = main(["localize", "--machine", "corei7_desktop", "--memory", "315e3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DRAM DIMM regulator" in out

    def test_record_then_analyze(self, tmp_path, capsys):
        path = tmp_path / "rec.npz"
        code = main(
            [
                "record", "--machine", "corei7_desktop", "--span-high", "1e6",
                "--fres", "100", "--pair", "LDM/LDL1", str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        code = main(["analyze", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "carriers" in out
        assert "315" in out

    def test_invalid_pair_rejected(self):
        with pytest.raises(SystemExit):
            main(["scan", "--pair", "FOO/BAR"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
