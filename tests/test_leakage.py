"""Leakage quantification: SNR and capacity per detected carrier."""

import numpy as np
import pytest

from repro.analysis.leakage import LeakageEstimate, estimate_leakage, rank_leaks


class TestEstimate:
    def test_all_detections_quantifiable(self, i7_ldm_ldl1, i7_detections):
        for detection in i7_detections:
            estimate = estimate_leakage(i7_ldm_ldl1, detection)
            assert np.isfinite(estimate.snr_db)
            assert estimate.capacity_bits_per_second > 0

    def test_sideband_below_carrier(self, i7_ldm_ldl1, i7_detections):
        for detection in i7_detections:
            estimate = estimate_leakage(i7_ldm_ldl1, detection)
            assert estimate.sideband_dbm < estimate.carrier_dbm

    def test_sideband_above_floor_in_resolution_bandwidth(self, i7_ldm_ldl1, i7_detections):
        """A carrier FASE could detect must have its side-band above the
        noise within one resolution bandwidth (the full-band SNR may be
        negative: the channel trades bandwidth for margin)."""
        strongest = max(i7_detections, key=lambda d: d.combined_score)
        estimate = estimate_leakage(i7_ldm_ldl1, strongest)
        fres = i7_ldm_ldl1.grid.resolution
        floor_in_bin = estimate.noise_floor_dbm_per_hz + 10 * np.log10(fres)
        assert estimate.sideband_dbm > floor_in_bin + 6.0

    def test_describe(self, i7_ldm_ldl1, i7_detections):
        estimate = estimate_leakage(i7_ldm_ldl1, i7_detections[0])
        assert "kbit/s" in estimate.describe()


class TestRanking:
    def test_sorted_by_capacity(self, i7_ldm_ldl1, i7_detections):
        estimates = rank_leaks(i7_ldm_ldl1, i7_detections)
        capacities = [e.capacity_bits_per_second for e in estimates]
        assert capacities == sorted(capacities, reverse=True)

    def test_regulator_outranks_refresh_harmonics(self, i7_ldm_ldl1, i7_detections):
        """The strongest regulator side-band leaks more than the weaker
        refresh comb lines — the prioritization the paper's mitigation
        discussion implies."""
        estimates = rank_leaks(i7_ldm_ldl1, i7_detections)
        by_freq = {round(e.carrier_frequency / 1e3): e for e in estimates}
        assert (
            by_freq[315].capacity_bits_per_second
            > by_freq[3072].capacity_bits_per_second
        )


class TestCapacityMath:
    def test_capacity_formula(self):
        estimate = LeakageEstimate(
            carrier_frequency=315e3,
            carrier_dbm=-110.0,
            sideband_dbm=-130.0,
            noise_floor_dbm_per_hz=-170.0,
            modulation_bandwidth_hz=10e3,
        )
        # noise over 10 kHz = -130 dBm -> SNR 0 dB -> capacity = B * log2(2)
        assert estimate.snr_db == pytest.approx(0.0)
        assert estimate.capacity_bits_per_second == pytest.approx(10e3)

    def test_more_bandwidth_not_always_more_capacity(self):
        """Integrated noise grows with B: capacity saturates."""
        narrow = LeakageEstimate(315e3, -110.0, -130.0, -170.0, 1e3)
        wide = LeakageEstimate(315e3, -110.0, -130.0, -170.0, 1e6)
        assert narrow.snr_db > wide.snr_db
