"""RNG plumbing: reproducibility and stream independence."""

import numpy as np

from repro.rng import child_rng, ensure_rng, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.random() == b.random()

    def test_different_seed_different_stream(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestChildRng:
    def test_deterministic_for_same_label(self):
        a = child_rng(make_rng(7), "analyzer")
        b = child_rng(make_rng(7), "analyzer")
        assert a.random() == b.random()

    def test_labels_give_independent_streams(self):
        root = make_rng(7)
        a = child_rng(root, "analyzer")
        b = child_rng(root, "environment")
        assert a.random() != b.random()

    def test_child_does_not_consume_parent(self):
        root = make_rng(7)
        before = make_rng(7).random()
        child_rng(root, "x")
        assert root.random() == before


class TestEnsureRng:
    def test_passthrough(self):
        rng = make_rng(0)
        assert ensure_rng(rng) is rng

    def test_seed_accepted(self):
        assert ensure_rng(5).random() == make_rng(5).random()

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
