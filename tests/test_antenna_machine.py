"""Receiver chain and SystemModel scene composition."""

import pytest

from repro.errors import SystemModelError
from repro.signals.oscillator import CrystalOscillator
from repro.spectrum.analyzer import SpectrumAnalyzer
from repro.spectrum.grid import FrequencyGrid
from repro.system.antenna import REFERENCE_DISTANCE_CM, LoopAntenna, ReceiverChain
from repro.system.emitter import UnmodulatedEmitter
from repro.system.environment import RFEnvironment
from repro.system.machine import SystemModel
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(0.0, 1e6, 100.0)


def make_machine(**kwargs):
    emitters = kwargs.pop(
        "emitters",
        [UnmodulatedEmitter("spur", CrystalOscillator(200e3), -110.0, max_harmonics=2)],
    )
    return SystemModel("test box", emitters, environment=RFEnvironment.quiet(), **kwargs)


class TestReceiverChain:
    def test_reference_distance_unity(self):
        assert ReceiverChain().power_coupling() == pytest.approx(1.0)

    def test_near_field_sixth_power(self):
        chain = ReceiverChain(distance_cm=REFERENCE_DISTANCE_CM)
        assert chain.power_coupling(15.0) == pytest.approx(2.0**6)
        assert chain.power_coupling(60.0) == pytest.approx(0.5**6)

    def test_antenna_gain(self):
        chain = ReceiverChain(antenna=LoopAntenna(gain_db=10.0))
        assert chain.power_coupling() == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(SystemModelError):
            ReceiverChain(distance_cm=0.0)
        with pytest.raises(SystemModelError):
            ReceiverChain().power_coupling(-1.0)


class TestSystemModel:
    def test_scene_sums_emitters_and_environment(self):
        machine = make_machine()
        scene = machine.idle_scene()
        power = scene.mean_bin_power(GRID)
        assert power[GRID.index_of(200e3)] > 0
        assert power.min() > 0  # thermal floor everywhere

    def test_scene_caches_per_grid(self):
        scene = make_machine().idle_scene()
        a = scene.mean_bin_power(GRID)
        b = scene.mean_bin_power(GRID)
        assert a is b

    def test_duplicate_names_rejected(self):
        e1 = UnmodulatedEmitter("x", CrystalOscillator(100e3), -110.0)
        e2 = UnmodulatedEmitter("x", CrystalOscillator(200e3), -110.0)
        with pytest.raises(SystemModelError):
            SystemModel("dup", [e1, e2])

    def test_needs_emitters(self):
        with pytest.raises(SystemModelError):
            SystemModel("empty", [])

    def test_emitter_named(self):
        machine = make_machine()
        assert machine.emitter_named("spur").name == "spur"
        with pytest.raises(SystemModelError):
            machine.emitter_named("nope")

    def test_scene_requires_activity(self):
        with pytest.raises(SystemModelError):
            make_machine().scene("activity")

    def test_modulated_emitters_ground_truth(self):
        machine = make_machine()
        activity = AlternationActivity(falt=10e3, levels_x={"core": 1.0}, levels_y={"core": 0.0})
        assert machine.modulated_emitters(activity) == []

    def test_receiver_scales_emitters_not_environment(self):
        near = SystemModel(
            "near",
            [UnmodulatedEmitter("spur", CrystalOscillator(200e3), -110.0)],
            environment=RFEnvironment.quiet(),
            receiver=ReceiverChain(distance_cm=15.0),
        )
        far = make_machine()
        analyzer = SpectrumAnalyzer(n_averages=None)
        near_trace = analyzer.capture(near.idle_scene(), GRID)
        far_trace = analyzer.capture(far.idle_scene(), GRID)
        idx = GRID.index_of(200e3)
        assert near_trace.power_mw[idx] == pytest.approx(64 * far_trace.power_mw[idx], rel=1e-6)
        # thermal floor (environment) identical
        floor_idx = GRID.index_of(500e3)
        assert near_trace.power_mw[floor_idx] == pytest.approx(far_trace.power_mw[floor_idx])
