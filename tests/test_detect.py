"""Carrier detection: thresholds, movement verification, characterization.

Uses the session-scoped i7 campaign fixtures (real pipeline data) plus
synthetic cases for the movement-verification logic.
"""

import numpy as np
import pytest

from repro.core.detect import CarrierDetector
from repro.errors import DetectionError


class TestI7MemoryPair:
    """Detections for LDM/LDL1 on the Core i7 (the Figure 11 scenario)."""

    def test_dram_regulator_fundamental_found(self, i7_detections):
        assert any(abs(d.frequency - 315e3) < 2e3 for d in i7_detections)

    def test_memory_controller_regulator_found(self, i7_detections):
        assert any(abs(d.frequency - 225e3) < 2e3 for d in i7_detections)

    def test_refresh_comb_found(self, i7_detections):
        for harmonic in (512e3, 1024e3):
            assert any(abs(d.frequency - harmonic) < 2e3 for d in i7_detections), harmonic

    def test_core_regulator_not_reported(self, i7_detections):
        """Fig. 11: the core regulator's humps are visible in the spectrum
        'but were not reported by FASE because they were not significantly
        modulated by the LDM/LDL1 alternation'."""
        assert not any(abs(d.frequency - 333e3) < 2e3 for d in i7_detections)

    def test_carrier_frequencies_accurate(self, i7_detections):
        """The movement fit recovers carriers to within a few bins."""
        for expected in (225e3, 315e3, 512e3):
            match = min(i7_detections, key=lambda d: abs(d.frequency - expected))
            assert abs(match.frequency - expected) < 500.0

    def test_magnitudes_plausible(self, i7_detections):
        for detection in i7_detections:
            assert -150.0 < detection.magnitude_dbm < -90.0

    def test_modulation_depth_in_range(self, i7_detections):
        for detection in i7_detections:
            assert 0.0 <= detection.modulation_depth <= 1.0

    def test_refresh_depth_exceeds_regulator_depth(self, i7_detections):
        """Refresh coherence collapses under load (deep AM); the regulator
        duty cycle only shifts a little (shallow AM)."""
        refresh = min(i7_detections, key=lambda d: abs(d.frequency - 512e3))
        regulator = min(i7_detections, key=lambda d: abs(d.frequency - 315e3))
        assert refresh.modulation_depth > regulator.modulation_depth

    def test_describe_readable(self, i7_detections):
        text = i7_detections[0].describe()
        assert "carrier at" in text and "dBm" in text


class TestI7OnChipPair:
    def test_only_core_regulator(self, i7_onchip_detections):
        """Fig. 13: 'Only one type of carrier was found to be modulated in
        this case - the switching regulator for the CPU cores.'"""
        assert len(i7_onchip_detections) >= 1
        for detection in i7_onchip_detections:
            assert abs(detection.frequency - 333e3) < 3e3 or (
                abs(detection.frequency % 333e3) < 3e3
            )


class TestNullPair:
    def test_no_detections_without_contrast(self, i7, low_band_config, i7_null):
        assert CarrierDetector().detect(i7_null) == []


class TestDetectorKnobs:
    def test_harmonic_evidence_recorded(self, i7_detections):
        strongest = max(i7_detections, key=lambda d: d.combined_score)
        assert 1 in strongest.harmonic_scores or -1 in strongest.harmonic_scores
        for h, score in strongest.harmonic_scores.items():
            assert score > 1.0

    def test_stricter_threshold_fewer_detections(self, i7_ldm_ldl1):
        loose = CarrierDetector(min_combined_z=5.5).detect(i7_ldm_ldl1)
        strict = CarrierDetector(min_combined_z=25.0).detect(i7_ldm_ldl1)
        assert len(strict) <= len(loose)
        strict_freqs = {round(d.frequency) for d in strict}
        loose_freqs = {round(d.frequency) for d in loose}
        assert strict_freqs <= loose_freqs

    def test_validation(self):
        with pytest.raises(DetectionError):
            CarrierDetector(min_combined_z=0.0)
        with pytest.raises(DetectionError):
            CarrierDetector(min_harmonics=0)
        with pytest.raises(DetectionError):
            CarrierDetector(slope_tolerance=0.9)
        with pytest.raises(DetectionError):
            CarrierDetector(smoothing_bins=0)


class TestEvidenceUnits:
    def test_combined_score_is_log_evidence_not_zscore(self, synthetic_campaign):
        """Regression: ``detect`` stored the smoothed combined *z-score* in
        ``combined_score`` while ``describe()`` called it "decades" of
        evidence — the unit of the scorer's fused log10 curve. The stored
        value must be the evidence curve at the candidate bin."""
        result = synthetic_campaign(carrier=500e3)
        detector = CarrierDetector()
        detections = detector.detect(result)
        assert detections
        detection = min(detections, key=lambda d: abs(d.frequency - 500e3))

        scores = detector.scorer.all_scores(result)
        zscores = detector.scorer.harmonic_zscores(result, scores=scores)
        smoothed = detector._smooth(detector.scorer.combined_zscore(result, zscores=zscores))
        evidence = detector.scorer.combined_score(result, scores=scores)
        index = int(np.argmax(smoothed))

        assert detection.combined_score == pytest.approx(float(evidence[index]))
        assert detection.combined_score != pytest.approx(float(smoothed[index]))

    def test_describe_names_the_unit(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        [detection] = CarrierDetector().detect(result)
        assert "decades" in detection.describe()


class TestMovementVerification:
    def test_correct_harmonic_accepted(self, i7_ldm_ldl1):
        detector = CarrierDetector()
        carrier = detector._verify_movement(i7_ldm_ldl1, 315e3, 1)
        assert carrier is not None
        assert carrier == pytest.approx(315e3, abs=500.0)

    def test_wrong_harmonic_rejected(self, i7_ldm_ldl1):
        """A +1-moving side-band must not verify under h = +3: the paper's
        'observed spacing is unique for each harmonic'."""
        detector = CarrierDetector()
        # 315k's +1 side-band would alias to a carrier at 315k - 2*falt_mid
        ghost = 315e3 - 2 * 44.3e3
        assert detector._verify_movement(i7_ldm_ldl1, ghost, 3) is None

    def test_static_tone_rejected(self, i7_ldm_ldl1):
        """A strong static line (zero slope) fails every harmonic."""
        detector = CarrierDetector()
        # the legacy timer crystal at 1.193182 MHz is a strong static tone;
        # pretend it is the +1 side-band of a carrier at 1.193182M - falt
        candidate = 1.193182e6 - 44.3e3
        assert detector._verify_movement(i7_ldm_ldl1, candidate, 1) is None
