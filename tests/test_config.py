"""Campaign configuration: the Figure 10 parameter table."""

import pytest

from repro.core.config import (
    DEFAULT_HARMONICS,
    FaseConfig,
    PAPER_CAMPAIGNS,
    campaign_high_band,
    campaign_low_band,
    campaign_mid_band,
)
from repro.errors import CampaignError


class TestFigure10Parameters:
    def test_low_band_row(self):
        cfg = campaign_low_band()
        assert (cfg.span_low, cfg.span_high) == (0.0, 4e6)
        assert cfg.fres == 50.0
        assert cfg.falt1 == 43.3e3
        assert cfg.f_delta == 0.5e3

    def test_mid_band_row(self):
        cfg = campaign_mid_band()
        assert cfg.span_high == 120e6
        assert cfg.fres == 500.0
        assert cfg.falt1 == 43.3e3
        assert cfg.f_delta == 5e3

    def test_high_band_row(self):
        cfg = campaign_high_band()
        assert cfg.span_high == 1200e6
        assert cfg.fres == 500.0
        assert cfg.falt1 == 1800e3
        assert cfg.f_delta == 100e3

    def test_low_band_point_count(self):
        """'our 0-4MHz measurements used fres = 50Hz, so each recorded
        spectrum has 4MHz/50Hz = 80,000 data points'."""
        assert campaign_low_band().n_points() == 80000

    def test_all_campaigns_registered(self):
        assert set(PAPER_CAMPAIGNS) == {"low", "mid", "high"}


class TestFalts:
    def test_five_alternation_frequencies(self):
        """'we use five' / 'falt1 through falt1 + 4 f_delta'."""
        falts = campaign_low_band().falts()
        assert len(falts) == 5
        assert falts == pytest.approx([43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3])

    def test_harmonics_default(self):
        """'the 1st, 2nd, 3rd, 4th and 5th positive and negative harmonics'."""
        assert set(DEFAULT_HARMONICS) == {1, -1, 2, -2, 3, -3, 4, -4, 5, -5}

    def test_averages_default(self):
        """'Each spectrum was measured 4 times ... and averaged.'"""
        assert campaign_low_band().n_averages == 4


class TestValidation:
    def test_span_ordering(self):
        with pytest.raises(CampaignError):
            FaseConfig(span_low=4e6, span_high=1e6)

    def test_needs_two_alternations(self):
        with pytest.raises(CampaignError):
            FaseConfig(n_alternations=1)

    def test_f_delta_below_falt1(self):
        with pytest.raises(CampaignError):
            FaseConfig(falt1=1e3, f_delta=2e3)

    def test_f_delta_resolvable(self):
        with pytest.raises(CampaignError):
            FaseConfig(fres=500.0, f_delta=500.0)

    def test_zero_harmonic_rejected(self):
        with pytest.raises(CampaignError):
            FaseConfig(harmonics=(0, 1))

    def test_describe_mentions_name(self):
        assert "low band" in campaign_low_band().describe()
