"""FaseReport rendering and the run_fase end-to-end pipeline."""

import numpy as np
import pytest

from repro import FaseConfig, MicroOp, run_fase
from repro.core import MEMORY_REFRESH, MEMORY_SIDE, SWITCHING_REGULATOR, pair_label
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def i7_report():
    machine = corei7_desktop(rng=np.random.default_rng(0))
    return run_fase(machine, rng=np.random.default_rng(1))


class TestPairLabel:
    def test_paper_notation(self):
        assert pair_label(MicroOp.LDM, MicroOp.LDL1) == "LDM/LDL1"


class TestRunFase:
    def test_default_pairs_present(self, i7_report):
        assert set(i7_report.activities) == {"LDM/LDL1", "LDL2/LDL1"}

    def test_memory_pair_finds_three_sets(self, i7_report):
        sets = i7_report.sets_for("LDM/LDL1")
        fundamentals = sorted(s.fundamental for s in sets)
        assert len(sets) == 3
        assert fundamentals[0] == pytest.approx(225e3, rel=0.01)
        assert fundamentals[1] == pytest.approx(315e3, rel=0.01)
        assert fundamentals[2] == pytest.approx(512e3, rel=0.01)

    def test_onchip_pair_finds_core_regulator_only(self, i7_report):
        sets = i7_report.sets_for("LDL2/LDL1")
        assert len(sets) == 1
        assert sets[0].fundamental == pytest.approx(333e3, rel=0.01)

    def test_sources_classified(self, i7_report):
        mechanisms = {s.mechanism for s in i7_report.sources}
        assert SWITCHING_REGULATOR in mechanisms
        assert MEMORY_REFRESH in mechanisms

    def test_carriers_near_lookup(self, i7_report):
        assert i7_report.carriers_near(315e3, label="LDM/LDL1")
        assert not i7_report.carriers_near(999e3, label="LDL2/LDL1")

    def test_to_text_renders_everything(self, i7_report):
        text = i7_report.to_text()
        assert "Intel Core i7 desktop" in text
        assert "LDM/LDL1" in text
        assert "classified sources" in text
        assert "memory refresh" in text

    def test_summary_one_line_per_source(self, i7_report):
        summary = i7_report.summary()
        assert len(summary.splitlines()) == len(i7_report.sources)


class TestCustomRun:
    def test_single_pair_and_custom_config(self):
        machine = corei7_desktop(
            environment=build_environment(1.5e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=1.5e6, fres=100.0, name="narrow")
        report = run_fase(
            machine,
            pairs=((MicroOp.LDM, MicroOp.LDL1),),
            config=config,
            rng=np.random.default_rng(1),
        )
        assert list(report.activities) == ["LDM/LDL1"]
        assert report.sets_for("LDM/LDL1")
        # every source is memory-side: only one (memory) pair was run
        for source in report.sources:
            assert source.fingerprint == MEMORY_SIDE

    def test_reproducible(self):
        machine = corei7_desktop(
            environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="narrow")
        r1 = run_fase(machine, pairs=((MicroOp.LDM, MicroOp.LDL1),), config=config, rng=np.random.default_rng(5))
        r2 = run_fase(machine, pairs=((MicroOp.LDM, MicroOp.LDL1),), config=config, rng=np.random.default_rng(5))
        f1 = [d.frequency for d in r1.detections_for("LDM/LDL1")]
        f2 = [d.frequency for d in r2.detections_for("LDM/LDL1")]
        assert f1 == f2
