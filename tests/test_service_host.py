"""Service tier, worker-host edition: remote hosts and the live tail.

The tentpole contract under test: a :class:`WorkerHost` process drains
shards over plain HTTP from a *hub-only* service (``workers=0``) with
the service staying the single store writer — no shard lost, none run
twice, every completion attributed to the host that ran it. Alongside
it, the ``/events`` endpoint's damage-tolerance guarantees: a torn
final line is withheld (never served as garbage), ``?offset=`` resumes
without replay or loss across reconnects, and ``?follow=1`` live-tails
a job to its terminal state while the fleet is still appending.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
import urllib.request

import pytest

from repro import FaseConfig
from repro.errors import ServiceError
from repro.journalutil import read_complete_lines
from repro.service import ClaimedShard, FaseService, ServiceClient, WorkerHost
from repro.survey.chaos import count_attempts, stub_result, well_behaved_shard
from repro.survey.engine import plan_shards
from repro.survey.shards import shard_spec_from_dict, shard_spec_to_dict

pytestmark = pytest.mark.service

PAIR_NAMES = [["LDM", "LDL1"]]
FOUR_BANDS = [[0.0, 2.5e5], [2.5e5, 5e5], [5e5, 7.5e5], [7.5e5, 1e6]]


def _scratch_config(base):
    """The chaos-stub idiom: ``config.name`` smuggles the scratch dir."""
    return FaseConfig(
        span_low=0.0, span_high=1e6, fres=500.0, falt1=43.3e3, f_delta=2.5e3,
        name=str(base),
    )


def _hub(tmp_path, **kwargs):
    """A hub-only service: every shard must come from a remote host."""
    return FaseService(tmp_path / "svc", workers=0, **kwargs)


def _client(service):
    host, port = service.address
    return ServiceClient(f"http://{host}:{port}")


def _url(service):
    host, port = service.address
    return f"http://{host}:{port}"


def _host(service, name, **kwargs):
    kwargs.setdefault("shard_fn", well_behaved_shard)
    kwargs.setdefault("idle_exit_s", 0.6)
    kwargs.setdefault("poll_interval_s", 0.02)
    kwargs.setdefault("heartbeat_interval_s", 0.1)
    return WorkerHost(_url(service), name=name, **kwargs)


def _slow_shard(spec):
    """Module-level (picklable) stub that keeps the job running a while."""
    time.sleep(0.15)
    return stub_result(spec)


def _exploding_shard(spec):
    raise RuntimeError("synthetic shard explosion")


class TestWorkerHostEndToEnd:
    def test_one_host_drains_a_hub_only_service(self, tmp_path):
        scratches = {}
        for tenant in ("alice", "bob"):
            scratches[tenant] = tmp_path / tenant
            scratches[tenant].mkdir()
        with _hub(tmp_path) as service:
            service.start()
            client = _client(service)
            jobs = {
                tenant: client.submit(
                    tenant, machines=["corei7_desktop", "turionx2_laptop"],
                    pairs=PAIR_NAMES, config=_scratch_config(scratch),
                )
                for tenant, scratch in scratches.items()
            }
            summary = _host(service, "host-a").run()
            assert summary == {"host": "host-a", "completed": 4, "failed": 0}
            for tenant, job_id in jobs.items():
                status = client.job(job_id)
                assert status["state"] == "completed"
                # Every completion is attributed to the remote host.
                assert status["workers"] == {"host-a": 2}
                report = client.result(job_id)
                assert report.n_completed == 2
                names = [event["name"] for event in client.events(job_id)]
                assert names[0] == "job-submitted"
                assert names[-1] == "job-completed"
                assert "shard-claimed" in names and "shard-finished" in names
                # Remote completions carry their wall-clock attribution.
                finished = [
                    event for event in client.events(job_id)
                    if event["name"] == "shard-finished"
                ]
                assert all(e["attrs"]["worker"] == "host-a" for e in finished)
                assert all(e["attrs"]["elapsed_s"] >= 0.0 for e in finished)
                # Shard purity held trivially: exactly one attempt each.
                for shard_id in status["shards"]:
                    assert count_attempts(scratches[tenant], shard_id) == 1
            stats = client.workers()["host-a"]
            assert stats["completed"] == 4
            assert stats["live_claims"] == 0
            assert stats["heartbeat_age_s"] is not None

    def test_two_hosts_share_a_backlog_without_duplication(self, tmp_path):
        config = _scratch_config(tmp_path)
        with _hub(tmp_path) as service:
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=config, bands=FOUR_BANDS,
            )
            hosts = [_host(service, name) for name in ("host-a", "host-b")]
            summaries = []
            threads = [
                threading.Thread(target=lambda h=h: summaries.append(h.run()))
                for h in hosts
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            status = client.job(job_id)
            assert status["state"] == "completed"
            assert sum(s["completed"] for s in summaries) == 4
            assert sum(status["workers"].values()) == 4
            for shard_id in status["shards"]:
                assert count_attempts(tmp_path, shard_id) == 1

    def test_max_shards_bounds_a_host_lifetime(self, tmp_path):
        config = _scratch_config(tmp_path)
        with _hub(tmp_path) as service:
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=config, bands=FOUR_BANDS,
            )
            first = _host(service, "bounded", max_shards=2).run()
            assert first["completed"] == 2
            assert client.job(job_id)["state"] == "running"
            second = _host(service, "finisher").run()
            assert second["completed"] == 2
            assert client.job(job_id)["state"] == "completed"

    def test_host_failures_ride_the_ledger(self, tmp_path):
        config = _scratch_config(tmp_path)
        with _hub(tmp_path) as service:
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=config, max_shard_retries=0,
            )
            summary = _host(service, "doomed", shard_fn=_exploding_shard).run()
            assert summary["failed"] == 1
            status = client.wait(job_id, timeout_s=10.0)
            assert status["state"] == "completed"
            assert list(status["shards"].values()) == ["abandoned"]
            report = client.result(job_id)
            assert report.ledger.abandoned
            events = client.events(job_id)
            failed = [e for e in events if e["name"] == "shard-failed"]
            assert failed and failed[0]["attrs"]["kind"] == "error"
            assert client.workers()["doomed"]["failed"] == 1

    def test_localized_heartbeat_paths_are_job_namespaced(self, tmp_path):
        host = WorkerHost(
            "http://127.0.0.1:1", name="h", workdir=tmp_path, shard_timeout_s=5.0
        )
        spec = plan_shards(machines=["corei7_desktop"], seed=1)[0]
        twins = [
            host._localize(
                ClaimedShard(job_id=job_id, tenant="t", spec=spec, max_shard_retries=2)
            )
            for job_id in ("job-000001", "job-000002")
        ]
        paths = {twin.heartbeat_path for twin in twins}
        assert len(paths) == 2
        assert all(str(tmp_path) in path for path in paths)


class TestClaimReportEndpoints:
    @pytest.fixture()
    def service(self, tmp_path):
        with _hub(tmp_path) as svc:
            svc.start()
            yield svc

    def test_claim_on_an_empty_store_is_none(self, service):
        assert _client(service).claim("idle-host") is None

    def test_claim_travels_as_a_revived_shard_spec(self, service, tmp_path):
        client = _client(service)
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=_scratch_config(tmp_path), seed=7,
        )
        claimed = client.claim("host-a")
        assert claimed.job_id == job_id
        assert claimed.tenant == "alice"
        assert claimed.max_shard_retries == 2
        assert claimed.spec.machine == "corei7_desktop"
        assert claimed.spec.seed == 7
        # Host-local plumbing never crosses the wire.
        assert claimed.spec.heartbeat_path is None
        assert claimed.spec.checkpoint_dir is None
        # Report it back by hand; the job completes.
        client.report_result(
            job_id, claimed.spec.shard_id, stub_result(claimed.spec),
            "host-a", elapsed_s=0.25,
        )
        assert client.job(job_id)["state"] == "completed"

    def test_claim_needs_a_worker_name(self, service):
        client = _client(service)
        for body in ({}, {"worker": ""}, {"worker": 7}):
            with pytest.raises(ServiceError, match="worker name"):
                client._json("POST", "/claims", body)

    def test_reports_for_unknown_jobs_and_shards_are_404(self, service, tmp_path):
        client = _client(service)
        result = stub_result(plan_shards(machines=["corei7_desktop"])[0])
        with pytest.raises(ServiceError, match="404"):
            client.report_result("job-999999", result.shard_id, result, "w")
        with pytest.raises(ServiceError, match="404"):
            client.report_failure("job-999999", "nope", "shard-error", "x", "w")
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=_scratch_config(tmp_path),
        )
        with pytest.raises(ServiceError, match="has no shard"):
            client.report_failure(job_id, "no-such-shard", "shard-error", "x", "w")

    def test_mismatched_result_shard_id_is_400(self, service, tmp_path):
        client = _client(service)
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=_scratch_config(tmp_path),
        )
        claimed = client.claim("host-a")
        result = stub_result(claimed.spec)
        with pytest.raises(ServiceError) as excinfo:
            client.report_result(job_id, "some-other-shard", result, "host-a")
        assert excinfo.value.status == 400
        assert "not the addressed" in str(excinfo.value)

    def test_result_report_needs_a_result_object(self, service, tmp_path):
        client = _client(service)
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=_scratch_config(tmp_path),
        )
        claimed = client.claim("host-a")
        shard = urllib.parse.quote(claimed.spec.shard_id, safe="")
        path = f"/jobs/{job_id}/shards/{shard}/result"
        with pytest.raises(ServiceError, match="'result' object"):
            client._json("POST", path, {"worker": "host-a", "result": "nope"})

    def test_release_gives_the_claim_back(self, service, tmp_path):
        client = _client(service)
        job_id = client.submit(
            "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
            config=_scratch_config(tmp_path),
        )
        claimed = client.claim("host-a")
        shard_id = claimed.spec.shard_id
        assert client.job(job_id)["shards"][shard_id] == "claimed:host-a"
        client.release(job_id, shard_id, "host-a", "draining for maintenance")
        assert client.job(job_id)["shards"][shard_id] == "pending"
        events = client.events(job_id)
        released = [e for e in events if e["name"] == "shard-released"]
        assert released and "maintenance" in released[0]["attrs"]["detail"]

    def test_heartbeat_put_registers_the_worker(self, service):
        client = _client(service)
        assert client.heartbeat("lone-host") == {"worker": "lone-host", "ok": True}
        stats = client.workers()["lone-host"]
        assert stats["live_claims"] == 0
        assert stats["heartbeat_age_s"] is not None


class TestShardSpecWire:
    def test_round_trip_through_json(self, tmp_path):
        spec = plan_shards(
            machines=["corei7_desktop"], config=_scratch_config(tmp_path),
            seed=11, fault_classes=("drift", "glitch"),
        )[0]
        wire = json.loads(json.dumps(shard_spec_to_dict(spec)))
        revived = shard_spec_from_dict(wire)
        assert revived.shard_id == spec.shard_id
        assert revived.machine == spec.machine
        assert revived.pair == spec.pair
        assert revived.band == spec.band
        assert revived.seed == 11
        assert revived.fault_classes == ("drift", "glitch")
        assert revived.resume is spec.resume
        assert revived.config == spec.config
        # Host-local fields are deliberately not wired: each host owns
        # its own scratch plumbing.
        assert revived.heartbeat_path is None
        assert revived.checkpoint_dir is None
        assert revived.telemetry_jsonl is None


class TestReadCompleteLines:
    def test_missing_file_is_empty_at_the_same_offset(self, tmp_path):
        assert read_complete_lines(tmp_path / "nope.jsonl", 5) == ([], 5)

    def test_torn_tail_is_withheld_until_its_newline_lands(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": 2}\n{"torn": ')
        lines, offset = read_complete_lines(path)
        assert lines == [b'{"a": 1}', b'{"b": 2}']
        assert offset == len(b'{"a": 1}\n{"b": 2}\n')
        # Nothing new until the line completes ...
        assert read_complete_lines(path, offset) == ([], offset)
        # ... then exactly the completed line, nothing replayed.
        with open(path, "ab") as handle:
            handle.write(b'3}\n')
        lines, end = read_complete_lines(path, offset)
        assert lines == [b'{"torn": 3}']
        assert end == path.stat().st_size

    def test_a_file_of_only_a_fragment_yields_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_bytes(b'{"no newline yet"')
        assert read_complete_lines(path) == ([], 0)


class TestEventStreaming:
    def test_snapshot_withholds_a_torn_tail_and_resumes(self, tmp_path):
        with FaseService(tmp_path / "svc", workers=1, shard_fn=stub_result) as service:
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=_scratch_config(tmp_path),
            )
            client.wait(job_id, timeout_s=30.0)
            events_path = service.store.events_path(job_id)
            with open(events_path, "ab") as handle:
                handle.write(b'{"name": "torn-probe"')  # an append caught mid-write

            def snapshot(offset):
                with urllib.request.urlopen(
                    f"{_url(service)}/jobs/{job_id}/events?offset={offset}",
                    timeout=10.0,
                ) as response:
                    return (
                        response.read(),
                        int(response.headers["X-Fase-Events-Offset"]),
                    )

            body, resume = snapshot(0)
            assert b"torn-probe" not in body
            names = [json.loads(line)["name"] for line in body.splitlines()]
            assert names[0] == "job-submitted" and names[-1] == "job-completed"
            # The torn line lands; resuming from the header's offset
            # serves exactly the one new event — no replay, no loss.
            with open(events_path, "ab") as handle:
                handle.write(b', "x": 1}\n')
            body, end = snapshot(resume)
            assert json.loads(body) == {"name": "torn-probe", "x": 1}
            assert end == events_path.stat().st_size
            assert snapshot(end) == (b"", end)

    def test_follow_tails_a_live_job_to_its_terminal_state(self, tmp_path):
        with FaseService(tmp_path / "svc", workers=1, shard_fn=_slow_shard) as service:
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=_scratch_config(tmp_path), bands=FOUR_BANDS,
            )
            # Tail while the fleet is still appending events.
            stream = client.stream_events(job_id)
            streamed = []
            while True:
                try:
                    streamed.append(next(stream))
                except StopIteration as stop:
                    terminal = stop.value
                    break
            assert terminal == "completed"
            # The live tail saw the whole story, in order, exactly once:
            # identical to the post-hoc snapshot.
            assert streamed == client.events(job_id)
            names = [event["name"] for event in streamed]
            assert names[0] == "job-submitted"
            assert names[-1] == "job-completed"
            assert names.count("shard-finished") == 4

    def test_follow_resumes_from_offset_without_replay_or_loss(self, tmp_path):
        with FaseService(tmp_path / "svc", workers=1, shard_fn=_slow_shard) as service:
            service.stream_keepalive_s = 0.2
            service.start()
            client = _client(service)
            job_id = client.submit(
                "alice", machines=["corei7_desktop"], pairs=PAIR_NAMES,
                config=_scratch_config(tmp_path), bands=FOUR_BANDS,
            )
            # First connection: read a few envelopes, then drop it —
            # the torn-connection half of the resume contract.
            first, keepalives, resume = [], 0, 0
            with urllib.request.urlopen(
                f"{_url(service)}/jobs/{job_id}/events?follow=1", timeout=10.0
            ) as response:
                for raw in response:
                    envelope = json.loads(raw)
                    resume = envelope["offset"]
                    if "event" in envelope:
                        first.append(envelope["event"])
                    else:
                        keepalives += 1
                    if len(first) >= 2 and keepalives >= 1:
                        break
            # A quiet stretch between events produced keepalives, and
            # they carry the same resume offset contract as events do.
            assert keepalives >= 1
            # Second connection resumes exactly where the first died.
            rest = client.stream_events(job_id, offset=resume)
            while True:
                try:
                    first.append(next(rest))
                except StopIteration as stop:
                    assert stop.value == "completed"
                    break
            assert first == client.events(job_id)

    def test_streaming_an_unknown_job_is_404(self, tmp_path):
        with _hub(tmp_path) as service:
            service.start()
            stream = _client(service).stream_events("job-999999")
            with pytest.raises(ServiceError, match="404"):
                next(stream)
