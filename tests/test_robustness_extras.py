"""Extra robustness checks: noisy FM-FASE, emitter band edges, docs."""

import pathlib

import numpy as np
import pytest

from repro.core.fmfase import FmFaseScanner
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment, turionx2_laptop
from repro.system.domains import CORE
from repro.system.regulator import ConstantOnTimeRegulator
from repro.uarch.activity import AlternationActivity


class TestFmFaseWithEstimationNoise:
    def test_cot_regulator_still_found_with_averaged_captures(self):
        """The FM sweep holds up under realistic 4-average capture noise."""
        machine = turionx2_laptop(
            environment=build_environment(1.2e6, kind="quiet"),
            rng=np.random.default_rng(0),
        )
        scanner = FmFaseScanner(
            FrequencyGrid(150e3, 700e3, 50.0),
            CORE,
            n_averages=4,
            rng=np.random.default_rng(5),
        )
        fm = scanner.fm_carriers(machine)
        regulator = machine.emitter_named("CPU core regulator (constant on-time)")
        assert any(
            abs(d.hump.idle_frequency - regulator.frequency_at(0.0)) < 10e3 for d in fm
        )


class TestCotBandEdges:
    def make_cot(self):
        return ConstantOnTimeRegulator(
            "cot", nominal_frequency=300e3, domain=CORE, fundamental_dbm=-104.0,
            input_volts=19.0, output_volts=1.1, duty_gain=0.02, max_harmonics=8,
        )

    def test_out_of_band_harmonics_skipped(self):
        grid = FrequencyGrid(0.0, 500e3, 100.0)
        activity = AlternationActivity(
            falt=43.3e3, levels_x={CORE: 1.0}, levels_y={CORE: 0.0}
        )
        power = self.make_cot().render(grid, activity)
        # fundamental dwell humps are in-band; 2nd harmonic (>= 600 kHz) is not
        assert power[grid.index_of(300e3)] > 0
        assert power.sum() > 0

    def test_narrow_grid_above_all_harmonics_is_empty(self):
        grid = FrequencyGrid(5e6, 6e6, 100.0)
        activity = AlternationActivity(
            falt=43.3e3, levels_x={CORE: 1.0}, levels_y={CORE: 0.0}
        )
        power = self.make_cot().render(grid, activity)
        assert power.sum() == pytest.approx(0.0, abs=1e-30)


class TestDocumentationArtifacts:
    ROOT = pathlib.Path(__file__).resolve().parents[1]

    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/API.md"]
    )
    def test_doc_exists_and_substantial(self, name):
        path = self.ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000, name

    def test_design_lists_every_figure(self):
        text = (self.ROOT / "DESIGN.md").read_text()
        for figure in range(1, 18):
            assert f"Fig. {figure}" in text, figure

    def test_experiments_tracks_every_figure(self):
        text = (self.ROOT / "EXPERIMENTS.md").read_text()
        for figure in range(1, 18):
            assert f"Fig. {figure}" in text or f"Figs. {figure}" in text, figure

    def test_every_example_mentioned_in_readme(self):
        readme = (self.ROOT / "README.md").read_text()
        for example in (self.ROOT / "examples").glob("*.py"):
            assert example.name in readme, example.name
