"""The paper's mid-band campaign (0-120 MHz, 240,000 bins) at full scale.

Above ~5 MHz the i7 model has only *unmodulated* signals (the
spread-spectrum CPU base clock at 100 MHz, the 25 MHz Ethernet crystal and
its harmonics) — so the mid-band campaign is a scale-sized rejection test:
everything FASE reports must lie in the low-frequency region where the
modulated emitters live, and the strong high-frequency signals must all be
rejected.
"""

import numpy as np
import pytest

from repro import MeasurementCampaign, MicroOp
from repro.core import CarrierDetector
from repro.core.config import campaign_mid_band
from repro.system import build_environment, corei7_desktop


@pytest.fixture(scope="module")
def midband_result():
    machine = corei7_desktop(
        environment=build_environment(120e6, rng=np.random.default_rng(0)),
        rng=np.random.default_rng(0),
    )
    campaign = MeasurementCampaign(machine, campaign_mid_band(), rng=np.random.default_rng(1))
    return machine, campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


class TestMidBandCampaign:
    def test_grid_is_paper_sized(self, midband_result):
        _, result = midband_result
        assert result.grid.n_bins == 240000

    def test_cpu_clock_pedestal_present_but_rejected(self, midband_result):
        """The 100 MHz spread-spectrum base clock is visible in the trace
        yet — being unmodulated by processor activity — never reported."""
        machine, result = midband_result
        trace = result.measurements[0].trace
        grid = trace.grid
        lo, hi = grid.slice_indices(99.4e6, 100.1e6)
        horn = float(trace.power_mw[lo:hi].max())
        floor_lo, floor_hi = grid.slice_indices(90e6, 95e6)
        floor = float(np.median(trace.power_mw[floor_lo:floor_hi]))
        assert horn > 4 * floor  # it's really there (edge horns stand out)
        detections = CarrierDetector().detect(result)
        for detection in detections:
            assert not (99e6 < detection.frequency < 101e6)

    def test_all_detections_are_modulated_emitters(self, midband_result):
        machine, result = midband_result
        detections = CarrierDetector().detect(result)
        assert detections  # the low-frequency sets are still found
        activity = result.measurements[0].activity
        truth = []
        for emitter in machine.modulated_emitters(activity):
            truth.extend(emitter.carrier_frequencies(up_to=120e6))
        truth = np.array(truth)
        for detection in detections:
            assert np.min(np.abs(truth - detection.frequency)) < 2e3, detection.frequency

    def test_ethernet_crystal_rejected(self, midband_result):
        machine, result = midband_result
        detections = CarrierDetector().detect(result)
        for harmonic in machine.emitter_named("Ethernet PHY crystal").carrier_frequencies(
            up_to=120e6
        ):
            for detection in detections:
                assert abs(detection.frequency - harmonic) > 2e3
