"""The vectorized scoring engine: cache semantics, reference agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.campaign import MeasurementCampaign
from repro.core.config import FaseConfig
from repro.core.detect import CarrierDetector
from repro.core.heuristic import HeuristicScorer
from repro.core.scoring import ShiftedPowerCache, shift_valid_mask, shift_valid_range
from repro.errors import DetectionError
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace
from repro.system import build_environment, corei7_desktop
from repro.uarch.isa import MicroOp

GRID = FrequencyGrid(0.0, 1e6, 100.0)
FALTS = [43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3]


def random_traces(n=5, seed=0, grid=GRID):
    rng = np.random.default_rng(seed)
    return [
        SpectrumTrace(grid, rng.gamma(4.0, 0.25, grid.n_bins) * 1e-14)
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def seeded_result():
    machine = corei7_desktop(
        environment=build_environment(1e6, kind="quiet"), rng=np.random.default_rng(0)
    )
    config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="scoring test")
    campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
    return campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")


class TestShiftedPowerCache:
    @given(shift=st.floats(min_value=-9.5e5, max_value=9.5e5))
    @settings(max_examples=60, deadline=None)
    def test_matches_direct_interp(self, shift):
        """Property: the batched uniform-grid gather agrees with the naive
        per-trace np.interp for any shift, inside and outside the span."""
        traces = random_traces()
        cache = ShiftedPowerCache(traces)
        matrix = cache.shifted_all(shift)
        for j, trace in enumerate(traces):
            np.testing.assert_allclose(
                matrix[j], trace.shifted_power(shift), rtol=1e-9, atol=1e-30
            )

    def test_exact_bin_multiple_shift_is_exact(self):
        traces = random_traces()
        cache = ShiftedPowerCache(traces)
        shift = 7 * GRID.resolution
        np.testing.assert_array_equal(
            cache.shifted(0, shift)[:-7], traces[0].power_mw[7:]
        )

    def test_repeated_shift_hits_cache(self):
        cache = ShiftedPowerCache(random_traces())
        first = cache.shifted_all(12345.6)
        second = cache.shifted_all(12345.6)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_rows_match_shifted_all(self):
        cache = ShiftedPowerCache(random_traces())
        np.testing.assert_array_equal(cache.shifted(2, 500.0), cache.shifted_all(500.0)[2])

    def test_lru_eviction(self):
        cache = ShiftedPowerCache(random_traces(), max_entries=2)
        cache.shifted_all(1.0)
        cache.shifted_all(2.0)
        cache.shifted_all(3.0)  # evicts shift=1.0
        assert cache.misses == 3
        cache.shifted_all(2.0)
        assert cache.hits == 1
        cache.shifted_all(1.0)
        assert cache.misses == 4

    def test_returned_matrix_read_only(self):
        cache = ShiftedPowerCache(random_traces())
        with pytest.raises(ValueError):
            cache.shifted_all(100.0)[0, 0] = 1.0

    def test_valid_mask_matches_module_helper(self):
        cache = ShiftedPowerCache(random_traces())
        for shift in (-43.3e3, 0.0, 43.3e3, 866 * GRID.resolution):
            np.testing.assert_array_equal(
                cache.valid_mask(shift), shift_valid_mask(GRID, shift)
            )

    @given(shift=st.floats(min_value=-1.5e6, max_value=1.5e6))
    @settings(max_examples=60, deadline=None)
    def test_valid_range_is_the_mask_support(self, shift):
        """Property: the [lo, hi) range and the boolean mask describe the
        same contiguous run of in-span bins."""
        lo, hi = shift_valid_range(GRID, shift)
        mask = shift_valid_mask(GRID, shift)
        assert mask[lo:hi].all()
        assert not mask[:lo].any() and not mask[hi:].any()

    def test_valid_range_memoized(self):
        cache = ShiftedPowerCache(random_traces())
        assert cache.valid_range(43.3e3) == shift_valid_range(GRID, 43.3e3)
        assert cache.valid_range(43.3e3) is cache.valid_range(43.3e3)

    def test_needs_two_traces(self):
        with pytest.raises(DetectionError):
            ShiftedPowerCache(random_traces(n=1))

    def test_mixed_grids_rejected(self):
        other = FrequencyGrid(0.0, 1e6, 200.0)
        bad = random_traces(n=1, grid=other)
        with pytest.raises(DetectionError):
            ShiftedPowerCache(random_traces(n=2) + bad)


class TestVectorizedAgainstReference:
    @given(seed=st.integers(min_value=0, max_value=2**16), harmonic=st.sampled_from([1, -1, 2, -3, 5]))
    @settings(max_examples=25, deadline=None)
    def test_subscores_agree(self, seed, harmonic):
        """Property: vectorized and naive sub-scores agree bin for bin on
        random spectra, for positive and negative harmonics."""
        traces = random_traces(seed=seed)
        reference = HeuristicScorer(vectorized=False)
        fast = HeuristicScorer()
        np.testing.assert_allclose(
            fast.subscores(traces, FALTS, harmonic),
            reference.subscores(traces, FALTS, harmonic),
            rtol=1e-9,
        )

    def test_all_scores_agree_on_seeded_campaign(self, seeded_result):
        reference = HeuristicScorer(vectorized=False).all_scores(seeded_result)
        fast = HeuristicScorer().all_scores(seeded_result)
        assert set(reference) == set(fast)
        for harmonic in reference:
            np.testing.assert_allclose(fast[harmonic], reference[harmonic], rtol=1e-9)

    def test_detections_agree_on_seeded_campaign(self, seeded_result):
        reference = CarrierDetector(scorer=HeuristicScorer(vectorized=False))
        fast = CarrierDetector()
        ref_detections = reference.detect(seeded_result)
        fast_detections = fast.detect(seeded_result)
        assert [d.frequency for d in ref_detections] == [
            d.frequency for d in fast_detections
        ]
        for ref_d, fast_d in zip(ref_detections, fast_detections):
            assert set(ref_d.harmonic_scores) == set(fast_d.harmonic_scores)
            for h, score in ref_d.harmonic_scores.items():
                assert fast_d.harmonic_scores[h] == pytest.approx(score, rel=1e-9)

    def test_shared_cache_reused_across_scoring_calls(self, seeded_result):
        scorer = HeuristicScorer()
        cache = scorer.cache_for(seeded_result)
        scorer.all_scores(seeded_result, cache=cache)
        misses = cache.misses
        assert misses > 0
        scorer.all_scores(seeded_result, cache=cache)
        assert cache.misses == misses  # second pass runs entirely from cache
        assert cache.hits >= misses

    def test_reference_scorer_builds_no_cache(self):
        assert HeuristicScorer(vectorized=False).cache_for(random_traces()) is None
