"""Rejection validation: the paper's manual cross-check, automated."""


from repro.analysis.validation import strong_rejected_signals, validate_rejections


class TestStrongRejectedSignals:
    def test_finds_strong_unreported_peaks(self, i7, i7_ldm_ldl1, i7_detections):
        rejected = strong_rejected_signals(i7_ldm_ldl1, i7_detections)
        assert len(rejected) > 0  # stations, spurs, core regulator...
        weakest_reported = min(d.magnitude_dbm for d in i7_detections)
        for frequency, magnitude in rejected:
            assert magnitude >= weakest_reported

    def test_reported_carriers_excluded(self, i7_ldm_ldl1, i7_detections):
        rejected = strong_rejected_signals(i7_ldm_ldl1, i7_detections)
        for frequency, _ in rejected:
            for detection in i7_detections:
                assert abs(frequency - detection.frequency) > 400.0


class TestValidateRejections:
    def test_no_missed_carriers(self, i7, i7_ldm_ldl1, i7_detections):
        """The paper's validation: every rejected signal at least as strong
        as the reported ones either does not respond to activity at all, or
        is an unmarked harmonic of a set FASE already reported."""
        checks = validate_rejections(i7, i7_ldm_ldl1, i7_detections)
        assert len(checks) > 0
        missed = [c for c in checks if c.is_missed_carrier]
        assert missed == [], [c.describe() for c in missed]

    def test_most_rejections_are_environment(self, i7, i7_ldm_ldl1, i7_detections):
        """The bulk of the strong rejected peaks are stations and spurs."""
        checks = validate_rejections(i7, i7_ldm_ldl1, i7_detections)
        environmental = [c for c in checks if c.is_truly_unmodulated]
        assert len(environmental) > len(checks) / 2

    def test_core_regulator_among_rejected(self, i7, i7_ldm_ldl1, i7_detections):
        """Fig. 11's prominent-but-unreported core regulator humps show up
        as correctly rejected signals."""
        checks = validate_rejections(i7, i7_ldm_ldl1, i7_detections)
        near_core_reg = [c for c in checks if abs(c.frequency - 333e3) < 3e3]
        assert near_core_reg
        assert all(c.is_truly_unmodulated for c in near_core_reg)
        assert near_core_reg[0].nearest_emitter == "CPU core regulator"

    def test_describe(self, i7, i7_ldm_ldl1, i7_detections):
        checks = validate_rejections(i7, i7_ldm_ldl1, i7_detections)
        assert "correctly rejected" in checks[0].describe()
