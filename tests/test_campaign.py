"""Measurement campaigns: calibration per falt, capture bundling."""

import numpy as np
import pytest

from repro.core.campaign import CampaignResult, MeasurementCampaign
from repro.core.config import FaseConfig
from repro.errors import CampaignError
from repro.uarch.activity import AlternationActivity
from repro.uarch.isa import MicroOp


@pytest.fixture(scope="module")
def machine(machine_factory):
    return machine_factory(span=1e6, kind="quiet")


@pytest.fixture(scope="module")
def small_config():
    return FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="small")


class TestRun:
    def test_five_measurements_with_achieved_falts(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1)
        assert len(result.measurements) == 5
        for measurement, target in zip(result.measurements, small_config.falts()):
            assert measurement.falt == pytest.approx(target, rel=0.02)

    def test_labels(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        assert result.activity_label == "LDM/LDL1"
        assert result.machine_name == machine.name
        assert "LDM/LDL1" in result.traces[0].label

    def test_traces_share_grid(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDL2, MicroOp.LDL1)
        grid = result.grid
        for trace in result.traces:
            assert trace.grid == grid

    def test_deterministic_given_seed(self, machine, small_config):
        r1 = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(9)).run(
            MicroOp.LDM, MicroOp.LDL1
        )
        r2 = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(9)).run(
            MicroOp.LDM, MicroOp.LDL1
        )
        np.testing.assert_array_equal(r1.traces[0].power_mw, r2.traces[0].power_mw)


class TestRunWithActivities:
    def test_custom_activities(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        activities = [
            AlternationActivity(falt=f, levels_x={"dram_power": 0.9}, levels_y={"dram_power": 0.1})
            for f in (20e3, 21e3, 22e3)
        ]
        result = campaign.run_with_activities(activities)
        assert result.falts == [20e3, 21e3, 22e3]

    def test_too_few_activities(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        with pytest.raises(CampaignError):
            campaign.run_with_activities([AlternationActivity.constant({})])


class TestSteadyCapture:
    def test_capture_steady(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        trace = campaign.capture_steady({"dram_power": 1.0}, label="full load")
        assert trace.label == "full load"
        assert trace.grid == small_config.grid()


class TestValidation:
    def test_result_validates_falt_separation(self, machine, small_config):
        campaign = MeasurementCampaign(machine, small_config, rng=np.random.default_rng(1))
        with pytest.raises(CampaignError):
            campaign.run_with_activities(
                [
                    AlternationActivity(falt=20e3, levels_x={}, levels_y={}),
                    AlternationActivity(falt=20e3 + 150.0, levels_x={}, levels_y={}),
                ]
            )

    def test_empty_result_grid_raises(self, small_config):
        result = CampaignResult(config=small_config, machine_name="x", activity_label="y")
        with pytest.raises(CampaignError):
            _ = result.grid


class TestParallelCapture:
    def test_parallel_run_deterministic_and_valid(self, machine):
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, n_workers=3, name="par")
        first = MeasurementCampaign(machine, config, rng=np.random.default_rng(1)).run(
            MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1"
        )
        second = MeasurementCampaign(machine, config, rng=np.random.default_rng(1)).run(
            MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1"
        )
        assert len(first.measurements) == config.n_alternations
        for a, b in zip(first.measurements, second.measurements):
            assert a.falt == b.falt
            np.testing.assert_array_equal(a.trace.power_mw, b.trace.power_mw)

    def test_worker_count_does_not_change_results(self, machine):
        """Captures are keyed by measurement index, not thread schedule."""
        results = []
        for n_workers in (2, 5):
            config = FaseConfig(
                span_low=0.0, span_high=1e6, fres=100.0, n_workers=n_workers, name="par"
            )
            campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
            results.append(campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1"))
        for a, b in zip(results[0].measurements, results[1].measurements):
            np.testing.assert_array_equal(a.trace.power_mw, b.trace.power_mw)

    def test_measurement_order_follows_falts(self, machine):
        config = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, n_workers=4, name="par")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        for measurement, target in zip(result.measurements, config.falts()):
            assert measurement.falt == pytest.approx(target, rel=0.02)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(CampaignError):
            FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, n_workers=0)
