"""Peak detection: Palshikar spike functions and the cluster detector."""

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.spectrum.peaks import detect_peaks, palshikar_s1, palshikar_s2


def series_with_spikes(n=1000, spikes=((200, 10.0), (600, 7.0)), noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    values = noise * rng.standard_normal(n)
    for index, height in spikes:
        values[index] += height
    return values


class TestPalshikarS1:
    def test_spike_scores_high(self):
        values = series_with_spikes()
        scores = palshikar_s1(values, window=3)
        assert scores[200] > 5.0
        assert abs(scores[400]) < 1.0

    def test_flat_series_zero(self):
        scores = palshikar_s1(np.ones(100), window=3)
        np.testing.assert_allclose(scores, 0.0)

    def test_window_validation(self):
        with pytest.raises(DetectionError):
            palshikar_s1(np.ones(10), window=0)
        with pytest.raises(DetectionError):
            palshikar_s1(np.ones(5), window=3)

    def test_2d_rejected(self):
        with pytest.raises(DetectionError):
            palshikar_s1(np.ones((5, 5)), window=1)


class TestPalshikarS2:
    def test_mean_version_smaller_than_max_version(self):
        values = series_with_spikes()
        s1 = palshikar_s1(values, window=5)
        s2 = palshikar_s2(values, window=5)
        assert s2[200] <= s1[200] + 1e-12

    def test_spike_detected(self):
        values = series_with_spikes()
        assert palshikar_s2(values, window=3)[200] > 3.0


class TestDetectPeaks:
    def test_finds_both_spikes(self):
        values = series_with_spikes()
        peaks = detect_peaks(values, window=3, n_sigma=6.0)
        indices = {p.index for p in peaks}
        assert 200 in indices
        assert 600 in indices

    def test_min_value_filters(self):
        values = series_with_spikes()
        peaks = detect_peaks(values, window=3, n_sigma=6.0, min_value=8.0)
        indices = {p.index for p in peaks}
        assert 200 in indices
        assert 600 not in indices

    def test_min_separation_keeps_strongest(self):
        values = series_with_spikes(spikes=((300, 10.0), (304, 8.0)))
        peaks = detect_peaks(values, window=3, n_sigma=6.0, min_separation=10)
        assert [p.index for p in peaks] == [300]

    def test_no_peaks_in_noise(self):
        rng = np.random.default_rng(1)
        peaks = detect_peaks(rng.standard_normal(2000) * 0.1, window=3, n_sigma=10.0)
        assert peaks == []

    def test_results_sorted_by_index(self):
        values = series_with_spikes(spikes=((700, 9.0), (100, 9.0)))
        peaks = detect_peaks(values, window=3, n_sigma=6.0)
        indices = [p.index for p in peaks]
        assert indices == sorted(indices)
