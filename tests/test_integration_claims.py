"""End-to-end integration tests of the paper's headline claims."""

import numpy as np
import pytest

from repro import FaseConfig, MeasurementCampaign, MicroOp, run_fase
from repro.core import CarrierDetector, group_harmonics
from repro.system import build_environment, corei7_desktop
from repro.system.environment import AMRadioStation


class TestRadioRejection:
    """'Our experiments cover the entire AM radio spectrum ... FASE
    successfully rejected all such signals.'"""

    def _true_carrier_frequencies(self, i7, i7_ldm_ldl1):
        activity = i7_ldm_ldl1.measurements[0].activity
        truth = []
        for emitter in i7.modulated_emitters(activity):
            truth.extend(emitter.carrier_frequencies(up_to=4e6))
        return np.array(truth)

    def test_no_detection_caused_by_stations(self, i7, i7_ldm_ldl1, i7_detections):
        """Detections may *coincide* with an AM channel (630 kHz is both a
        regulator harmonic and a broadcast channel) but every detection at
        a station frequency must also be a true modulated-emitter harmonic
        — no detection is caused by a station alone."""
        stations = [
            source.frequency
            for source in i7.environment.sources
            if isinstance(source, AMRadioStation)
        ]
        assert len(stations) > 20  # the band really is populated
        truth = self._true_carrier_frequencies(i7, i7_ldm_ldl1)
        for detection in i7_detections:
            near_station = any(abs(detection.frequency - s) < 1e3 for s in stations)
            if near_station:
                assert np.min(np.abs(truth - detection.frequency)) < 1e3

    def test_spurious_tones_rejected(self, i7, i7_ldm_ldl1, i7_detections):
        from repro.system.environment import SpuriousToneField

        fields = [s for s in i7.environment.sources if isinstance(s, SpuriousToneField)]
        assert fields
        truth = self._true_carrier_frequencies(i7, i7_ldm_ldl1)
        for detection in i7_detections:
            near_spur = any(
                np.min(np.abs(field.frequencies - detection.frequency)) < 500.0
                for field in fields
            )
            if near_spur:
                assert np.min(np.abs(truth - detection.frequency)) < 1e3

    def test_every_detection_is_a_real_modulated_emitter(self, i7, i7_ldm_ldl1, i7_detections):
        """Zero false positives: every reported carrier lies on a harmonic
        of an emitter the activity actually modulates."""
        activity = i7_ldm_ldl1.measurements[0].activity
        truth = []
        for emitter in i7.modulated_emitters(activity):
            truth.extend(emitter.carrier_frequencies(up_to=4e6))
        truth = np.array(truth)
        for detection in i7_detections:
            assert np.min(np.abs(truth - detection.frequency)) < 1e3, detection.frequency

    def test_every_null_run_is_empty(self, i7_null):
        assert CarrierDetector().detect(i7_null) == []


class TestTurionClaims:
    @pytest.fixture(scope="class")
    def turion_report(self, turion):
        config = FaseConfig(span_low=0.0, span_high=1.2e6, fres=50.0, name="turion window")
        return run_fase(turion, config=config, rng=np.random.default_rng(3))

    def test_refresh_found_at_132k_multiple(self, turion_report):
        """Figure 17: refresh at 132 kHz 'instead of 128 kHz'."""
        detections = turion_report.detections_for("LDM/LDL1")
        assert any(
            abs(d.frequency - k * 132e3) < 1.5e3 for d in detections for k in (1, 2, 3)
        )

    def test_memory_regulator_found(self, turion_report):
        assert turion_report.carriers_near(250e3, label="LDM/LDL1")

    def test_unidentified_carriers_found(self, turion_report):
        assert turion_report.carriers_near(406e3, label="LDM/LDL1")
        assert turion_report.carriers_near(472e3, label="LDM/LDL1")

    def test_fm_regulator_not_reported(self, turion_report, turion):
        """'The AMD system was the only system confirmed to have an
        activity-modulated carrier that is not reported by FASE ...
        frequency-modulated ... Therefore FASE correctly does not report
        it.'"""
        core_reg = turion.emitter_named("CPU core regulator (constant on-time)")
        onchip = turion_report.detections_for("LDL2/LDL1")
        assert onchip == []
        # Under LDM/LDL1 the core draws equal power in both halves, so the
        # regulator parks one dwell hump at the mid-load frequency; FASE
        # must not claim it either.
        f_parked = core_reg.frequency_at(0.5)
        for detection in turion_report.detections_for("LDM/LDL1"):
            assert abs(detection.frequency - f_parked) > 8e3


class TestDramClockClaims:
    def test_detected_as_two_edge_carriers(self, i7_hf, dram_clock_window_config):
        """Figure 16: 'it reports the clock as two separate carriers at the
        edges of the spread out clock signal.'"""
        campaign = MeasurementCampaign(
            i7_hf, dram_clock_window_config, rng=np.random.default_rng(1)
        )
        result = campaign.run(MicroOp.LDM, MicroOp.LDL1, label="LDM/LDL1")
        detections = CarrierDetector(min_separation_hz=150e3).detect(result)
        assert len(detections) == 2
        low, high = sorted(d.frequency for d in detections)
        assert low == pytest.approx(332e6, abs=100e3)
        assert high == pytest.approx(333e6, abs=100e3)


class TestConsistencyAcrossPairs:
    """'We tried other X/Y activity pairs ... applying FASE to them exposes
    the same carriers.'"""

    @pytest.mark.parametrize("op_x", [MicroOp.LDM, MicroOp.STM])
    def test_memory_pairs_expose_same_sets(self, op_x):
        machine = corei7_desktop(
            environment=build_environment(1.5e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=1.5e6, fres=100.0, name="narrow")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(op_x, MicroOp.LDL1)
        sets = group_harmonics(CarrierDetector().detect(result))
        fundamentals = sorted(round(s.fundamental / 1e3) for s in sets)
        assert 225 in fundamentals
        assert 315 in fundamentals
        assert 512 in fundamentals

    @pytest.mark.parametrize("op_x", [MicroOp.LDL2, MicroOp.DIV])
    def test_onchip_pairs_expose_core_regulator(self, op_x):
        machine = corei7_desktop(
            environment=build_environment(1.5e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        config = FaseConfig(span_low=0.0, span_high=1.5e6, fres=100.0, name="narrow")
        campaign = MeasurementCampaign(machine, config, rng=np.random.default_rng(1))
        result = campaign.run(op_x, MicroOp.LDL1)
        detections = CarrierDetector().detect(result)
        assert any(abs(d.frequency - 333e3) < 3e3 for d in detections)
        # and nothing memory-side
        for d in detections:
            for memory_fc in (225e3, 315e3, 512e3):
                assert abs(d.frequency - memory_fc) > 3e3
