"""Unit conversions: dBm <-> mW, voltages, frequency formatting/parsing."""

import math

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.units import (
    db_ratio,
    dbm_to_milliwatts,
    dbm_to_volts,
    format_frequency,
    milliwatts_to_dbm,
    parse_frequency,
    volts_to_dbm,
)


class TestDbmConversions:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_milliwatts(0.0) == pytest.approx(1.0)

    def test_minus_thirty_dbm(self):
        assert dbm_to_milliwatts(-30.0) == pytest.approx(1e-3)

    def test_roundtrip_scalar(self):
        assert milliwatts_to_dbm(dbm_to_milliwatts(-117.3)) == pytest.approx(-117.3)

    def test_roundtrip_array(self):
        dbm = np.linspace(-160.0, 10.0, 50)
        np.testing.assert_allclose(milliwatts_to_dbm(dbm_to_milliwatts(dbm)), dbm)

    def test_zero_power_clamps_not_inf(self):
        value = milliwatts_to_dbm(0.0)
        assert np.isfinite(value)
        assert value <= -300.0

    def test_negative_power_rejected(self):
        with pytest.raises(UnitsError):
            milliwatts_to_dbm(-1.0)

    def test_array_shape_preserved(self):
        out = dbm_to_milliwatts(np.zeros((3, 4)))
        assert out.shape == (3, 4)


class TestDbRatio:
    def test_equal_powers_zero_db(self):
        assert db_ratio(2.0, 2.0) == pytest.approx(0.0)

    def test_ten_times_is_ten_db(self):
        assert db_ratio(10.0, 1.0) == pytest.approx(10.0)

    def test_zero_denominator_rejected(self):
        with pytest.raises(UnitsError):
            db_ratio(1.0, 0.0)

    def test_negative_numerator_rejected(self):
        with pytest.raises(UnitsError):
            db_ratio(-1.0, 1.0)


class TestVoltageConversions:
    def test_one_milliwatt_in_fifty_ohms(self):
        # P = V^2/R -> V = sqrt(1e-3 * 50) ~ 0.2236 V rms
        assert float(dbm_to_volts(0.0)) == pytest.approx(math.sqrt(0.05))

    def test_roundtrip(self):
        assert float(volts_to_dbm(dbm_to_volts(-42.0))) == pytest.approx(-42.0)

    def test_bad_impedance(self):
        with pytest.raises(UnitsError):
            volts_to_dbm(1.0, impedance_ohms=0.0)
        with pytest.raises(UnitsError):
            dbm_to_volts(0.0, impedance_ohms=-50.0)


class TestFrequencyFormatting:
    @pytest.mark.parametrize(
        "hertz,expected",
        [
            (315e3, "315 kHz"),
            (1.0235e6, "1.024 MHz"),
            (333e6, "333 MHz"),
            (50.0, "50 Hz"),
            (2.4e9, "2.4 GHz"),
        ],
    )
    def test_format(self, hertz, expected):
        assert format_frequency(hertz) == expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("43.3 kHz", 43.3e3),
            ("1.0235MHz", 1.0235e6),
            ("315 khz", 315e3),
            ("50 Hz", 50.0),
            ("  2.5 GHz ", 2.5e9),
            ("1234", 1234.0),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_frequency(text) == pytest.approx(expected)

    def test_parse_roundtrips_format(self):
        for hertz in (128e3, 315e3, 1.024e6, 333e6):
            assert parse_frequency(format_frequency(hertz)) == pytest.approx(hertz, rel=1e-3)

    def test_parse_garbage_rejected(self):
        with pytest.raises(UnitsError):
            parse_frequency("not a frequency")
        with pytest.raises(UnitsError):
            parse_frequency("xx kHz")
