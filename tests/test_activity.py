"""AlternationActivity: the software-to-emitter interface."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.system.domains import CORE, DRAM_POWER
from repro.uarch.activity import AlternationActivity


def make_activity(**kwargs):
    defaults = dict(
        falt=43.3e3,
        levels_x={CORE: 0.5, DRAM_POWER: 0.9},
        levels_y={CORE: 0.5, DRAM_POWER: 0.1},
    )
    defaults.update(kwargs)
    return AlternationActivity(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(SystemModelError):
            make_activity(falt=0.0)
        with pytest.raises(SystemModelError):
            make_activity(duty_cycle=0.0)
        with pytest.raises(SystemModelError):
            make_activity(jitter_fraction=-0.1)
        with pytest.raises(SystemModelError):
            make_activity(levels_x={CORE: 1.5})

    def test_constant_classmethod(self):
        activity = AlternationActivity.constant({CORE: 0.7})
        assert activity.level_x(CORE) == activity.level_y(CORE) == 0.7
        assert not activity.is_modulating(CORE)


class TestAccessors:
    def test_missing_domain_is_zero(self):
        activity = make_activity()
        assert activity.level_x("nonexistent") == 0.0

    def test_swing(self):
        activity = make_activity()
        assert activity.swing(DRAM_POWER) == pytest.approx(0.8)
        assert activity.swing(CORE) == pytest.approx(0.0)

    def test_is_modulating(self):
        activity = make_activity()
        assert activity.is_modulating(DRAM_POWER)
        assert not activity.is_modulating(CORE)

    def test_mean_level_with_duty(self):
        activity = make_activity(duty_cycle=0.25)
        assert activity.mean_level(DRAM_POWER) == pytest.approx(0.25 * 0.9 + 0.75 * 0.1)

    def test_with_falt(self):
        moved = make_activity().with_falt(50e3)
        assert moved.falt == 50e3
        assert moved.swing(DRAM_POWER) == pytest.approx(0.8)

    def test_describe_names_modulating_domains(self):
        text = make_activity(label="LDM/LDL1").describe()
        assert "LDM/LDL1" in text
        assert DRAM_POWER in text
        assert CORE not in text.split("modulating domains:")[1]


class TestSampling:
    def test_sampled_level_alternates(self):
        activity = make_activity()
        wave = activity.sampled_level(DRAM_POWER, 0.001, 10e6, rng=np.random.default_rng(0))
        assert set(np.unique(wave)) <= {0.1, 0.9}
        assert wave.mean() == pytest.approx(0.5, abs=0.1)

    def test_sampled_constant_domain_flat(self):
        activity = make_activity()
        wave = activity.sampled_level(CORE, 0.0005, 10e6, rng=np.random.default_rng(0))
        assert np.ptp(wave) == 0.0
