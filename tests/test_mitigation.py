"""Mitigations: refresh randomization, access pacing, regulator dithering."""

import numpy as np
import pytest

from repro import FaseConfig
from repro.errors import SystemModelError
from repro.mitigation import (
    AccessPacedRefreshEmitter,
    DitheredRegulator,
    RandomizedRefreshEmitter,
    evaluate_mitigation,
    replace_emitter,
)
from repro.spectrum.grid import FrequencyGrid
from repro.system import build_environment, corei7_desktop
from repro.system.domains import DRAM_POWER, MEMORY_UTILIZATION
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(0.0, 2e6, 50.0)


def ldm_like_activity(falt=43.3e3):
    return AlternationActivity(
        falt=falt,
        levels_x={MEMORY_UTILIZATION: 0.9, DRAM_POWER: 0.85},
        levels_y={MEMORY_UTILIZATION: 0.0, DRAM_POWER: 0.05},
    )


def make_refresh(cls=RandomizedRefreshEmitter, **kwargs):
    defaults = dict(fundamental_dbm=-118.0, coherence_loss=2.0, n_ranks=4, rank_imbalance=0.15)
    defaults.update(kwargs)
    return cls("memory refresh", **defaults)


class TestRandomizedRefresh:
    def test_full_randomization_kills_coherent_lines(self):
        stock = make_refresh(randomization=0.0)
        randomized = make_refresh(randomization=1.0)
        activity = ldm_like_activity()
        stock_power = stock.render(GRID, activity)
        mitigated_power = randomized.render(GRID, activity)
        line = GRID.index_of(512e3)
        assert mitigated_power[line] < 0.01 * stock_power[line]

    def test_total_energy_not_destroyed(self):
        """The energy is spread, not removed (it reappears as a pedestal)."""
        stock = make_refresh(randomization=0.0)
        randomized = make_refresh(randomization=1.0)
        activity = ldm_like_activity()
        stock_total = stock.render(GRID, activity).sum()
        mitigated_total = randomized.render(GRID, activity).sum()
        assert mitigated_total > 0.3 * stock_total

    def test_partial_randomization_partial_retention(self):
        emitter = make_refresh(randomization=0.25)
        assert emitter.coherence_retention(1) == pytest.approx(np.sinc(0.25))
        # at r=0.25 the 4th harmonic (512 kHz comb line) is fully nulled
        assert emitter.coherence_retention(4) == pytest.approx(0.0, abs=1e-12)

    def test_not_modulated_when_fully_randomized(self):
        assert not make_refresh(randomization=1.0).is_modulated_by(ldm_like_activity())
        assert make_refresh(randomization=0.0).is_modulated_by(ldm_like_activity())

    def test_validation(self):
        with pytest.raises(SystemModelError):
            make_refresh(randomization=1.5)


class TestAccessPacing:
    def test_pacing_shrinks_modulation_not_carrier(self):
        """The carrier survives (idle coherence unchanged) but the X/Y
        coherence contrast — the leak — shrinks."""
        stock = make_refresh(cls=AccessPacedRefreshEmitter, pacing=0.0)
        paced = make_refresh(cls=AccessPacedRefreshEmitter, pacing=0.95)
        # idle carrier identical
        assert paced.coherence(0.0) == stock.coherence(0.0) == 1.0
        # loaded coherence much closer to idle under pacing
        assert paced.coherence(0.9) > 0.9
        assert stock.coherence(0.9) < 0.2

    def test_sidebands_shrink(self):
        stock = make_refresh(cls=AccessPacedRefreshEmitter, pacing=0.0)
        paced = make_refresh(cls=AccessPacedRefreshEmitter, pacing=0.95)
        activity = ldm_like_activity()
        sb = GRID.index_of(512e3 + 43.3e3)
        stock_sb = stock.render(GRID, activity)[sb]
        paced_sb = paced.render(GRID, activity)[sb]
        assert paced_sb < 0.05 * stock_sb

    def test_validation(self):
        with pytest.raises(SystemModelError):
            make_refresh(cls=AccessPacedRefreshEmitter, pacing=-0.1)


class TestDitheredRegulator:
    def make_pair(self):
        common = dict(
            switching_frequency=315e3,
            domain=DRAM_POWER,
            fundamental_dbm=-103.0,
            input_volts=12.0,
            output_volts=1.35,
            duty_gain=0.12,
            fractional_sigma=4e-4,
        )
        from repro.system.regulator import SwitchingRegulator

        return (
            SwitchingRegulator("DRAM DIMM regulator", **common),
            DitheredRegulator("DRAM DIMM regulator", dither_width=30e3, **common),
        )

    def test_peak_line_reduced(self):
        stock, dithered = self.make_pair()
        activity = ldm_like_activity()
        stock_peak = stock.render(GRID, activity).max()
        dithered_peak = dithered.render(GRID, activity).max()
        assert dithered_peak < 0.1 * stock_peak

    def test_total_power_preserved(self):
        """The paper's caveat: spreading helps 'only in an averaged sense'."""
        stock, dithered = self.make_pair()
        activity = ldm_like_activity()
        stock_total = stock.render(GRID, activity).sum()
        dithered_total = dithered.render(GRID, activity).sum()
        assert dithered_total == pytest.approx(stock_total, rel=0.05)

    def test_validation(self):
        from repro.system.regulator import SwitchingRegulator

        with pytest.raises(SystemModelError):
            DitheredRegulator(
                "x", switching_frequency=315e3, domain=DRAM_POWER,
                fundamental_dbm=-103.0, dither_width=0.0,
            )


class TestEvaluateMitigation:
    @pytest.fixture(scope="class")
    def outcome(self):
        machine = corei7_desktop(
            environment=build_environment(2e6, kind="quiet"), rng=np.random.default_rng(0)
        )
        mitigated = replace_emitter(
            machine,
            "memory refresh",
            make_refresh(randomization=1.0, position=(22.0, 8.0)),
        )
        config = FaseConfig(span_low=0.0, span_high=2e6, fres=100.0, name="mitigation eval")
        return evaluate_mitigation(
            machine, mitigated, 512e3, config, rng=np.random.default_rng(7)
        )

    def test_refresh_mitigation_removes_detection(self, outcome):
        assert outcome.detected_before
        assert not outcome.detected_after

    def test_sideband_reduced_substantially(self, outcome):
        assert outcome.sideband_reduction_db > 6.0

    def test_describe(self, outcome):
        assert "FASE detects: True -> False" in outcome.describe()

    def test_replace_emitter_requires_match(self):
        machine = corei7_desktop(rng=np.random.default_rng(0))
        with pytest.raises(SystemModelError):
            replace_emitter(machine, "nonexistent", make_refresh())
