"""The Eq. 1/2 heuristic on synthetic, precisely controlled spectra.

The synthetic campaigns come from the shared ``synthetic_campaign``
factory fixture in ``conftest.py`` (hand-placed side-bands that move with
falt, static interferer tones, flat Gamma noise).
"""

import numpy as np
import pytest

from repro.core.heuristic import HeuristicScorer
from repro.errors import DetectionError


class TestEquationTwo:
    def test_score_near_one_on_flat_noise(self, synthetic_campaign):
        """Off-carrier the product hovers near 1 (slightly below: the ratio
        of Gamma fluctuations has a median under its mean)."""
        result = synthetic_campaign()
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        assert 0.3 < np.median(score) < 1.5
        # and no large spurious spikes on pure noise
        assert score.max() < 1e4

    def test_moving_sideband_scores_high_at_carrier(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        idx = synthetic_campaign.grid.index_of(500e3)
        assert score[idx] > 100.0

    def test_score_reported_at_carrier_not_sideband(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        sideband_idx = synthetic_campaign.grid.index_of(500e3 + synthetic_campaign.falts[0])
        assert score[sideband_idx] < 10.0

    def test_static_tone_normalizes_away(self, synthetic_campaign):
        """Radio stations and unmodulated combs cancel to ~1 (the paper's
        central robustness claim)."""
        result = synthetic_campaign(static_tone=700e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        # everywhere the tone could contribute: f = 700k - falt_i
        for falt in synthetic_campaign.falts:
            idx = synthetic_campaign.grid.index_of(700e3 - falt)
            assert score[idx] < 20.0

    def test_negative_harmonic_mirror(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, -1)
        assert score[synthetic_campaign.grid.index_of(500e3)] > 100.0

    def test_wrong_harmonic_does_not_fire(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 3)
        assert score[synthetic_campaign.grid.index_of(500e3)] < 10.0

    def test_obscured_sidebands_weaken_but_do_not_kill(self, synthetic_campaign):
        """'If only some side-band signals are present ... the remaining
        sub-scores will still increase the overall score significantly.'"""
        grid = synthetic_campaign.grid
        result = synthetic_campaign(carrier=500e3)
        # bury two of the five right side-bands under strong *static* tones
        # (present in every capture, like a real interferer)
        for i in (1, 3):
            f = 500e3 + result.falts[i]
            for measurement in result.measurements:
                trace = measurement.trace
                trace.power_mw[grid.index_of(f) - 2 : grid.index_of(f) + 3] = 1e-9
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        full = synthetic_campaign(carrier=500e3)
        full_score = HeuristicScorer().harmonic_score(full.traces, full.falts, 1)
        idx = grid.index_of(500e3)
        assert score[idx] > 5.0
        assert score[idx] < full_score[idx]

    def test_subscores_shape(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        subs = HeuristicScorer().subscores(result.traces, result.falts, 1)
        assert subs.shape == (5, synthetic_campaign.grid.n_bins)

    def test_edge_bins_forced_to_one(self, synthetic_campaign):
        result = synthetic_campaign()
        subs = HeuristicScorer().subscores(result.traces, result.falts, 5)
        # the last 5*falt worth of bins cannot be evaluated for h=+5
        assert np.all(subs[:, -100:] == 1.0)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_exact_multiple_shift_keeps_last_inspan_bin(self, vectorized):
        """Regression: when h*falt is an exact multiple of fres, float
        rounding in the strict span bounds used to flip the last in-span
        bin out of the validity mask, silently zeroing its evidence."""
        from repro.spectrum.grid import FrequencyGrid
        from repro.spectrum.trace import SpectrumTrace

        grid = FrequencyGrid(0.0, 300.0, 0.3)  # 1000 bins, inexact centers
        falts = [866 * 0.3, 886 * 0.3]  # shifts are exact fres multiples
        floor = np.full(grid.n_bins, 1e-15)
        strong = floor.copy()
        strong[-1] = 1e-9  # seen only through the shifted read of bin 133
        traces = [SpectrumTrace(grid, strong), SpectrumTrace(grid, floor)]
        subs = HeuristicScorer(vectorized=vectorized).subscores(traces, falts, 1)
        last_inspan = grid.n_bins - 1 - 866  # bin 133: shifted onto the last bin
        assert subs[0, last_inspan] > 1e3
        # and every bin past the span edge stays masked to 1
        assert np.all(subs[0, last_inspan + 1 :] == 1.0)


class TestZScores:
    def test_noise_zscore_standardized(self, synthetic_campaign):
        result = synthetic_campaign()
        scorer = HeuristicScorer()
        z = scorer.zscore(scorer.harmonic_score(result.traces, result.falts, 1))
        assert abs(np.median(z)) < 0.1
        assert np.percentile(z, 84) - np.percentile(z, 16) == pytest.approx(2.0, rel=0.4)

    def test_combined_rss_keeps_single_strong_harmonic(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        scorer = HeuristicScorer()
        combined = scorer.combined_zscore(result)
        idx = synthetic_campaign.grid.index_of(500e3)
        zs = scorer.harmonic_zscores(result)
        assert combined[idx] >= max(z[idx] for z in zs.values()) - 1e-9

    def test_all_scores_keyed_by_config_harmonics(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        scores = HeuristicScorer().all_scores(result)
        assert set(scores) == set(synthetic_campaign.config.harmonics)


class TestLeaveOneOut:
    def test_scores_excluding_matches_manual_subset(self, synthetic_campaign):
        """Holding out index k must equal scoring a campaign that never
        measured it: no sub-score row, renormalized Eq. 2 denominators."""
        result = synthetic_campaign(carrier=500e3)
        scorer = HeuristicScorer()
        held_out = scorer.scores_excluding(result, 2)
        manual = synthetic_campaign(carrier=500e3)
        del manual.measurements[2]
        expected = scorer.all_scores(manual)
        for h in expected:
            np.testing.assert_allclose(held_out[h], expected[h])

    def test_scores_excluding_reuses_full_cache(self, synthetic_campaign):
        result = synthetic_campaign(carrier=500e3)
        scorer = HeuristicScorer()
        cache = scorer.cache_for(result)
        with_cache = scorer.scores_excluding(result, 0, cache=cache)
        without = scorer.scores_excluding(result, 0)
        for h in without:
            np.testing.assert_allclose(with_cache[h], without[h])

    def test_scores_excluding_bad_index(self, synthetic_campaign):
        result = synthetic_campaign()
        with pytest.raises(DetectionError):
            HeuristicScorer().scores_excluding(result, 5)

    def test_flagged_measurements_excluded_from_all_scores(self, synthetic_campaign):
        """A degraded result scores through its leave-one-out view."""
        flagged = synthetic_campaign(carrier=500e3, flagged=(1,))
        manual = synthetic_campaign(carrier=500e3)
        del manual.measurements[1]
        scorer = HeuristicScorer()
        degraded = scorer.all_scores(flagged)
        expected = scorer.all_scores(manual)
        for h in expected:
            np.testing.assert_allclose(degraded[h], expected[h])


class TestValidation:
    def test_zero_harmonic_rejected(self, synthetic_campaign):
        result = synthetic_campaign()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces, result.falts, 0)

    def test_mismatched_lengths(self, synthetic_campaign):
        result = synthetic_campaign()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces, result.falts[:3], 1)

    def test_needs_two_spectra(self, synthetic_campaign):
        result = synthetic_campaign()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces[:1], result.falts[:1], 1)

    def test_bad_floor(self):
        with pytest.raises(DetectionError):
            HeuristicScorer(power_floor=0.0)
