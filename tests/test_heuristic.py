"""The Eq. 1/2 heuristic on synthetic, precisely controlled spectra."""

import numpy as np
import pytest

from repro.core.campaign import CampaignMeasurement, CampaignResult
from repro.core.config import FaseConfig
from repro.core.heuristic import HeuristicScorer
from repro.errors import DetectionError
from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace
from repro.uarch.activity import AlternationActivity

GRID = FrequencyGrid(0.0, 1e6, 100.0)
FALTS = [43.3e3, 43.8e3, 44.3e3, 44.8e3, 45.3e3]
CONFIG = FaseConfig(span_low=0.0, span_high=1e6, fres=100.0, name="synthetic")


def synthetic_result(carrier=None, sideband_level=1e-11, static_tone=None, floor=1e-15, seed=0):
    """Build a campaign result from hand-placed spectral features.

    ``carrier``: frequency whose side-bands move with each trace's falt.
    ``static_tone``: frequency of a strong line that does NOT move.
    """
    rng = np.random.default_rng(seed)
    measurements = []
    for falt in FALTS:
        power = np.full(GRID.n_bins, floor) * rng.gamma(4.0, 0.25, GRID.n_bins)
        if carrier is not None:
            power[GRID.index_of(carrier)] += 100 * sideband_level
            for sign in (+1, -1):
                f = carrier + sign * falt
                if GRID.contains(f):
                    power[GRID.index_of(f)] += sideband_level
        if static_tone is not None:
            power[GRID.index_of(static_tone)] += 1e-9
        trace = SpectrumTrace(GRID, power)
        activity = AlternationActivity(falt=falt, levels_x={}, levels_y={})
        measurements.append(CampaignMeasurement(falt=falt, activity=activity, trace=trace))
    return CampaignResult(
        config=CONFIG, machine_name="synthetic", activity_label="synthetic",
        measurements=measurements,
    )


class TestEquationTwo:
    def test_score_near_one_on_flat_noise(self):
        """Off-carrier the product hovers near 1 (slightly below: the ratio
        of Gamma fluctuations has a median under its mean)."""
        result = synthetic_result()
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        assert 0.3 < np.median(score) < 1.5
        # and no large spurious spikes on pure noise
        assert score.max() < 1e4

    def test_moving_sideband_scores_high_at_carrier(self):
        result = synthetic_result(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        idx = GRID.index_of(500e3)
        assert score[idx] > 100.0

    def test_score_reported_at_carrier_not_sideband(self):
        result = synthetic_result(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        sideband_idx = GRID.index_of(500e3 + FALTS[0])
        assert score[sideband_idx] < 10.0

    def test_static_tone_normalizes_away(self):
        """Radio stations and unmodulated combs cancel to ~1 (the paper's
        central robustness claim)."""
        result = synthetic_result(static_tone=700e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        # everywhere the tone could contribute: f = 700k - falt_i
        for falt in FALTS:
            idx = GRID.index_of(700e3 - falt)
            assert score[idx] < 20.0

    def test_negative_harmonic_mirror(self):
        result = synthetic_result(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, -1)
        assert score[GRID.index_of(500e3)] > 100.0

    def test_wrong_harmonic_does_not_fire(self):
        result = synthetic_result(carrier=500e3)
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 3)
        assert score[GRID.index_of(500e3)] < 10.0

    def test_obscured_sidebands_weaken_but_do_not_kill(self):
        """'If only some side-band signals are present ... the remaining
        sub-scores will still increase the overall score significantly.'"""
        result = synthetic_result(carrier=500e3)
        # bury two of the five right side-bands under strong *static* tones
        # (present in every capture, like a real interferer)
        for i in (1, 3):
            f = 500e3 + result.falts[i]
            for measurement in result.measurements:
                trace = measurement.trace
                trace.power_mw[GRID.index_of(f) - 2 : GRID.index_of(f) + 3] = 1e-9
        score = HeuristicScorer().harmonic_score(result.traces, result.falts, 1)
        full = synthetic_result(carrier=500e3)
        full_score = HeuristicScorer().harmonic_score(full.traces, full.falts, 1)
        idx = GRID.index_of(500e3)
        assert score[idx] > 5.0
        assert score[idx] < full_score[idx]

    def test_subscores_shape(self):
        result = synthetic_result(carrier=500e3)
        subs = HeuristicScorer().subscores(result.traces, result.falts, 1)
        assert subs.shape == (5, GRID.n_bins)

    def test_edge_bins_forced_to_one(self):
        result = synthetic_result()
        subs = HeuristicScorer().subscores(result.traces, result.falts, 5)
        # the last 5*falt worth of bins cannot be evaluated for h=+5
        assert np.all(subs[:, -100:] == 1.0)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_exact_multiple_shift_keeps_last_inspan_bin(self, vectorized):
        """Regression: when h*falt is an exact multiple of fres, float
        rounding in the strict span bounds used to flip the last in-span
        bin out of the validity mask, silently zeroing its evidence."""
        grid = FrequencyGrid(0.0, 300.0, 0.3)  # 1000 bins, inexact centers
        falts = [866 * 0.3, 886 * 0.3]  # shifts are exact fres multiples
        floor = np.full(grid.n_bins, 1e-15)
        strong = floor.copy()
        strong[-1] = 1e-9  # seen only through the shifted read of bin 133
        traces = [SpectrumTrace(grid, strong), SpectrumTrace(grid, floor)]
        subs = HeuristicScorer(vectorized=vectorized).subscores(traces, falts, 1)
        last_inspan = grid.n_bins - 1 - 866  # bin 133: shifted onto the last bin
        assert subs[0, last_inspan] > 1e3
        # and every bin past the span edge stays masked to 1
        assert np.all(subs[0, last_inspan + 1 :] == 1.0)


class TestZScores:
    def test_noise_zscore_standardized(self):
        result = synthetic_result()
        scorer = HeuristicScorer()
        z = scorer.zscore(scorer.harmonic_score(result.traces, result.falts, 1))
        assert abs(np.median(z)) < 0.1
        assert np.percentile(z, 84) - np.percentile(z, 16) == pytest.approx(2.0, rel=0.4)

    def test_combined_rss_keeps_single_strong_harmonic(self):
        result = synthetic_result(carrier=500e3)
        scorer = HeuristicScorer()
        combined = scorer.combined_zscore(result)
        idx = GRID.index_of(500e3)
        zs = scorer.harmonic_zscores(result)
        assert combined[idx] >= max(z[idx] for z in zs.values()) - 1e-9

    def test_all_scores_keyed_by_config_harmonics(self):
        result = synthetic_result(carrier=500e3)
        scores = HeuristicScorer().all_scores(result)
        assert set(scores) == set(CONFIG.harmonics)


class TestValidation:
    def test_zero_harmonic_rejected(self):
        result = synthetic_result()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces, result.falts, 0)

    def test_mismatched_lengths(self):
        result = synthetic_result()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces, result.falts[:3], 1)

    def test_needs_two_spectra(self):
        result = synthetic_result()
        with pytest.raises(DetectionError):
            HeuristicScorer().harmonic_score(result.traces[:1], result.falts[:1], 1)

    def test_bad_floor(self):
        with pytest.raises(DetectionError):
            HeuristicScorer(power_floor=0.0)
