"""Harmonic-set grouping (Section 4's 'group the identified carriers')."""

import pytest

from repro.core.detect import CarrierDetection
from repro.core.harmonics import group_harmonics
from repro.errors import DetectionError


def det(frequency, dbm=-120.0, score=10.0, depth=0.3):
    return CarrierDetection(
        frequency=frequency,
        combined_score=score,
        harmonic_scores={1: 10.0},
        magnitude_dbm=dbm,
        modulation_depth=depth,
    )


class TestGrouping:
    def test_single_comb(self):
        sets = group_harmonics([det(315e3), det(630e3), det(945e3)])
        assert len(sets) == 1
        assert sets[0].fundamental == pytest.approx(315e3, rel=1e-3)
        assert sets[0].orders == [1, 2, 3]

    def test_two_combs_not_conflated_by_common_divisor(self):
        """315k and 225k share a 45k divisor; candidates restricted to
        detected carriers keep the sets apart."""
        detections = [det(f) for f in (225e3, 450e3, 675e3, 315e3, 630e3, 945e3)]
        sets = group_harmonics(detections)
        fundamentals = sorted(s.fundamental for s in sets)
        assert len(sets) == 2
        assert fundamentals[0] == pytest.approx(225e3, rel=1e-3)
        assert fundamentals[1] == pytest.approx(315e3, rel=1e-3)

    def test_refresh_comb_grouped_at_strong_line(self):
        """The far-field refresh comb (512 kHz multiples) groups at 512 kHz
        even though the physical period is 128 kHz (only visible near-field)."""
        detections = [det(f) for f in (512e3, 1024e3, 1536e3, 2048e3)]
        sets = group_harmonics(detections)
        assert len(sets) == 1
        assert sets[0].fundamental == pytest.approx(512e3, rel=1e-3)

    def test_singleton_allowed(self):
        sets = group_harmonics([det(333e3)])
        assert len(sets) == 1
        assert sets[0].orders == [1]

    def test_tolerates_measurement_error(self):
        sets = group_harmonics([det(315.0e3), det(630.2e3)], rel_tol=0.01)
        assert len(sets) == 1

    def test_fundamental_refined_by_least_squares(self):
        # members at 315.1k and 629.9k: best f0 from weighted fit
        sets = group_harmonics([det(315.1e3), det(629.9e3)])
        assert sets[0].fundamental == pytest.approx((315.1e3 + 2 * 629.9e3) / 5.0, rel=1e-6)

    def test_empty_input(self):
        assert group_harmonics([]) == []

    def test_sets_sorted_by_fundamental(self):
        sets = group_harmonics([det(f) for f in (900e3, 300e3, 600e3, 500e3)])
        fundamentals = [s.fundamental for s in sets]
        assert fundamentals == sorted(fundamentals)

    def test_validation(self):
        with pytest.raises(DetectionError):
            group_harmonics([det(1e3)], rel_tol=0.9)
        with pytest.raises(DetectionError):
            group_harmonics([det(1e3)], max_order=0)


class TestHarmonicSetProperties:
    def test_strongest_and_evidence(self):
        sets = group_harmonics([det(315e3, dbm=-110.0, score=20.0), det(630e3, dbm=-114.0, score=10.0)])
        assert sets[0].strongest_dbm == -110.0
        assert sets[0].total_evidence == 30.0

    def test_max_modulation_depth(self):
        sets = group_harmonics([det(512e3, depth=0.5), det(1024e3, depth=0.54)])
        assert sets[0].max_modulation_depth == 0.54

    def test_describe(self):
        sets = group_harmonics([det(315e3)])
        assert "315" in sets[0].describe()


class TestI7Grouping:
    def test_i7_sets_match_figure_11(self, i7_detections):
        sets = group_harmonics(i7_detections)
        fundamentals = sorted(s.fundamental for s in sets)
        expected = (225e3, 315e3, 512e3)
        assert len(sets) == 3
        for fundamental, target in zip(fundamentals, expected):
            assert fundamental == pytest.approx(target, rel=0.01)

    def test_refresh_set_has_many_similar_harmonics(self, i7_detections):
        """'its harmonics are all of similar strength' (< 3% duty cycle)."""
        sets = group_harmonics(i7_detections)
        refresh = min(sets, key=lambda s: abs(s.fundamental - 512e3))
        assert len(refresh.members) >= 4
        magnitudes = [m.magnitude_dbm for _, m in refresh.members]
        assert max(magnitudes) - min(magnitudes) < 15.0
