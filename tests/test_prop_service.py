"""Properties of the fair-share scheduler, driven by Hypothesis.

The scheduler's contract is that every decision is a pure function of
the store snapshot — which the store derives entirely from journaled
transitions. That purity is what makes the properties here checkable on
an in-memory simulation of the claim/complete loop (no filesystem, no
fleet): the simulator feeds :meth:`FairShareScheduler.select` exactly
the snapshot shape :meth:`JobStore.snapshot` produces, so anything
proved here holds for the real store decision-for-decision.

Three invariant families back the service's scheduling claims:

* **Quota safety** — no interleaving of claims and completions ever
  leaves a tenant with more live claims than ``max_concurrent_shards``.
* **Weighted fairness** — with continuous backlog and equal priorities,
  each tenant's normalized charge ``charged / weight`` never drifts
  from any other's by more than ``max(1/weight)``.
* **Replay determinism** — the same snapshot sequence reproduces the
  same decision sequence, across calls and across scheduler instances;
  aging guarantees every backlogged tenant is served in bounded time.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import FairShareScheduler, TenantPolicy

pytestmark = pytest.mark.service

NAMES = ("ada", "bob", "cyd", "dee")


class Simulator:
    """The store's claim accounting, minus the store.

    Mirrors :meth:`JobStore.snapshot`/:meth:`JobStore.claim` bookkeeping:
    claims advance the decision clock and the tenant's fairness charge;
    completions free a live slot. One synthetic job per tenant.
    """

    def __init__(self, backlogs):
        self.backlog = dict(backlogs)
        self.live = {name: 0 for name in self.backlog}
        self.charged = {name: 0 for name in self.backlog}
        self.last_claim = {name: 0 for name in self.backlog}
        self.decision = 0

    def snapshot(self):
        return {
            "decision": self.decision,
            "tenants": {
                name: {
                    "live_claims": self.live[name],
                    "charged": self.charged[name],
                    "last_claim_decision": self.last_claim[name],
                    "jobs": [{"job_id": f"job-{name}", "has_pending": self.backlog[name] > 0}],
                }
                for name in self.backlog
            },
        }

    def claim(self, scheduler):
        """One scheduling decision; the chosen tenant or ``None``."""
        job_id = scheduler.select(self.snapshot())
        if job_id is None:
            return None
        name = job_id[len("job-"):]
        assert self.backlog[name] > 0  # never hands out absent work
        self.backlog[name] -= 1
        self.live[name] += 1
        self.decision += 1
        self.charged[name] += 1
        self.last_claim[name] = self.decision
        return name

    def complete_one(self, name):
        if self.live[name] > 0:
            self.live[name] -= 1


def policies(names, weights=None, caps=None, priorities=None):
    return tuple(
        TenantPolicy(
            name,
            weight=1.0 if weights is None else weights[i],
            priority=0 if priorities is None else priorities[i],
            max_concurrent_shards=None if caps is None else caps[i],
        )
        for i, name in enumerate(names)
    )


# ----------------------------------------------------------------------
# Quota safety.


@settings(deadline=None, max_examples=60)
@given(
    caps=st.tuples(*[st.one_of(st.none(), st.integers(1, 3)) for _ in NAMES]),
    backlogs=st.tuples(*[st.integers(0, 12) for _ in NAMES]),
    schedule=st.lists(st.integers(0, len(NAMES)), min_size=1, max_size=120),
)
def test_quota_never_exceeded(caps, backlogs, schedule):
    """No interleaving of claims and completions breaches a tenant's
    ``max_concurrent_shards`` — and capped-out tenants are skipped, not
    queued-behind, so the cap never wedges the others."""
    scheduler = FairShareScheduler(policies(NAMES, caps=caps))
    sim = Simulator(dict(zip(NAMES, backlogs)))
    for step in schedule:
        if step == 0:  # a claim attempt
            sim.claim(scheduler)
        else:  # a completion for tenant step-1
            sim.complete_one(NAMES[step - 1])
        for name, cap in zip(NAMES, caps):
            if cap is not None:
                assert sim.live[name] <= cap
    # With everything completed, remaining backlog is always claimable.
    for name in NAMES:
        while sim.live[name]:
            sim.complete_one(name)
    while sim.claim(scheduler) is not None:
        for name in NAMES:
            sim.complete_one(name)
    assert all(sim.backlog[name] == 0 for name in NAMES)


# ----------------------------------------------------------------------
# Weighted fairness.


@settings(deadline=None, max_examples=60)
@given(
    weights=st.tuples(
        *[st.floats(0.25, 8.0, allow_nan=False, allow_infinity=False) for _ in NAMES]
    ),
    n_decisions=st.integers(1, 200),
)
def test_fair_share_drift_is_bounded(weights, n_decisions):
    """Continuous backlog, equal priorities: the spread of normalized
    charges ``charged / weight`` never exceeds ``max(1/weight)`` — the
    classic weighted-fair-share bound, here with aging disabled so the
    fairness term alone decides."""
    scheduler = FairShareScheduler(policies(NAMES, weights=weights), aging_decisions=None)
    sim = Simulator({name: n_decisions for name in NAMES})  # never runs dry
    bound = max(1.0 / w for w in weights) + 1e-9
    for _ in range(n_decisions):
        assert sim.claim(scheduler) is not None
        normalized = [sim.charged[name] / w for name, w in zip(NAMES, weights)]
        assert max(normalized) - min(normalized) <= bound


@settings(deadline=None, max_examples=40)
@given(weight=st.floats(1.5, 4.0, allow_nan=False))
def test_heavier_tenant_gets_proportionally_more(weight):
    """Over a long window a weight-w tenant collects ~w times the claims
    of a weight-1 peer (within one decision of the ideal split)."""
    names = ("heavy", "light")
    scheduler = FairShareScheduler(
        (TenantPolicy("heavy", weight=weight), TenantPolicy("light")),
        aging_decisions=None,
    )
    total = 120
    sim = Simulator({name: total for name in names})
    for _ in range(total):
        sim.claim(scheduler)
    ideal = total * weight / (weight + 1.0)
    assert abs(sim.charged["heavy"] - ideal) <= max(1.0, weight)


# ----------------------------------------------------------------------
# Determinism and starvation-freedom.


@settings(deadline=None, max_examples=60)
@given(
    weights=st.tuples(*[st.floats(0.5, 4.0, allow_nan=False) for _ in NAMES]),
    priorities=st.tuples(*[st.integers(0, 3) for _ in NAMES]),
    backlogs=st.tuples(*[st.integers(0, 10) for _ in NAMES]),
    schedule=st.lists(st.integers(0, len(NAMES)), min_size=1, max_size=80),
)
def test_replay_reproduces_every_decision(weights, priorities, backlogs, schedule):
    """Two independent scheduler instances fed the same transition
    sequence make identical choices at every step — the property that
    makes the journal a complete explanation of what ran when."""

    def run():
        scheduler = FairShareScheduler(
            policies(NAMES, weights=weights, priorities=priorities), aging_decisions=4
        )
        sim = Simulator(dict(zip(NAMES, backlogs)))
        decisions = []
        for step in schedule:
            if step == 0:
                decisions.append(sim.claim(scheduler))
            else:
                sim.complete_one(NAMES[step - 1])
        return decisions

    assert run() == run()


@settings(deadline=None, max_examples=40)
@given(
    priorities=st.tuples(*[st.integers(0, 3) for _ in NAMES]),
    aging=st.integers(1, 8),
)
def test_aging_prevents_starvation(priorities, aging):
    """With continuous backlog, every tenant is served within a bounded
    window no matter how the static priorities are stacked: waiting
    raises effective priority past any finite static gap."""
    scheduler = FairShareScheduler(
        policies(NAMES, priorities=priorities), aging_decisions=aging
    )
    window = aging * (max(priorities) + 2) * len(NAMES)
    sim = Simulator({name: 10 * window for name in NAMES})
    served_at = {name: [] for name in NAMES}
    for step in range(3 * window):
        name = sim.claim(scheduler)
        served_at[name].append(step)
    for name in NAMES:
        times = served_at[name]
        assert times, f"{name} starved for the whole run"
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps, default=0) <= window


def test_select_does_not_mutate_the_snapshot():
    scheduler = FairShareScheduler(policies(NAMES))
    sim = Simulator({name: 2 for name in NAMES})
    snapshot = sim.snapshot()
    frozen = copy.deepcopy(snapshot)
    scheduler.select(snapshot)
    assert snapshot == frozen
