"""Spectrum analyzer model: averaging statistics and determinism."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.spectrum.analyzer import SpectrumAnalyzer, StaticScene
from repro.spectrum.grid import FrequencyGrid

GRID = FrequencyGrid(0.0, 100e3, 100.0)


def flat_scene(level=1.0):
    return StaticScene(np.full(GRID.n_bins, level))


class TestCapture:
    def test_exact_mean_mode(self):
        analyzer = SpectrumAnalyzer(n_averages=None)
        trace = analyzer.capture(flat_scene(2.0), GRID)
        np.testing.assert_allclose(trace.power_mw, 2.0)

    def test_mean_unbiased(self):
        analyzer = SpectrumAnalyzer(n_averages=4, rng=np.random.default_rng(0))
        trace = analyzer.capture(flat_scene(1.0), GRID)
        assert trace.power_mw.mean() == pytest.approx(1.0, rel=0.05)

    def test_averaging_tightens_fluctuations(self):
        """Relative std ~ 1/sqrt(K): the paper's 4-sweep averaging."""
        few = SpectrumAnalyzer(n_averages=1, rng=np.random.default_rng(0)).capture(flat_scene(), GRID)
        many = SpectrumAnalyzer(n_averages=16, rng=np.random.default_rng(0)).capture(flat_scene(), GRID)
        assert few.power_mw.std() == pytest.approx(1.0, rel=0.2)
        assert many.power_mw.std() == pytest.approx(0.25, rel=0.2)

    def test_label_propagates(self):
        analyzer = SpectrumAnalyzer(n_averages=None)
        assert analyzer.capture(flat_scene(), GRID, label="x").label == "x"

    def test_capture_many_independent(self):
        analyzer = SpectrumAnalyzer(n_averages=4, rng=np.random.default_rng(0))
        a, b = analyzer.capture_many(flat_scene(), GRID, 2)
        assert not np.array_equal(a.power_mw, b.power_mw)

    def test_deterministic_with_seed(self):
        a = SpectrumAnalyzer(n_averages=4, rng=np.random.default_rng(5)).capture(flat_scene(), GRID)
        b = SpectrumAnalyzer(n_averages=4, rng=np.random.default_rng(5)).capture(flat_scene(), GRID)
        np.testing.assert_array_equal(a.power_mw, b.power_mw)


class TestResolutionBandwidth:
    def _line_scene(self):
        power = np.zeros(GRID.n_bins)
        power[GRID.index_of(50e3)] = 1e-10
        return StaticScene(power)

    def test_default_rbw_is_transparent(self):
        trace = SpectrumAnalyzer(n_averages=None).capture(self._line_scene(), GRID)
        assert np.count_nonzero(trace.power_mw) == 1

    def test_wide_rbw_smears_lines(self):
        analyzer = SpectrumAnalyzer(n_averages=None, rbw=500.0)
        trace = analyzer.capture(self._line_scene(), GRID)
        assert np.count_nonzero(trace.power_mw > 1e-14) > 3
        # apparent peak height drops (energy shared across bins)
        assert trace.power_mw.max() < 1e-10

    def test_wide_rbw_raises_noise_floor(self):
        """Per-bin noise power scales with the bandwidth ratio."""
        narrow = SpectrumAnalyzer(n_averages=None).capture(flat_scene(1e-15), GRID)
        wide = SpectrumAnalyzer(n_averages=None, rbw=1000.0).capture(flat_scene(1e-15), GRID)
        interior = slice(20, -20)
        ratio = wide.power_mw[interior].mean() / narrow.power_mw[interior].mean()
        assert ratio == pytest.approx(1000.0 / GRID.resolution, rel=0.01)

    def test_line_band_power_scales_with_rbw(self):
        """A line's total collected power rises by the same RBW factor the
        floor does, so line-to-floor contrast in *band power* is preserved
        (only per-bin peak contrast is lost)."""
        analyzer = SpectrumAnalyzer(n_averages=None, rbw=500.0)
        trace = analyzer.capture(self._line_scene(), GRID)
        assert trace.total_power() == pytest.approx(1e-10 * 500.0 / GRID.resolution, rel=0.01)

    def test_invalid_rbw(self):
        with pytest.raises(TraceError):
            SpectrumAnalyzer(rbw=0.0)

    def test_rbw_wider_than_span_degenerates_gracefully(self):
        """Regression: an RBW wider than the whole span used to build a
        kernel of ~8*sigma bins regardless of the grid (a 100 MHz RBW on
        this 100 kHz span would ask for a multi-million point kernel).
        The kernel is capped at the grid length: every bin simply sees
        the whole span and the capture stays cheap and finite."""
        analyzer = SpectrumAnalyzer(n_averages=None, rbw=100e6)
        trace = analyzer.capture(self._line_scene(), GRID)
        assert trace.power_mw.shape == (GRID.n_bins,)
        assert np.all(np.isfinite(trace.power_mw))
        # the single line is smeared essentially flat across the span
        interior = trace.power_mw[100:-100]
        assert np.all(interior > 0)
        assert interior.max() < 3 * interior.min()

    def test_rbw_equal_to_span_keeps_grid_shape(self):
        """Regression: a kernel longer than the trace used to make
        np.convolve(mode='same') return the *kernel's* length and fail the
        shape check downstream."""
        span = GRID.stop - GRID.start
        trace = SpectrumAnalyzer(n_averages=None, rbw=span).capture(self._line_scene(), GRID)
        assert trace.power_mw.shape == (GRID.n_bins,)
        assert np.all(np.isfinite(trace.power_mw))
        # smeared wide: half the span is within a couple dB of the peak
        assert np.count_nonzero(trace.power_mw > trace.power_mw.max() / 3) > GRID.n_bins // 3


class TestValidation:
    def test_bad_averages(self):
        with pytest.raises(TraceError):
            SpectrumAnalyzer(n_averages=0)

    def test_bad_grid(self):
        with pytest.raises(TraceError):
            SpectrumAnalyzer().capture(flat_scene(), "grid")

    def test_scene_shape_mismatch(self):
        with pytest.raises(TraceError):
            SpectrumAnalyzer(n_averages=None).capture(StaticScene(np.zeros(3)), GRID)

    def test_callable_scene(self):
        scene = StaticScene(lambda grid: np.ones(grid.n_bins))
        trace = SpectrumAnalyzer(n_averages=None).capture(scene, GRID)
        assert trace.power_mw.sum() == GRID.n_bins

    def test_bad_count(self):
        with pytest.raises(TraceError):
            SpectrumAnalyzer().capture_many(flat_scene(), GRID, 0)
        with pytest.raises(TraceError):
            SpectrumAnalyzer().capture_many(flat_scene(), GRID, -3)

    def test_capture_many_returns_exactly_count(self):
        traces = SpectrumAnalyzer(rng=np.random.default_rng(0)).capture_many(
            flat_scene(), GRID, 4, label="rep"
        )
        assert len(traces) == 4
        assert all(trace.label == "rep" for trace in traces)

    def test_zero_averages_rejected_before_any_capture(self):
        """n_averages=0 is neither 'exact mean' (None) nor a valid Gamma
        shape; it must fail at construction, not mid-campaign."""
        with pytest.raises(TraceError):
            SpectrumAnalyzer(n_averages=0).capture_many(flat_scene(), GRID, 2)


class TestAveragedCaptureLabels:
    """Label provenance of averaged captures (regression).

    ``average_traces`` used to inherit the first capture's label
    verbatim — which embeds that capture's falt — mislabeling the
    averaged spectrum in reports.
    """

    def _captures(self):
        analyzer = SpectrumAnalyzer(n_averages=None)
        return [
            analyzer.capture(flat_scene(), GRID, label=f"LDM/LDL1 falt={falt}Hz")
            for falt in (43300.0, 43800.0)
        ]

    def test_mixed_labels_not_inherited_from_first(self):
        from repro.spectrum.trace import average_traces

        averaged = average_traces(self._captures())
        assert averaged.label != "LDM/LDL1 falt=43300.0Hz"
        assert averaged.label == "average of 2 traces"

    def test_explicit_label_wins(self):
        from repro.spectrum.trace import average_traces

        averaged = average_traces(self._captures(), label="LDM/LDL1 averaged")
        assert averaged.label == "LDM/LDL1 averaged"

    def test_shared_label_kept(self):
        from repro.spectrum.trace import average_traces

        analyzer = SpectrumAnalyzer(n_averages=None)
        captures = [analyzer.capture(flat_scene(), GRID, label="same") for _ in range(3)]
        assert average_traces(captures).label == "same"
