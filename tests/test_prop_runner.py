"""Property: a journaled campaign killed after ANY prefix resumes identically.

Hypothesis drives the kill point (and the campaign's seed) instead of a
hand-picked parametrization: for every (seed, k) it finds, interrupting
the run after k completed captures and re-running over the same journal
must reproduce the uninterrupted run's result exactly — same falts, same
trace bytes, no spurious robustness ledger.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.test_runner import (
    FALTS,
    KillAfter,
    StubMachine,
    assert_same_result,
    durable,
    make_activities,
)

pytestmark = pytest.mark.runner


@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       kill_after=st.integers(min_value=0, max_value=len(FALTS) - 1))
@settings(max_examples=15, deadline=None)
def test_resume_equals_uninterrupted_for_any_prefix(seed, kill_after):
    root = Path(tempfile.mkdtemp(prefix="fase-prop-runner-"))
    try:
        reference = durable(root / "ref", seed=seed).run_with_activities(
            make_activities(), label="pair"
        )
        with pytest.raises(KeyboardInterrupt):
            durable(
                root / "j", machine=KillAfter(StubMachine(), kill_after), seed=seed
            ).run_with_activities(make_activities(), label="pair")
        campaign = durable(root / "j", seed=seed)
        resumed = campaign.run_with_activities(make_activities(), label="pair")
        assert campaign.resumed_indices == tuple(range(kill_after))
        assert resumed.robustness is None
        assert_same_result(resumed, reference)
    finally:
        shutil.rmtree(root, ignore_errors=True)
