"""§4.1 design-space variants: per-core regulators and FIVR."""

import numpy as np

from repro import FaseConfig, MeasurementCampaign
from repro.core import CarrierDetector
from repro.system.variants import CORE0, CORE1, fivr_machine, percore_regulator_machine
from repro.uarch.activity import AlternationActivity


def campaign_for(machine, span_low, span_high, fres, falt1=43.3e3, f_delta=0.5e3, seed=1):
    config = FaseConfig(
        span_low=span_low, span_high=span_high, fres=fres,
        falt1=falt1, f_delta=f_delta, name="variant window",
    )
    return MeasurementCampaign(machine, config, rng=np.random.default_rng(seed)), config


def core_alternation(domain, falt=43.3e3):
    return AlternationActivity(
        falt=falt, levels_x={domain: 0.95}, levels_y={domain: 0.35},
        jitter_fraction=0.0015, label=f"{domain} busy/idle",
    )


class TestPerCoreRegulators:
    """'Attackers might be able to remotely receive a separate power
    consumption readout for each core.'"""

    def run_for_domain(self, domain):
        machine = percore_regulator_machine(rng=np.random.default_rng(0))
        campaign, config = campaign_for(machine, 0.0, 1e6, 50.0)
        activities = [
            core_alternation(domain, falt) for falt in config.falts()
        ]
        result = campaign.run_with_activities(activities, label=f"{domain} loop")
        return CarrierDetector().detect(result)

    def test_core0_activity_modulates_only_core0_regulator(self):
        detections = self.run_for_domain(CORE0)
        assert any(abs(d.frequency - 320e3) < 2e3 for d in detections)
        assert not any(abs(d.frequency - 352e3) < 2e3 for d in detections)

    def test_core1_activity_modulates_only_core1_regulator(self):
        detections = self.run_for_domain(CORE1)
        assert any(abs(d.frequency - 352e3) < 2e3 for d in detections)
        assert not any(abs(d.frequency - 320e3) < 2e3 for d in detections)

    def test_distinct_switching_frequencies(self):
        machine = percore_regulator_machine(rng=np.random.default_rng(0))
        f0 = machine.emitter_named("core 0 regulator").switching_frequency
        f1 = machine.emitter_named("core 1 regulator").switching_frequency
        assert f0 != f1


class TestFivr:
    """'Higher switching frequencies ... providing attackers with a higher
    bandwidth readout of power consumption.'"""

    def test_fivr_carrier_detected_with_large_falt(self):
        machine = fivr_machine(rng=np.random.default_rng(0))
        campaign, config = campaign_for(
            machine, 135e6, 145e6, 2e3, falt1=1800e3, f_delta=100e3
        )
        activities = [core_alternation("core", falt) for falt in config.falts()]
        result = campaign.run_with_activities(activities, label="core loop")
        detections = CarrierDetector(min_separation_hz=150e3).detect(result)
        assert any(abs(d.frequency - 140e6) < 100e3 for d in detections)

    def test_fivr_supports_wider_modulation_than_board_regulator(self):
        """A 315 kHz regulator cannot carry a 1.8 MHz alternation at all
        (side-bands beyond the switching rate are meaningless: falt must
        stay well below fsw); the 140 MHz FIVR handles it trivially. The
        usable falt ratio IS the bandwidth-readout claim."""
        machine = fivr_machine(rng=np.random.default_rng(0))
        fivr = machine.emitter_named("integrated core regulator (FIVR)")
        board = machine.emitter_named("DRAM DIMM regulator")
        # Nyquist-style limit: the regulator feedback samples at fsw.
        assert fivr.switching_frequency / 2 > 1.8e6
        assert board.switching_frequency / 2 < 1.8e6
