"""Property-based tests on grids, traces, and the heuristic's invariances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spectrum.grid import FrequencyGrid
from repro.spectrum.trace import SpectrumTrace, average_traces
from repro.units import dbm_to_milliwatts, milliwatts_to_dbm


class TestGridProperties:
    @given(
        start=st.floats(min_value=0.0, max_value=1e6),
        span=st.floats(min_value=1e3, max_value=10e6),
        resolution=st.sampled_from([50.0, 100.0, 500.0, 2000.0]),
    )
    @settings(max_examples=60)
    def test_index_roundtrip(self, start, span, resolution):
        from hypothesis import assume

        assume(span >= 4 * resolution)
        grid = FrequencyGrid(start, start + span, resolution)
        for index in (0, grid.n_bins // 2, grid.n_bins - 1):
            frequency = grid.frequency_at(index)
            assert grid.index_of(frequency) == index

    @given(
        span=st.floats(min_value=10e3, max_value=10e6),
        resolution=st.sampled_from([50.0, 100.0, 500.0]),
    )
    @settings(max_examples=40)
    def test_bin_count_matches_span(self, span, resolution):
        grid = FrequencyGrid(0.0, span, resolution)
        assert grid.n_bins == int(round(span / resolution))


class TestUnitsProperties:
    @given(dbm=st.floats(min_value=-200.0, max_value=50.0))
    def test_dbm_roundtrip(self, dbm):
        assert float(milliwatts_to_dbm(dbm_to_milliwatts(dbm))) == pytest.approx(dbm, abs=1e-9)

    @given(
        a=st.floats(min_value=1e-20, max_value=1e3),
        b=st.floats(min_value=1e-20, max_value=1e3),
    )
    def test_dbm_monotone(self, a, b):
        if a < b:
            assert milliwatts_to_dbm(a) < milliwatts_to_dbm(b)


class TestTraceProperties:
    grid = FrequencyGrid(0.0, 100e3, 100.0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_shift_by_zero_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        trace = SpectrumTrace(self.grid, rng.gamma(4.0, 1e-12, self.grid.n_bins))
        np.testing.assert_allclose(trace.shifted_power(0.0), trace.power_mw)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30)
    def test_average_preserves_total_power_mean(self, seed, n):
        rng = np.random.default_rng(seed)
        traces = [
            SpectrumTrace(self.grid, rng.gamma(4.0, 1e-12, self.grid.n_bins))
            for _ in range(n)
        ]
        averaged = average_traces(traces)
        expected = np.mean([t.total_power() for t in traces])
        assert averaged.total_power() == pytest.approx(expected, rel=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        factor=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=30)
    def test_scaling_linear(self, seed, factor):
        rng = np.random.default_rng(seed)
        trace = SpectrumTrace(self.grid, rng.gamma(4.0, 1e-12, self.grid.n_bins))
        assert trace.scaled(factor).total_power() == pytest.approx(
            factor * trace.total_power(), rel=1e-9
        )


class TestHeuristicInvariances:
    """Eq. 2 is a power *ratio*: global rescaling must not change scores."""

    @given(
        scale=st.floats(min_value=1e-6, max_value=1e6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=20, deadline=None)
    def test_scale_invariance(self, scale, seed):
        from repro.core.heuristic import HeuristicScorer

        grid = FrequencyGrid(0.0, 200e3, 100.0)
        rng = np.random.default_rng(seed)
        falts = [20e3, 21e3, 22e3, 23e3, 24e3]
        traces = []
        for falt in falts:
            power = rng.gamma(4.0, 1e-12, grid.n_bins)
            power[grid.index_of(100e3 + falt)] += 1e-10
            traces.append(SpectrumTrace(grid, power))
        scorer = HeuristicScorer(power_floor=1e-30)
        base = scorer.harmonic_score(traces, falts, 1)
        scaled_traces = [t.scaled(scale) for t in traces]
        scaled = scorer.harmonic_score(scaled_traces, falts, 1)
        np.testing.assert_allclose(scaled, base, rtol=1e-6)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_permutation_of_measurements_preserves_carrier_score(self, seed):
        """The carrier score must not depend on measurement order."""
        from repro.core.heuristic import HeuristicScorer

        grid = FrequencyGrid(0.0, 200e3, 100.0)
        rng = np.random.default_rng(seed)
        falts = [20e3, 21e3, 22e3, 23e3, 24e3]
        traces = []
        for falt in falts:
            power = rng.gamma(4.0, 1e-12, grid.n_bins)
            power[grid.index_of(100e3 + falt)] += 1e-10
            traces.append(SpectrumTrace(grid, power))
        scorer = HeuristicScorer(power_floor=1e-30)
        forward = scorer.harmonic_score(traces, falts, 1)
        backward = scorer.harmonic_score(traces[::-1], falts[::-1], 1)
        idx = grid.index_of(100e3)
        assert backward[idx] == pytest.approx(forward[idx], rel=1e-9)
