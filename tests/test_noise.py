"""Noise models: the landscape of Figure 5."""

import numpy as np
import pytest

from repro.errors import UnitsError
from repro.signals.noise import (
    BroadbandHills,
    CompositeNoise,
    PinkNoise,
    ThermalNoise,
)
from repro.units import dbm_to_milliwatts

FREQS = np.linspace(10e3, 4e6, 2000)


class TestThermalNoise:
    def test_flat(self):
        density = ThermalNoise(-165.0).mean_density(FREQS)
        assert np.ptp(density) == 0.0

    def test_level(self):
        density = ThermalNoise(-165.0).mean_density(FREQS)
        assert density[0] == pytest.approx(dbm_to_milliwatts(-165.0))


class TestPinkNoise:
    def test_rises_toward_low_frequency(self):
        density = PinkNoise(level_dbm_per_hz=-160.0, knee=100e3).mean_density(FREQS)
        assert density[0] > density[-1]

    def test_level_at_knee(self):
        noise = PinkNoise(level_dbm_per_hz=-150.0, knee=100e3)
        at_knee = noise.mean_density(np.array([100e3]))[0]
        assert at_knee == pytest.approx(dbm_to_milliwatts(-150.0))

    def test_alpha_controls_slope(self):
        shallow = PinkNoise(knee=1e6, alpha=0.5).mean_density(np.array([10e3]))[0]
        steep = PinkNoise(knee=1e6, alpha=2.0).mean_density(np.array([10e3]))[0]
        assert steep > shallow

    def test_finite_near_dc(self):
        density = PinkNoise().mean_density(np.array([0.0, 1.0]))
        assert np.all(np.isfinite(density))

    def test_validation(self):
        with pytest.raises(UnitsError):
            PinkNoise(knee=0.0)
        with pytest.raises(UnitsError):
            PinkNoise(alpha=-1.0)


class TestBroadbandHills:
    def test_fixed_realization(self):
        """Same seed -> same hills: a lab's landscape is static, which is
        what lets Eq. 2 normalize it away."""
        a = BroadbandHills(4e6, rng=np.random.default_rng(3)).mean_density(FREQS)
        b = BroadbandHills(4e6, rng=np.random.default_rng(3)).mean_density(FREQS)
        np.testing.assert_array_equal(a, b)

    def test_has_hills_and_valleys(self):
        density = BroadbandHills(4e6, n_hills=10, rng=np.random.default_rng(1)).mean_density(FREQS)
        assert density.max() > 3 * max(density.min(), 1e-30)

    def test_zero_hills_is_flat_zero(self):
        density = BroadbandHills(4e6, n_hills=0, rng=np.random.default_rng(0)).mean_density(FREQS)
        assert density.sum() == 0.0

    def test_validation(self):
        with pytest.raises(UnitsError):
            BroadbandHills(0.0)
        with pytest.raises(UnitsError):
            BroadbandHills(4e6, min_width_fraction=0.5, max_width_fraction=0.1)


class TestCompositeNoise:
    def test_sums_components(self):
        thermal = ThermalNoise(-165.0)
        pink = PinkNoise()
        composite = CompositeNoise([thermal, pink])
        expected = thermal.mean_density(FREQS) + pink.mean_density(FREQS)
        np.testing.assert_allclose(composite.mean_density(FREQS), expected)

    def test_empty_is_zero(self):
        assert CompositeNoise([]).mean_density(FREQS).sum() == 0.0
