"""Property-based tests on the micro-benchmark and harmonic grouping."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.detect import CarrierDetection
from repro.core.harmonics import group_harmonics
from repro.errors import CalibrationError
from repro.uarch.isa import MicroOp
from repro.uarch.microbench import AlternationMicrobenchmark, pointer_mask_for_working_set

onchip_ops = st.sampled_from([MicroOp.LDL1, MicroOp.LDL2, MicroOp.ADD, MicroOp.MUL, MicroOp.DIV])
all_ops = st.sampled_from(list(MicroOp))


class TestCalibrationProperties:
    @given(
        op_x=all_ops,
        op_y=all_ops,
        falt=st.floats(min_value=5e3, max_value=200e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_calibration_hits_target_or_raises(self, op_x, op_y, falt):
        try:
            bench = AlternationMicrobenchmark.calibrated(op_x, op_y, falt)
        except CalibrationError:
            return
        assert bench.achieved_falt() == pytest.approx(falt, rel=0.05)
        assert bench.inst_x_count >= 1
        assert bench.inst_y_count >= 1

    @given(
        op_x=onchip_ops,
        falt=st.floats(min_value=5e3, max_value=100e3),
        duty=st.floats(min_value=0.2, max_value=0.8),
    )
    @settings(max_examples=40, deadline=None)
    def test_duty_cycle_tracks_request(self, op_x, falt, duty):
        bench = AlternationMicrobenchmark.calibrated(op_x, MicroOp.LDL1, falt, duty_cycle=duty)
        assert bench.achieved_duty_cycle() == pytest.approx(duty, abs=0.05)

    @given(size=st.integers(min_value=1, max_value=1 << 28))
    def test_mask_covers_requested_size(self, size):
        mask = pointer_mask_for_working_set(size)
        assert mask + 1 >= size
        assert (mask + 1) & mask == 0  # power of two


class TestGroupingProperties:
    @st.composite
    def comb(draw):
        fundamental = draw(st.floats(min_value=100e3, max_value=600e3))
        orders = draw(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6, unique=True))
        return fundamental, sorted(orders)

    @given(data=comb())
    @settings(max_examples=60)
    def test_single_comb_recovered(self, data):
        fundamental, orders = data
        detections = [
            CarrierDetection(
                frequency=order * fundamental,
                combined_score=10.0,
                harmonic_scores={1: 10.0},
                magnitude_dbm=-120.0,
                modulation_depth=0.3,
            )
            for order in orders
        ]
        sets = group_harmonics(detections)
        # every detection is grouped exactly once
        grouped = sorted(f for s in sets for f in s.frequencies)
        assert grouped == sorted(d.frequency for d in detections)
        # if the fundamental itself was detected, a single set results
        if 1 in orders:
            assert len(sets) == 1
            assert sets[0].fundamental == pytest.approx(fundamental, rel=1e-6)

    @given(
        fundamentals=st.lists(
            st.floats(min_value=100e3, max_value=250e3), min_size=1, max_size=3, unique=True
        )
    )
    @settings(max_examples=40)
    def test_partition_property(self, fundamentals):
        """Grouping is always a partition: no carrier lost or duplicated."""
        assume(
            all(
                abs(a / b - round(a / b)) > 0.05 and abs(b / a - round(b / a)) > 0.05
                for i, a in enumerate(fundamentals)
                for b in fundamentals[i + 1 :]
            )
        )
        detections = []
        for fundamental in fundamentals:
            for order in (1, 2, 3):
                detections.append(
                    CarrierDetection(
                        frequency=order * fundamental,
                        combined_score=10.0,
                        harmonic_scores={1: 10.0},
                        magnitude_dbm=-120.0,
                        modulation_depth=0.3,
                    )
                )
        sets = group_harmonics(detections)
        grouped = sorted(f for s in sets for f in s.frequencies)
        assert grouped == sorted(d.frequency for d in detections)
