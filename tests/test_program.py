"""Program-level workloads: phases, traces, activity waveforms."""

import numpy as np
import pytest

from repro.errors import SystemModelError
from repro.system.domains import CORE, DRAM_POWER
from repro.uarch.isa import MicroOp, activity_levels
from repro.uarch.program import Program, ProgramPhase, ProgramSimulator


class TestProgramConstruction:
    def test_alternation_builder(self):
        program = Program.alternation(MicroOp.LDM, 10, MicroOp.LDL1, 400)
        assert len(program.phases) == 2
        assert program.phases[0].op == MicroOp.LDM

    def test_square_and_multiply_structure(self):
        program = Program.square_and_multiply((1, 0, 1))
        # bit 1: square + multiply + reduce; bit 0: square + reduce
        ops = [phase.op for phase in program.phases]
        assert len(program.phases) == 3 + 2 + 3
        assert ops.count(MicroOp.LDL2) == 3

    def test_repeat_expands(self):
        program = Program.alternation(MicroOp.ADD, 5, MicroOp.NOP, 5, repeat=3)
        assert len(program.expanded_phases()) == 6
        assert program.total_iterations() == 30

    def test_validation(self):
        with pytest.raises(SystemModelError):
            Program([])
        with pytest.raises(SystemModelError):
            Program([ProgramPhase(MicroOp.ADD, 1)], repeat=0)
        with pytest.raises(SystemModelError):
            ProgramPhase(MicroOp.ADD, 0)
        with pytest.raises(SystemModelError):
            ProgramPhase("ADD", 5)


class TestSimulation:
    def test_trace_durations_positive(self):
        simulator = ProgramSimulator()
        trace = simulator.trace(
            Program.alternation(MicroOp.LDM, 100, MicroOp.LDL1, 100),
            rng=np.random.default_rng(0),
        )
        assert all(d > 0 for d in trace.durations)
        assert trace.total_seconds == pytest.approx(sum(trace.durations))

    def test_memory_phase_takes_longer(self):
        simulator = ProgramSimulator()
        trace = simulator.trace(
            Program([ProgramPhase(MicroOp.LDM, 1000), ProgramPhase(MicroOp.LDL1, 1000)]),
            rng=np.random.default_rng(0),
        )
        assert trace.durations[0] > 10 * trace.durations[1]

    def test_waveform_levels_match_ops(self):
        simulator = ProgramSimulator()
        program = Program([ProgramPhase(MicroOp.LDM, 5000), ProgramPhase(MicroOp.LDL1, 5000)])
        levels, trace = simulator.activity_waveform(
            program, DRAM_POWER, 10e6, rng=np.random.default_rng(1)
        )
        expected_first = activity_levels(MicroOp.LDM)[DRAM_POWER]
        expected_second = activity_levels(MicroOp.LDL1)[DRAM_POWER]
        assert levels[0] == expected_first
        assert levels[-1] == expected_second
        assert set(np.unique(levels)) == {expected_first, expected_second}

    def test_waveform_duration_matches_trace(self):
        simulator = ProgramSimulator()
        program = Program.square_and_multiply((1, 0, 1, 1))
        levels, trace = simulator.activity_waveform(
            program, CORE, 5e6, rng=np.random.default_rng(2)
        )
        assert len(levels) == pytest.approx(trace.total_seconds * 5e6, abs=2)

    def test_secret_bits_change_duration(self):
        """The timing leak: a 1-heavy exponent runs longer."""
        simulator = ProgramSimulator()
        ones = simulator.trace(
            Program.square_and_multiply((1,) * 16), rng=np.random.default_rng(3)
        )
        zeros = simulator.trace(
            Program.square_and_multiply((0,) * 16), rng=np.random.default_rng(3)
        )
        assert ones.total_seconds > 1.3 * zeros.total_seconds

    def test_mean_level_analytic(self):
        simulator = ProgramSimulator()
        program = Program([ProgramPhase(MicroOp.LDM, 1000), ProgramPhase(MicroOp.LDL1, 1000)])
        mean = simulator.mean_level(program, DRAM_POWER)
        # LDM dominates the time (its latency is ~40x), so the mean is near
        # the LDM level
        assert mean > 0.8 * activity_levels(MicroOp.LDM)[DRAM_POWER]

    def test_sample_rate_validation(self):
        simulator = ProgramSimulator()
        with pytest.raises(SystemModelError):
            simulator.activity_waveform(
                Program([ProgramPhase(MicroOp.ADD, 10)]), CORE, 0.0
            )
