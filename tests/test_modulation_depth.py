"""Modulation-depth quantification and activity-response sweeps."""

import numpy as np
import pytest

from repro.analysis.modulation_depth import modulation_depth_sweep, sideband_to_carrier_db
from repro.errors import DetectionError
from repro.spectrum.grid import FrequencyGrid
from repro.system.domains import DRAM_BUS, DRAM_POWER, MEMORY_UTILIZATION


class TestSidebandToCarrier:
    def test_regulator_sideband_ratio_negative_db(self, i7_ldm_ldl1):
        measurement = i7_ldm_ldl1.measurements[0]
        ratio = sideband_to_carrier_db(measurement.trace, 315e3, measurement.falt)
        assert -40.0 < ratio < -3.0

    def test_unmodulated_carrier_ratio_much_lower(self, i7_ldm_ldl1):
        """The core regulator's side-band/carrier ratio under LDM/LDL1 is
        far below the memory regulator's: it isn't modulated."""
        measurement = i7_ldm_ldl1.measurements[0]
        modulated = sideband_to_carrier_db(measurement.trace, 315e3, measurement.falt)
        unmodulated = sideband_to_carrier_db(measurement.trace, 333e3, measurement.falt)
        assert modulated > unmodulated + 6.0

    def test_outside_grid_rejected(self, i7_ldm_ldl1):
        measurement = i7_ldm_ldl1.measurements[0]
        with pytest.raises(DetectionError):
            sideband_to_carrier_db(measurement.trace, 10e6, measurement.falt)


class TestDepthSweep:
    def test_regulator_strengthens_with_load(self, i7_quiet):
        """PWM duty rises with load -> fundamental envelope rises."""
        grid = FrequencyGrid(250e3, 400e3, 50.0)
        sweep = modulation_depth_sweep(i7_quiet, DRAM_POWER, 315e3, grid)
        powers = [m.carrier_power_mw for m in sweep]
        assert powers[-1] > powers[0]

    def test_refresh_weakens_with_load(self, i7_quiet):
        """Section 4.2's inverted response: 'it weakens (instead of getting
        stronger) as memory activity increases'."""
        grid = FrequencyGrid(450e3, 600e3, 50.0)
        sweep = modulation_depth_sweep(i7_quiet, MEMORY_UTILIZATION, 512e3, grid)
        powers = [m.carrier_power_mw for m in sweep]
        assert powers[0] > 3 * powers[-1]
        assert powers == sorted(powers, reverse=True)

    def test_levels_recorded(self, i7_quiet):
        grid = FrequencyGrid(450e3, 600e3, 50.0)
        sweep = modulation_depth_sweep(
            i7_quiet, MEMORY_UTILIZATION, 512e3, grid, levels=(0.0, 1.0)
        )
        assert [m.level for m in sweep] == [0.0, 1.0]
        assert all(np.isfinite(m.carrier_dbm) for m in sweep)

    def test_carrier_outside_grid_rejected(self, i7_quiet):
        grid = FrequencyGrid(450e3, 600e3, 50.0)
        with pytest.raises(DetectionError):
            modulation_depth_sweep(i7_quiet, DRAM_BUS, 1e6, grid)
